//! Vendored stand-in for the subset of the [`rand`] 0.8 API that the `ldp`
//! workspace uses.
//!
//! The build environment has no access to a crates registry, so this crate
//! provides a *functional* (not mocked) implementation of exactly the
//! surface the workspace consumes:
//!
//! * [`RngCore`] / [`Rng`] (with the blanket `impl Rng for R: RngCore`)
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`] — here backed by xoshiro256++ (public domain
//!   construction by Blackman & Vigna) seeded through SplitMix64
//! * `gen_range` over integer and float `Range` / `RangeInclusive`
//! * `gen_bool`, `gen::<T>()` via [`distributions::Standard`]
//! * [`seq::index::sample`] (partial Fisher–Yates)
//!
//! The streams produced do **not** match upstream `rand`'s `StdRng`
//! (ChaCha12); every statistical tolerance in the workspace is calibrated
//! against this implementation's output under fixed seeds.
//!
//! [`rand`]: https://docs.rs/rand/0.8

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform `u32`/`u64`
/// words and raw bytes. Object-safe, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution: integers are
    /// uniform over their full range, `f64`/`f32` are uniform in `[0, 1)`.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // A uniform draw in [0, 1) is < p with probability exactly p for
        // p = 1.0 (always true) and p = 0.0 (always false) as well.
        crate::unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random bytes (alias for [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed, for
/// reproducible streams.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 (the standard seeding recipe for xoshiro).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            for (b, src) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence; used for seed expansion.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a uniform `u64` to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the standard `rand` recipe).
#[inline]
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a uniform `u32` to a uniform `f32` in `[0, 1)` using 24 bits.
#[inline]
pub(crate) fn unit_f32(x: u32) -> f32 {
    (x >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// The traits and types most code wants in scope, mirroring
/// `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0u64..7);
            assert!(x < 7);
            let y = rng.gen_range(3..=9u64);
            assert!((3..=9).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
            let w = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u64; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        // Each bucket expects n/8 = 10_000 with sd ≈ 94; 5 sd ≈ 470.
        for &c in &counts {
            assert!(
                (c as i64 - 10_000).unsigned_abs() < 500,
                "counts: {counts:?}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if rng.gen_bool(0.3) {
                hits += 1;
            }
        }
        // Expect 30_000, sd ≈ 145; 5 sd ≈ 725.
        assert!((hits as i64 - 30_000).unsigned_abs() < 750, "hits = {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0u64..10);
        assert!(x < 10);
        let _: f64 = dyn_rng.gen();
        let _ = dyn_rng.gen_bool(0.5);
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
        assert!(unit_f64(u64::MAX) > 0.9999);
    }
}
