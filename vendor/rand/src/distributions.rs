//! Distributions: the [`Standard`] distribution behind `Rng::gen`, and
//! the uniform-range machinery behind `Rng::gen_range`.

use crate::RngCore;

/// A distribution over values of type `T`, sampleable with any generator.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full-range uniform for integers,
/// `[0, 1)` uniform for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        crate::unit_f32(rng.next_u32())
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample a `T` from.
    pub trait SampleRange<T> {
        /// Draws one uniform value from the range. Panics if empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Multiplies a uniform 64-bit draw into `[0, span)` (Lemire's
    /// multiply-shift; bias is at most 2⁻⁶⁴·span, far below anything the
    /// workspace's statistical tolerances can see).
    #[inline]
    fn mul_shift(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(
                        self.start < self.end,
                        "gen_range: empty range {}..{}", self.start, self.end
                    );
                    // The wrapping difference must be reinterpreted as the
                    // *same-width* unsigned type before widening: going
                    // straight to u64 would sign-extend a narrow signed
                    // span (e.g. -100i8..100 has span 200 = -56i8).
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $u as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                    let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if span == 0 || span > <$u>::MAX as u64 {
                        // Full-width inclusive range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(mul_shift(rng.next_u64(), span) as $u as $t)
                }
            }
        )*};
    }
    int_range!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    );

    macro_rules! float_range {
        ($($t:ty => $unit:path),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(
                        self.start < self.end,
                        "gen_range: empty range {}..{}", self.start, self.end
                    );
                    let u = $unit(rng.next_u64() as _) as $t;
                    // lo + u·(hi − lo) for u in [0, 1); rounding can land
                    // exactly on `end`, so clamp to the largest value
                    // below it (next_down is correct at any magnitude,
                    // where an epsilon-scaled nudge can round back up).
                    let x = self.start + u * (self.end - self.start);
                    if x >= self.end { self.end.next_down().max(self.start) } else { x }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                    let u = $unit(rng.next_u64() as _) as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f64 => crate::unit_f64, f32 => crate::distributions::unit_f32_from_u64);
}

/// `f32` unit sampler fed from a full 64-bit word (keeps the two float
/// paths symmetric in the macro above).
#[inline]
pub(crate) fn unit_f32_from_u64(x: u64) -> f32 {
    crate::unit_f32((x >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_range_never_reaches_end() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = (0.0f64..1e-9).sample_single(&mut rng);
            assert!((0.0..1e-9).contains(&x));
        }
    }

    #[test]
    fn narrow_signed_ranges_stay_in_bounds() {
        // Regression: spans exceeding the signed type's positive half
        // (-100i8..100 has span 200) must not sign-extend when widened.
        let mut rng = StdRng::seed_from_u64(17);
        let (mut lo_half, mut hi_half) = (0, 0);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "i8 out of range: {x}");
            if x < 0 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
            let y = rng.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&y), "i16 out of range: {y}");
            let z = rng.gen_range(i32::MIN..=i32::MAX);
            let _ = z; // full-width inclusive must not panic
        }
        // Both halves of the asymmetric-looking span must be hit.
        assert!(
            lo_half > 3000 && hi_half > 3000,
            "lo={lo_half} hi={hi_half}"
        );
    }

    #[test]
    fn float_range_half_open_at_large_magnitude() {
        // Regression: at 1e16 the old epsilon-scaled clamp rounded back
        // up to `end`; next_down must keep the range half-open.
        let mut rng = StdRng::seed_from_u64(18);
        let (lo, hi) = (1e16f64, 1e16f64 + 2.0);
        for _ in 0..10_000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "x = {x} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn signed_range_spans_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut neg, mut pos) = (0, 0);
        for _ in 0..1000 {
            match rng.gen_range(-5i64..5) {
                x if x < 0 => neg += 1,
                _ => pos += 1,
            }
        }
        assert!(neg > 300 && pos > 300, "neg={neg} pos={pos}");
    }
}
