//! Sequence-related sampling, mirroring `rand::seq`.

/// Index sampling without replacement, mirroring `rand::seq::index`.
pub mod index {
    use crate::Rng;

    /// A set of distinct indices in `[0, length)`, as returned by
    /// [`sample`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> std::slice::Iter<'_, usize> {
            self.0.iter()
        }

        /// Consumes the sample into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length`, via a
    /// partial Fisher–Yates shuffle (O(`length`) memory, exact
    /// uniformity over subsets).
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "sample: amount {amount} exceeds length {length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn indices_are_distinct_and_in_range() {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..100 {
                let v = sample(&mut rng, 20, 7).into_vec();
                assert_eq!(v.len(), 7);
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 7, "duplicates in {v:?}");
                assert!(v.iter().all(|&i| i < 20));
            }
        }

        #[test]
        fn full_sample_is_a_permutation() {
            let mut rng = StdRng::seed_from_u64(12);
            let mut v = sample(&mut rng, 10, 10).into_vec();
            v.sort_unstable();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn each_index_equally_likely() {
            let mut rng = StdRng::seed_from_u64(13);
            let mut counts = [0u32; 10];
            let n = 20_000;
            for _ in 0..n {
                for i in sample(&mut rng, 10, 3) {
                    counts[i] += 1;
                }
            }
            // Each index appears with probability 3/10: expect 6000,
            // sd ≈ 65; allow 6 sd.
            for &c in &counts {
                assert!((c as i64 - 6000).unsigned_abs() < 400, "counts: {counts:?}");
            }
        }
    }
}
