//! Concrete generators. [`StdRng`] is the workspace's only generator: a
//! seedable, fast, statistically solid xoshiro256++.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator, backed by xoshiro256++ 1.0
/// (Blackman & Vigna, 2019). Passes BigCrush; not cryptographically
/// secure — this workspace only uses it for simulation, where
/// reproducibility under `seed_from_u64` is what matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all-zero; an all-zero seed would
        // otherwise produce the constant stream 0, 0, 0, ...
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.step().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
