/root/repo/vendor/proptest/target/debug/deps/proptest-d5fd9fdab507fd44.d: src/lib.rs src/strategy.rs src/test_runner.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-d5fd9fdab507fd44: src/lib.rs src/strategy.rs src/test_runner.rs

src/lib.rs:
src/strategy.rs:
src/test_runner.rs:
