//! Input strategies: how a property test draws each argument.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type, mirroring the sampling half of
/// `proptest::strategy::Strategy` (no shrinking in this stand-in).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields the same value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// String strategies from pattern literals, supporting the `.{m,n}`
/// shape upstream proptest accepts as a regex (`"value in \".{1,20}\""`):
/// a string of `m..=n` printable-ASCII characters. Any other pattern is
/// treated as a literal and returned verbatim.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

/// Parses `".{m,n}"` into `(m, n)`; returns `None` for anything else.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn dot_repeat_patterns_generate_in_length_band() {
        let mut rng = rng_for_test("strings");
        for _ in 0..200 {
            let s = ".{1,20}".sample(&mut rng);
            assert!((1..=20).contains(&s.chars().count()), "len {}", s.len());
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let empty_ok = ".{0,32}".sample(&mut rng);
            assert!(empty_ok.chars().count() <= 32);
        }
    }

    #[test]
    fn non_regex_patterns_are_literal() {
        let mut rng = rng_for_test("literal");
        assert_eq!("hello".sample(&mut rng), "hello");
    }
}
