//! Vendored stand-in for the subset of the [`proptest`] 1.x API that the
//! `ldp` workspace uses: the [`proptest!`] macro over range strategies,
//! [`test_runner::Config`] (a.k.a. `ProptestConfig`), and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to a crates registry, so this
//! crate implements random-input property testing directly: each
//! generated `#[test]` draws `cases` independent samples from its
//! strategies using a deterministic per-test seed and runs the body on
//! each. There is no shrinking — on failure the panic message reports
//! the case number and drawn inputs so the case can be replayed by
//! seed.
//!
//! [`proptest`]: https://docs.rs/proptest/1

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a `#[test]` that draws `Config::cases` samples from the
/// strategies and runs the body on each.
///
/// Supports the optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` attribute.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };

    (
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $(#[test] fn $name($($arg in $strat),+) $body)*);
    };

    (@impl ($cfg:expr);
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $cfg;
                // Derive a deterministic per-test seed from the test name
                // so sibling tests see independent streams.
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = ($strat).sample(&mut rng);)+
                    // Render inputs before the body runs: the body may
                    // move them (upstream proptest clones for the same
                    // reason).
                    let described_inputs =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(cause) = result {
                        panic!(
                            "property {} failed at case {case}/{} with inputs: {described_inputs}\ncause: {}",
                            stringify!($name),
                            config.cases,
                            $crate::test_runner::panic_message(&*cause),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure, like
/// `assert!` — this stand-in has no failure-persistence channel).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when an assumption does not hold. Without a
/// rejection-accounting runner this simply returns from the case body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        1u64..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in small(), y in 0.5f64..2.0, z in -3i64..=3) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((-3..=3).contains(&z));
        }

        #[test]
        fn bodies_see_fresh_draws(a in 0u64..1000, b in 0u64..1000) {
            // Not a tautology: a and b come from one stream but separate
            // draws, so equality should be rare; just exercise both.
            prop_assert_eq!(a, a);
            prop_assert_ne!((a, 0u64), (b, 1u64));
        }
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let caught = std::panic::catch_unwind(|| panic!("plain message")).unwrap_err();
        assert_eq!(crate::test_runner::panic_message(&*caught), "plain message");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(crate::test_runner::panic_message(&*caught), "formatted 42");
    }
}
