//! The runner configuration and the helpers the [`proptest!`](crate::proptest)
//! macro expands to.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; the only knob this stand-in honors is `cases`.
/// Exported as `ProptestConfig` from the prelude, like upstream.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, matching upstream proptest's default.
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic per-test generator: hashes the test name (FNV-1a) into a
/// seed so each property sees an independent but reproducible stream.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Extracts a readable message from a `catch_unwind` payload.
pub fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_test_streams_differ_and_reproduce() {
        let a1 = rng_for_test("alpha").next_u64();
        let a2 = rng_for_test("alpha").next_u64();
        let b = rng_for_test("beta").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
