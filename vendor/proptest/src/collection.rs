//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: a fixed size or a
/// range of sizes, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy returned by [`vec()`]: independent element draws with a
/// length drawn from the size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::test_runner::rng_for_test;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = rng_for_test("collection");
        for _ in 0..50 {
            assert_eq!(vec(any::<bool>(), 97).sample(&mut rng).len(), 97);
            let l = vec(0u64..5, 1..40).sample(&mut rng).len();
            assert!((1..40).contains(&l));
        }
    }

    #[test]
    fn nested_vec_strategies_compose() {
        let mut rng = rng_for_test("nested");
        let rows = vec(vec(any::<bool>(), 7), 1..4).sample(&mut rng);
        assert!((1..4).contains(&rows.len()));
        assert!(rows.iter().all(|r| r.len() == 7));
    }
}
