//! `any::<T>()` — the "arbitrary value of T" strategy.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use std::marker::PhantomData;

/// Strategy returned by [`any`]: samples `T` from the natural
/// full-range distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// An arbitrary value of `T`: full-range uniform for integers, `[0, 1)`
/// for floats, fair coin for `bool` — mirroring `proptest::prelude::any`
/// for the primitive types this workspace tests with.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
    T: std::fmt::Debug,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
    T: std::fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        Standard.sample(rng)
    }
}
