//! Vendored stand-in for the subset of the [`criterion`] 0.5 API that the
//! `ldp` workspace's benches use.
//!
//! The build environment has no access to a crates registry, so this
//! crate implements a small but *working* wall-clock benchmark harness:
//! [`Bencher::iter`] warms up, picks an iteration count targeting the
//! group's measurement time, takes `sample_size` samples, and prints the
//! median / min / max time per iteration (plus throughput when
//! configured). There are no plots, no statistics beyond the quantiles,
//! and no saved baselines — enough to compare hot paths run-to-run.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group; reported as
/// elements/sec or bytes/sec next to the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"oue/256"` from a name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median / min / max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via a sink so the
    /// optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, counting how
        // many iterations fit so we can size the measured batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;

        // Aim each sample at measurement_time / sample_size seconds.
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter) as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let median = samples_ns[samples_ns.len() / 2];
        self.result = Some((median, samples_ns[0], samples_ns[samples_ns.len() - 1]));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing sample/timing settings,
/// mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput, so results are
    /// also reported as elements- or bytes-per-second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        let Some((median, lo, hi)) = b.result else {
            println!(
                "{}/{id}: no measurement (closure never called iter)",
                self.name
            );
            return;
        };
        let mut line = format!(
            "{}/{id}: median {} [min {}, max {}]",
            self.name,
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  ({:.3e} elem/s)", n as f64 / (median * 1e-9)));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  ({:.3e} B/s)", n as f64 / (median * 1e-9)));
            }
            None => {}
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark; the closure receives the input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (upstream consumes `self`; here it only marks
    /// the group's end in the output).
    pub fn finish(self) {
        println!("— group {} done —", self.name);
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    benchmarks_run: usize,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            benchmarks_run: 0,
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            warm_up,
            measurement,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Number of benchmarks completed so far (used by `criterion_main!`).
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        group.throughput(Throughput::Elements(128));
        group.bench_function("sum", |b| {
            b.iter(|| (0..128u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("oue", 256).to_string(), "oue/256");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
