//! # `ldp-planner` — a cost-based optimizer over the protocol registry
//!
//! The workspace ships fourteen [`MechanismKind`]s whose accuracy,
//! server memory, report size, and decode latency trade off sharply as
//! `(d, n, ε)` move — and until this crate, an operator picked among
//! them by hand. The planner turns the menu into a system:
//!
//! 1. every crate prices its mechanisms through the shared
//!    [`CostModel`] seam (`ldp_core::cost`), delegating variance to the
//!    mechanism's own published formula;
//! 2. [`Planner::plan`] asks each entry to *tune its integer knobs*
//!    (cohorts `C`, sketch `k×m`, bits-per-device `b`) for a
//!    [`WorkloadSpec`] by analytic minimization under the spec's
//!    budgets;
//! 3. candidates that blow a budget, need subtractive retirement the
//!    aggregator cannot give, or keep `O(n)` state without the spec's
//!    explicit opt-in are dropped;
//! 4. the survivors are **validated** — every emitted descriptor has
//!    passed `ProtocolDescriptorBuilder::build`, round-tripped through
//!    its wire bytes, and instantiated through the registry — and
//!    ranked by predicted σ².
//!
//! The winner is therefore guaranteed to instantiate through
//! [`workspace_registry`] on both ends of the wire:
//!
//! ```
//! use ldp_planner::{workspace_planner, WorkloadSpec};
//!
//! let planner = workspace_planner();
//! let spec = WorkloadSpec::new(1024, 100_000, 1.0)
//!     .with_memory_budget(256 * 1024)
//!     .with_report_budget(64);
//! let plans = planner.plan(&spec).unwrap();
//! let best = &plans[0];
//! assert!(best.cost.memory_bytes <= 256 * 1024);
//! assert!(best.cost.bytes_per_report <= 64);
//! // The descriptor is ready for WireClient / CollectorService.
//! let mech = ldp_planner::workspace_registry()
//!     .build(&best.descriptor)
//!     .unwrap();
//! assert_eq!(mech.descriptor().kind(), best.kind());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ldp_core::cost::{CostBook, CostEstimate, CostModel, QueryShape, WorkloadSpec};
use ldp_core::protocol::{MechanismKind, ProtocolDescriptor, Registry};
use ldp_core::{LdpError, Result};

/// One ranked planner candidate: a validated, registry-instantiable
/// descriptor plus its predicted cost profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The tuned, builder-validated descriptor (round-tripped through
    /// its wire bytes and instantiated through the planner's registry
    /// before being emitted).
    pub descriptor: ProtocolDescriptor,
    /// Predicted σ², memory, frame bytes, and decode operations.
    pub cost: CostEstimate,
}

impl Plan {
    /// The mechanism this plan instantiates.
    #[must_use]
    pub fn kind(&self) -> MechanismKind {
        self.descriptor.kind()
    }
}

/// The optimizer: a [`CostBook`] of analytic entries plus the
/// [`Registry`] the winners must instantiate through.
pub struct Planner {
    book: CostBook,
    registry: Registry,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("book", &self.book)
            .field("registry", &self.registry)
            .finish()
    }
}

impl Default for Planner {
    fn default() -> Self {
        workspace_planner()
    }
}

impl Planner {
    /// A planner over the given cost book and registry. Only kinds
    /// present in **both** can be planned: the book prices them, the
    /// registry proves they instantiate.
    #[must_use]
    pub fn new(book: CostBook, registry: Registry) -> Self {
        Self { book, registry }
    }

    /// The analytic entries this planner optimizes over.
    #[must_use]
    pub fn book(&self) -> &CostBook {
        &self.book
    }

    /// The registry plans are validated against.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Plans `spec`: tunes every registered mechanism's knobs under the
    /// budgets, drops candidates that violate a budget or structural
    /// requirement (a linear-memory plan is never emitted unless
    /// [`WorkloadSpec::allow_linear_memory`] is set), validates the
    /// survivors end to end (descriptor bytes round-trip + registry
    /// instantiation), and returns them ranked by predicted σ²
    /// ascending (ties: decode cost, then kind code).
    ///
    /// An empty vector means no registered mechanism fits the spec —
    /// see [`Planner::best`] for the erroring variant.
    ///
    /// # Errors
    /// Any [`LdpError`] from spec validation; internal tuning errors.
    pub fn plan(&self, spec: &WorkloadSpec) -> Result<Vec<Plan>> {
        spec.validate()?;
        let mut plans = Vec::new();
        for model in self.book.models() {
            let Some(descriptor) = model.tune(spec)? else {
                continue;
            };
            let cost = model.cost(&descriptor, spec)?;
            if !cost.fits(spec) {
                continue;
            }
            // A plan is a promise: the descriptor must survive the trip
            // a deployment takes it on (serialize → ship → rebuild) and
            // must instantiate through the registry on arrival.
            let Ok(round_tripped) = ProtocolDescriptor::from_bytes(&descriptor.to_bytes()) else {
                continue;
            };
            if round_tripped != descriptor {
                continue;
            }
            if !self.registry.supports(descriptor.kind())
                || self.registry.build(&descriptor).is_err()
            {
                continue;
            }
            plans.push(Plan { descriptor, cost });
        }
        plans.sort_by(|a, b| {
            a.cost
                .variance
                .total_cmp(&b.cost.variance)
                .then(a.cost.decode_ops.cmp(&b.cost.decode_ops))
                .then(a.kind().code().cmp(&b.kind().code()))
        });
        Ok(plans)
    }

    /// The top-ranked plan for `spec`.
    ///
    /// # Errors
    /// [`LdpError::UnsupportedMechanism`] when no registered mechanism
    /// fits the spec's budgets and requirements; any error from
    /// [`Planner::plan`].
    pub fn best(&self, spec: &WorkloadSpec) -> Result<Plan> {
        self.plan(spec)?.into_iter().next().ok_or_else(|| {
            LdpError::UnsupportedMechanism(format!(
                "no registered mechanism fits the workload spec {spec:?}; relax a budget \
                 or requirement, or register more cost models"
            ))
        })
    }
}

/// The full workspace cost book: the ten core oracles plus Apple
/// CMS/HCMS and Microsoft dBitFlip/1BitMean.
#[must_use]
pub fn workspace_cost_book() -> CostBook {
    let mut book = CostBook::core();
    ldp_apple::register_cost_models(&mut book);
    ldp_microsoft::register_cost_models(&mut book);
    book
}

/// The full workspace registry: every mechanism kind the workspace
/// ships, instantiable from a serialized descriptor
/// (`ldp_workloads::service::workspace_registry` delegates here).
#[must_use]
pub fn workspace_registry() -> Registry {
    let mut registry = Registry::core();
    ldp_apple::register_mechanisms(&mut registry);
    ldp_microsoft::register_mechanisms(&mut registry);
    registry
}

/// A [`Planner`] over the full workspace: all fourteen mechanism kinds
/// priced and instantiable.
#[must_use]
pub fn workspace_planner() -> Planner {
    Planner::new(workspace_cost_book(), workspace_registry())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_book_covers_all_fourteen_kinds() {
        let book = workspace_cost_book();
        assert_eq!(book.kinds().len(), MechanismKind::ALL.len());
        for kind in MechanismKind::ALL {
            assert!(book.get(kind).is_some(), "missing cost entry: {kind:?}");
        }
    }

    #[test]
    fn plans_are_sorted_by_predicted_variance() {
        let planner = workspace_planner();
        let plans = planner.plan(&WorkloadSpec::new(256, 100_000, 1.0)).unwrap();
        assert!(plans.len() >= 5, "expected a rich candidate set");
        for pair in plans.windows(2) {
            assert!(pair[0].cost.variance <= pair[1].cost.variance);
        }
    }

    #[test]
    fn winner_instantiates_through_the_registry() {
        let planner = workspace_planner();
        let registry = workspace_registry();
        let best = planner.best(&WorkloadSpec::new(1024, 50_000, 2.0)).unwrap();
        let mech = registry.build(&best.descriptor).unwrap();
        assert_eq!(mech.descriptor().kind(), best.kind());
    }

    #[test]
    fn linear_memory_is_never_emitted_without_opt_in() {
        let planner = workspace_planner();
        let plans = planner.plan(&WorkloadSpec::new(64, 10_000, 1.0)).unwrap();
        assert!(plans.iter().all(|p| !p.cost.linear_memory));
        assert!(plans.iter().all(|p| !p.descriptor.linear_memory_allowed()));
        let opted = planner
            .plan(&WorkloadSpec::new(64, 10_000, 1.0).with_linear_memory())
            .unwrap();
        assert!(opted.iter().any(|p| p.cost.linear_memory));
    }

    #[test]
    fn subtractive_specs_get_subtractive_plans_only() {
        let planner = workspace_planner();
        let plans = planner
            .plan(&WorkloadSpec::new(128, 10_000, 1.0).with_subtractive())
            .unwrap();
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|p| p.cost.subtractive));
        assert!(plans
            .iter()
            .all(|p| p.kind() != MechanismKind::SummationHistogram));
    }

    #[test]
    fn tight_budgets_filter_and_may_exhaust() {
        let planner = workspace_planner();
        // 4-byte frames: only the smallest report formats survive.
        let tiny_frames = WorkloadSpec::new(4096, 100_000, 1.0).with_report_budget(8);
        for p in planner.plan(&tiny_frames).unwrap() {
            assert!(p.cost.bytes_per_report <= 8, "{:?}", p.kind());
        }
        // An impossible combination errors out of best().
        let impossible = WorkloadSpec::new(1 << 20, 1_000_000, 1.0)
            .with_memory_budget(32)
            .with_report_budget(3);
        assert!(planner.best(&impossible).is_err());
    }

    #[test]
    fn mean_specs_route_to_onebitmean() {
        let planner = workspace_planner();
        let best = planner
            .best(
                &WorkloadSpec::new(16, 10_000, 1.0)
                    .with_query_shape(QueryShape::Mean { max_value: 100.0 }),
            )
            .unwrap();
        assert_eq!(best.kind(), MechanismKind::MicrosoftOneBitMean);
        assert_eq!(best.descriptor.max_value(), 100.0);
    }

    #[test]
    fn planner_only_emits_kinds_both_sides_know() {
        // A planner whose registry lacks the Apple kinds must never
        // emit them, even though the book prices them.
        let planner = Planner::new(workspace_cost_book(), Registry::core());
        let plans = planner.plan(&WorkloadSpec::new(256, 10_000, 2.0)).unwrap();
        assert!(!plans.is_empty());
        assert!(plans
            .iter()
            .all(|p| !matches!(p.kind(), MechanismKind::AppleCms | MechanismKind::AppleHcms)));
    }
}
