//! Wire round-trip and adversarial-decode properties for the Microsoft
//! report types, plus real randomized dBitFlip traffic.

use ldp_core::wire::{decode_report, encode_report_vec, WIRE_VERSION};
use ldp_core::{Epsilon, LdpError};
use ldp_microsoft::{DBitFlip, DBitReport};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_roundtrip(report: &DBitReport) {
    let frame = encode_report_vec(report);
    let back: DBitReport = decode_report(&frame).expect("well-formed frame decodes");
    assert_eq!(&back, report);
    for cut in 0..frame.len() {
        assert!(decode_report::<DBitReport>(&frame[..cut]).is_err());
    }
    let mut bad = frame.clone();
    bad[0] = WIRE_VERSION.wrapping_add(1);
    assert!(matches!(
        decode_report::<DBitReport>(&bad),
        Err(LdpError::VersionMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dbit_report_roundtrips(raw in vec(any::<u32>(), 1..24), flips in vec(any::<bool>(), 24..25)) {
        // Deduplicate and sort: the report invariant the client upholds
        // (and the delta codec relies on).
        let mut buckets: Vec<u32> = raw.clone();
        buckets.sort_unstable();
        buckets.dedup();
        let bits = flips[..buckets.len()].to_vec();
        check_roundtrip(&DBitReport { buckets, bits });
    }

    #[test]
    fn randomized_dbit_traffic_roundtrips(seed in 0u64..1000, value in 0u64..1024) {
        let mech = DBitFlip::new(1024, 16, Epsilon::new(1.0).expect("eps")).expect("params");
        let mut rng = StdRng::seed_from_u64(seed);
        check_roundtrip(&mech.randomize(value as u32, &mut rng));
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let _ = decode_report::<DBitReport>(&bytes);
    }
}
