//! Subtract-inverts-merge contract for Microsoft's aggregators:
//! `try_subtract(merge(a, b), b)` must restore `a` bit-exactly (snapshot
//! BLOB comparison) for the dBitFlip histogram, the 1BitMean counter,
//! and the composite telemetry round state, with atomic refusals on
//! parameter mismatch or oversubtraction — the retirement contract the
//! sliding-window ring relies on for longitudinal telemetry.

use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::mech::BatchMechanism;
use ldp_core::snapshot::snapshot_vec;
use ldp_core::{Epsilon, LdpError};
use ldp_microsoft::{DBitFlip, OneBitMean, TelemetryConfig, TelemetryPipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).expect("valid eps")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dbitflip_subtract_inverts_merge(
        e in 0.5f64..4.0, seed in 0u64..1000, n in 20usize..150, cut in 0usize..150,
    ) {
        let mech = DBitFlip::new(16, 4, eps(e)).expect("valid params");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_a = cut.min(n);
        let mut a = FrequencyOracle::new_aggregator(&mech);
        let mut b = FrequencyOracle::new_aggregator(&mech);
        let mut merged = FrequencyOracle::new_aggregator(&mech);
        for i in 0..n {
            let report = FrequencyOracle::randomize(&mech, i as u64 % 16, &mut rng);
            if i < n_a { a.accumulate(&report) } else { b.accumulate(&report) }
            merged.accumulate(&report);
        }

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a);

        // Oversubtraction and a different channel both refuse with the
        // minuend untouched.
        let before = snapshot_vec(&merged);
        if n_a < n {
            let mut whole = FrequencyOracle::new_aggregator(&mech);
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..n {
                whole.accumulate(&FrequencyOracle::randomize(&mech, i as u64 % 16, &mut rng));
            }
            prop_assert!(matches!(
                merged.try_subtract(&whole),
                Err(LdpError::StateMismatch(_))
            ));
        }
        let other_mech = DBitFlip::new(16, 4, eps(e + 0.5)).expect("valid params");
        let foreign = FrequencyOracle::new_aggregator(&other_mech);
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }

    #[test]
    fn onebit_mean_subtract_inverts_merge(
        e in 0.5f64..4.0, seed in 0u64..1000, n in 20usize..120, cut in 0usize..120,
    ) {
        let mech = OneBitMean::new(eps(e), 100.0).expect("valid params");
        let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let n_a = cut.min(n);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = OneBitMean::new_aggregator(&mech);
        mech.accumulate_batch(&values[..n_a], &mut rng, &mut a);
        let mut b = OneBitMean::new_aggregator(&mech);
        mech.accumulate_batch(&values[n_a..], &mut rng, &mut b);
        let mut merged = a.clone();
        merged.merge(b.clone());

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a);

        let before = snapshot_vec(&merged);
        let other_mech = OneBitMean::new(eps(e + 0.5), 100.0).expect("valid params");
        let foreign = OneBitMean::new_aggregator(&other_mech);
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }

    #[test]
    fn telemetry_round_subtract_inverts_merge(
        seed in 0u64..500, n in 30usize..120, cut in 0usize..120,
    ) {
        let pipeline = TelemetryPipeline::new(TelemetryConfig {
            total_epsilon: 2.0,
            mean_fraction: 0.5,
            max_value: 100.0,
            buckets: 10,
            bits_per_device: 4,
            gamma: 0.2,
        })
        .expect("valid config");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E);
        let devices: Vec<_> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let round = pipeline.round(&devices);
        let inputs = round.inputs(&values);
        let n_a = cut.min(n);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = round.new_aggregator();
        round.accumulate_batch(&inputs[..n_a], &mut rng, &mut a);
        let mut b = round.new_aggregator();
        round.accumulate_batch(&inputs[n_a..], &mut rng, &mut b);
        let mut merged = a.clone();
        merged.merge(b.clone());

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a);
        prop_assert_eq!(merged.round_mean().to_bits(), a.round_mean().to_bits());

        // A round collected under a different γ must refuse with both
        // halves of the composite state untouched — the subtract is
        // atomic across the mean and histogram statistics.
        let before = snapshot_vec(&merged);
        let other = TelemetryPipeline::new(TelemetryConfig {
            total_epsilon: 2.0,
            mean_fraction: 0.5,
            max_value: 100.0,
            buckets: 10,
            bits_per_device: 4,
            gamma: 0.1,
        })
        .expect("valid config");
        let foreign = other.round(&devices).new_aggregator();
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }
}
