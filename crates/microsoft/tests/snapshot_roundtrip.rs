//! Snapshot contract for the Microsoft aggregators: dBitFlip histograms,
//! 1BitMean counters, and the assembled telemetry round.
//! `merge(restore(snapshot(a)), b) == merge(a, b)` bit for bit, and
//! adversarial BLOBs decode to typed errors, never panics.

use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::snapshot::{restore_from, snapshot_vec, StateSnapshot, SNAPSHOT_VERSION};
use ldp_core::{Epsilon, LdpError};
use ldp_microsoft::pipeline::{TelemetryAggregator, TelemetryConfig, TelemetryPipeline};
use ldp_microsoft::{DBitFlip, OneBitMean, OneBitMeanAggregator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn check_adversarial<S: StateSnapshot>(agg: &mut S, blob: &[u8]) {
    for cut in 0..blob.len() {
        assert!(
            restore_from(agg, &blob[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }

    let mut bad = blob.to_vec();
    bad[0] = SNAPSHOT_VERSION.wrapping_add(1);
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::VersionMismatch { .. })
    ));

    let mut bad = blob.to_vec();
    bad[1] = 0xEE; // unassigned tag
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::ReportTypeMismatch { .. })
    ));

    for i in 0..blob.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = blob.to_vec();
            bad[i] ^= flip;
            let _ = restore_from(agg, &bad); // must not panic
        }
    }
}

/// Restores `snapshot(a)` into `fresh`, merges `b` on both sides, and
/// demands bit-identical state; then runs the adversarial battery.
fn check_contract<A: FoAggregator + Clone>(a: A, b: A, mut fresh: A, mut spare: A) {
    let blob = snapshot_vec(&a);
    restore_from(&mut fresh, &blob).expect("well-formed snapshot restores");
    assert_eq!(snapshot_vec(&fresh), blob, "restore is lossless");

    let mut via_bytes = fresh;
    via_bytes.merge(b.clone());
    let mut in_process = a;
    in_process.merge(b);
    assert_eq!(snapshot_vec(&via_bytes), snapshot_vec(&in_process));
    assert_eq!(via_bytes.reports(), in_process.reports());
    for (x, y) in via_bytes
        .estimate()
        .iter()
        .zip(in_process.estimate().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "estimates must be bit-identical");
    }

    check_adversarial(&mut spare, &blob);
}

fn filled_onebit(mech: &OneBitMean, n: usize, rng: &mut StdRng) -> OneBitMeanAggregator {
    let mut agg = mech.new_aggregator();
    for i in 0..n {
        let bit = mech.randomize((i % 101) as f64, rng);
        agg.accumulate(&bit);
    }
    agg
}

fn pipeline(gamma: f64) -> TelemetryPipeline {
    TelemetryPipeline::new(TelemetryConfig {
        total_epsilon: 2.0,
        mean_fraction: 0.5,
        max_value: 100.0,
        buckets: 10,
        bits_per_device: 4,
        gamma,
    })
    .expect("valid config")
}

fn filled_round(pipeline: &TelemetryPipeline, n: usize, rng: &mut StdRng) -> TelemetryAggregator {
    let mut agg = pipeline.new_round_aggregator();
    for i in 0..n {
        let device = pipeline.enroll(rng);
        let report = device.report((i % 100) as f64, rng);
        agg.accumulate(&report);
    }
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dbit_snapshot_contract(seed in any::<u64>(), k in 8u32..64, d in 2u32..8) {
        let mech = DBitFlip::new(k, d.min(k), eps(1.0)).expect("valid params");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = {
            let mut agg = mech.new_aggregator();
            for i in 0..200u64 {
                agg.accumulate(&FrequencyOracle::randomize(&mech, (i * i) % u64::from(k), &mut rng));
            }
            agg
        };
        let b = {
            let mut agg = mech.new_aggregator();
            for i in 0..150u64 {
                agg.accumulate(&FrequencyOracle::randomize(&mech, i % u64::from(k), &mut rng));
            }
            agg
        };
        check_contract(a, b, mech.new_aggregator(), mech.new_aggregator());
    }

    #[test]
    fn onebit_snapshot_contract(seed in any::<u64>(), e in 0.5f64..3.0) {
        let mech = OneBitMean::new(eps(e), 100.0).expect("valid range");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = filled_onebit(&mech, 300, &mut rng);
        let b = filled_onebit(&mech, 200, &mut rng);
        check_contract(a, b, mech.new_aggregator(), mech.new_aggregator());
    }

    #[test]
    fn telemetry_snapshot_contract(seed in any::<u64>(), gamma in 0.0f64..0.4) {
        let pipe = pipeline(gamma);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = filled_round(&pipe, 150, &mut rng);
        let b = filled_round(&pipe, 100, &mut rng);
        check_contract(a, b, pipe.new_round_aggregator(), pipe.new_round_aggregator());
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mech = DBitFlip::new(16, 4, eps(1.0)).expect("valid params");
        let mut dbit = mech.new_aggregator();
        let _ = restore_from(&mut dbit, &bytes);
        let mut onebit = OneBitMean::new(eps(1.0), 100.0).expect("valid range").new_aggregator();
        let _ = restore_from(&mut onebit, &bytes);
        let mut round = pipeline(0.2).new_round_aggregator();
        let _ = restore_from(&mut round, &bytes);
    }
}

/// Snapshots are pinned to the mechanism configuration.
#[test]
fn cross_configuration_snapshots_are_rejected() {
    let mut rng = StdRng::seed_from_u64(17);

    let mech = DBitFlip::new(32, 4, eps(1.0)).expect("valid params");
    let mut a = mech.new_aggregator();
    for i in 0..100u64 {
        a.accumulate(&FrequencyOracle::randomize(&mech, i % 32, &mut rng));
    }
    let blob = snapshot_vec(&a);
    let mut other_d = DBitFlip::new(32, 8, eps(1.0))
        .expect("valid params")
        .new_aggregator();
    assert!(matches!(
        restore_from(&mut other_d, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut other_k = DBitFlip::new(16, 4, eps(1.0))
        .expect("valid params")
        .new_aggregator();
    assert!(matches!(
        restore_from(&mut other_k, &blob),
        Err(LdpError::StateMismatch(_))
    ));

    let one = OneBitMean::new(eps(1.0), 100.0).expect("valid range");
    let bits = filled_onebit(&one, 100, &mut rng);
    let mut other_max = OneBitMean::new(eps(1.0), 50.0)
        .expect("valid range")
        .new_aggregator();
    assert!(matches!(
        restore_from(&mut other_max, &snapshot_vec(&bits)),
        Err(LdpError::StateMismatch(_))
    ));

    let round = filled_round(&pipeline(0.2), 50, &mut rng);
    let mut other_gamma = pipeline(0.1).new_round_aggregator();
    assert!(matches!(
        restore_from(&mut other_gamma, &snapshot_vec(&round)),
        Err(LdpError::StateMismatch(_))
    ));

    // A dBitFlip BLOB is not a 1BitMean BLOB: tag first, payload never.
    let mut onebit = one.new_aggregator();
    assert!(matches!(
        restore_from(&mut onebit, &blob),
        Err(LdpError::ReportTypeMismatch { .. })
    ));
}
