//! The cross-crate batch-engine contract for Microsoft's mechanisms,
//! mirroring `crates/core/tests/batch_oracles.rs`: for a given RNG seed,
//! the fused batch paths must produce **bit-identical** aggregator state
//! to the scalar randomize+accumulate loop, sharded-parallel collection
//! must equal sequential (for dBitFlip through the oracle face of the
//! engine, for 1BitMean and telemetry rounds through the
//! `BatchMechanism` face), and dBitFlip's analytical `count_variance`
//! must match the empirical spread (the cohort-OLH variance-test
//! convention).

use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::mech::BatchMechanism;
use ldp_core::Epsilon;
use ldp_microsoft::{DBitFlip, OneBitMean, TelemetryConfig, TelemetryDevice, TelemetryPipeline};
use ldp_workloads::parallel::{
    accumulate_mech_sharded, accumulate_mech_sharded_sequential, accumulate_sharded,
    accumulate_sharded_sequential, accumulate_sharded_with_workers,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).expect("valid eps")
}

fn population(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // dBitFlip: scalar loop, report-batch and fused batch must land on
    // bit-identical estimates — across (k, d) pairs covering both the
    // rejection and Fisher–Yates bucket-sampling branches.
    #[test]
    fn dbitflip_batch_bit_identical(e in 0.3f64..4.0, seed in 0u64..1000) {
        for (k, d) in [(48u32, 4u32), (16, 8), (8, 8), (64, 2)] {
            let mech = DBitFlip::new(k, d, eps(e)).expect("valid params");
            let values = population(400, k as u64);
            let split = values.len() / 3;
            let shards = [&values[..split], &values[split..]];

            let mut scalar_agg = FrequencyOracle::new_aggregator(&mech);
            for (i, shard) in shards.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
                for &v in *shard {
                    scalar_agg.accumulate(&mech.randomize(v as u32, &mut rng));
                }
            }

            let mut batch_agg = FrequencyOracle::new_aggregator(&mech);
            for (i, shard) in shards.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
                mech.randomize_batch(shard, &mut rng, |r| batch_agg.accumulate(&r));
            }

            let mut fused_agg = FrequencyOracle::new_aggregator(&mech);
            for (i, shard) in shards.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
                mech.randomize_accumulate_batch(shard, &mut rng, &mut fused_agg);
            }

            prop_assert_eq!(scalar_agg.reports(), values.len());
            prop_assert_eq!(fused_agg.reports(), values.len());
            let scalar = scalar_agg.estimate();
            let batch = batch_agg.estimate();
            let fused = fused_agg.estimate();
            for (i, ((s, b), f)) in scalar.iter().zip(&batch).zip(&fused).enumerate() {
                prop_assert_eq!(s.to_bits(), b.to_bits(), "k={} d={} item {}", k, d, i);
                prop_assert_eq!(s.to_bits(), f.to_bits(), "k={} d={} item {}", k, d, i);
            }
        }
    }

    // 1BitMean: the monomorphized batch path must replay the scalar
    // stream over f64 inputs exactly.
    #[test]
    fn onebit_batch_bit_identical(e in 0.3f64..4.0, seed in 0u64..1000) {
        let mech = OneBitMean::new(eps(e), 100.0).expect("valid range");
        let values: Vec<f64> = (0..500).map(|i| (i % 101) as f64).collect();

        let mut scalar_rng = StdRng::seed_from_u64(seed);
        let mut scalar = OneBitMean::new_aggregator(&mech);
        for &x in &values {
            scalar.accumulate(&mech.randomize(x, &mut scalar_rng));
        }

        let mut batch_rng = StdRng::seed_from_u64(seed);
        let mut batch = OneBitMean::new_aggregator(&mech);
        mech.accumulate_batch(&values, &mut batch_rng, &mut batch);

        prop_assert_eq!(scalar.ones(), batch.ones());
        prop_assert_eq!(scalar.reports(), batch.reports());
        prop_assert_eq!(scalar.mean().to_bits(), batch.mean().to_bits());
    }

    // Sharded-parallel dBitFlip equals sequential, across shard and
    // worker counts.
    #[test]
    fn dbitflip_parallel_matches_sequential(e in 0.5f64..3.0, seed in 0u64..100) {
        let mech = DBitFlip::new(32, 4, eps(e)).expect("valid params");
        let values = population(3_000, 32);
        for &shards in &[1usize, 3, 16] {
            let par = accumulate_sharded(&mech, &values, seed, shards).estimate();
            let seq = accumulate_sharded_sequential(&mech, &values, seed, shards).estimate();
            for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "shards={} item {}", shards, i);
            }
        }
        let w2 = accumulate_sharded_with_workers(&mech, &values, seed, 8, 3).estimate();
        let w1 = accumulate_sharded_sequential(&mech, &values, seed, 8).estimate();
        prop_assert_eq!(w1, w2);
    }

    // Sharded-parallel 1BitMean (the BatchMechanism face of the engine)
    // equals sequential.
    #[test]
    fn onebit_parallel_matches_sequential(e in 0.5f64..3.0, seed in 0u64..100) {
        let mech = OneBitMean::new(eps(e), 50.0).expect("valid range");
        let values: Vec<f64> = (0..4_000).map(|i| (i % 51) as f64).collect();
        for &shards in &[1usize, 4, 16] {
            let par = accumulate_mech_sharded(&mech, &values, seed, shards);
            let seq = accumulate_mech_sharded_sequential(&mech, &values, seed, shards);
            prop_assert_eq!(par.ones(), seq.ones(), "shards={}", shards);
            prop_assert_eq!(par.reports(), seq.reports());
            prop_assert_eq!(par.mean().to_bits(), seq.mean().to_bits());
        }
    }
}

fn pipeline_and_fleet(n: usize, gamma: f64) -> (TelemetryPipeline, Vec<TelemetryDevice>) {
    let pipeline = TelemetryPipeline::new(TelemetryConfig {
        total_epsilon: 2.0,
        mean_fraction: 0.5,
        max_value: 100.0,
        buckets: 10,
        bits_per_device: 4,
        gamma,
    })
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(1234);
    let devices = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
    (pipeline, devices)
}

/// The assembled telemetry round rides the mech engine: sharded-parallel
/// collection over `(device, value)` inputs equals sequential — with
/// output perturbation on, so the shards genuinely consume RNG.
#[test]
fn telemetry_round_parallel_matches_sequential() {
    let n = 5_000;
    let (pipeline, devices) = pipeline_and_fleet(n, 0.2);
    let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
    let round = pipeline.round(&devices);
    let inputs = round.inputs(&values);
    for shards in [1usize, 4, 16] {
        let par = accumulate_mech_sharded(&round, &inputs, 9, shards);
        let seq = accumulate_mech_sharded_sequential(&round, &inputs, 9, shards);
        assert_eq!(par.estimate(), seq.estimate(), "shards={shards}");
        assert_eq!(par.mean_bits().ones(), seq.mean_bits().ones());
        assert_eq!(par.round_mean().to_bits(), seq.round_mean().to_bits());
        assert_eq!(par.reports(), n);
    }
}

/// Statistical satellite (the cohort-OLH variance-test convention):
/// dBitFlip's analytical `count_variance` must match the empirical
/// variance of independent histogram estimates.
#[test]
fn dbitflip_count_variance_matches_empirical() {
    let mech = DBitFlip::new(16, 4, eps(2.0)).expect("valid params");
    let n = 1_000usize;
    let trials = 400;
    // Everyone reports bucket 0: its estimate's spread around n is the
    // mechanism noise the formula predicts (plus coverage jitter, which
    // the formula's mean-coverage approximation absorbs).
    let mut ests = Vec::with_capacity(trials);
    for t in 0..trials as u64 {
        let mut rng = StdRng::seed_from_u64(40_000 + t);
        let mut agg = DBitFlip::new_aggregator(&mech);
        for _ in 0..n {
            agg.accumulate(&mech.randomize(0, &mut rng));
        }
        ests.push(agg.estimate()[0]);
    }
    let mean = ests.iter().sum::<f64>() / trials as f64;
    let var = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
    let predicted = mech.count_variance(n);
    let ratio = var / predicted;
    assert!(
        (0.6..1.67).contains(&ratio),
        "empirical var {var} vs predicted {predicted} (ratio {ratio})"
    );
    // Unbiasedness at 5σ on the trial mean rides along.
    let sd_of_mean = (predicted / trials as f64).sqrt();
    assert!(
        (mean - n as f64).abs() < 5.0 * sd_of_mean,
        "mean={mean} truth={n} sd_of_mean={sd_of_mean}"
    );
}
