//! Wire codecs and registry factories for the Microsoft mechanisms.
//!
//! * [`DBitReport`] travels as `uvarint d | d delta-varint bucket ids |
//!   packed bits` — the bucket list is sorted ascending, so
//!   delta-encoding keeps a `d = 16` report around 20 bytes even over
//!   `k = 2²⁰` buckets.
//! * 1BitMean's report is a single `bool`; its codec
//!   (`ldp_core::wire::tag::BIT`) lives in `ldp-core`.
//!
//! [`register_mechanisms`] plugs [`DBitFlip`] (as a frequency oracle)
//! and [`OneBitMean`] (as a real-input [`WireMechanism`]) into a
//! [`Registry`]: `domain_size` → bucket count, `bits_per_device` → `d`,
//! `max_value` → the 1BitMean input bound.

use crate::dbitflip::{DBitFlip, DBitReport};
use crate::onebit::OneBitMean;
use ldp_core::protocol::{MechanismKind, Registry};
use ldp_core::wire::{
    get_packed_bits, packed_bit, put_packed_bits, put_uvarint, tag, ErasedBridge, ErasedMechanism,
    OracleMechanism, WireMechanism, WireReader, WireReport,
};
use ldp_core::{LdpError, Result};
use rand::RngCore;

impl WireReport for DBitReport {
    const TAG: u8 = tag::MS_DBIT;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.buckets.len() as u64);
        // Buckets are sorted ascending: delta-encode (first is absolute).
        let mut prev = 0u64;
        for (i, &j) in self.buckets.iter().enumerate() {
            let j = j as u64;
            put_uvarint(out, if i == 0 { j } else { j - prev });
            prev = j;
        }
        put_packed_bits(out, self.bits.iter().copied());
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let d = r.uvarint()?;
        let d = usize::try_from(d)
            .map_err(|_| LdpError::Malformed(format!("bit count {d} overflows usize")))?;
        // Each bucket delta is at least one byte; bound the allocation.
        if r.remaining() < d {
            return Err(LdpError::Truncated {
                needed: d,
                available: r.remaining(),
            });
        }
        let mut buckets = Vec::with_capacity(d);
        let mut prev = 0u64;
        for i in 0..d {
            let delta = r.uvarint()?;
            let j = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .filter(|_| delta > 0)
                    .ok_or_else(|| {
                        LdpError::Malformed("bucket list not strictly ascending".into())
                    })?
            };
            let bucket = u32::try_from(j)
                .map_err(|_| LdpError::Malformed(format!("bucket {j} overflows u32")))?;
            buckets.push(bucket);
            prev = j;
        }
        let bytes = get_packed_bits(r, d)?;
        let bits = (0..d).map(|i| packed_bit(bytes, i)).collect();
        Ok(Self { buckets, bits })
    }
}

/// 1BitMean as a wire mechanism: real-valued input in `[0, max]`, one
/// privatized bit out. The scalar path is the mechanism's only path
/// (`accumulate_batch` is the same `gen_bool` per input), so the byte
/// path is trivially RNG-stream-identical to the fused engine.
impl WireMechanism for OneBitMean {
    fn try_randomize_input(&self, input: &f64, rng: &mut dyn RngCore) -> Result<bool> {
        if !(0.0..=self.max_value()).contains(input) {
            return Err(LdpError::InvalidParameter(format!(
                "1BitMean input {input} outside [0, {}]",
                self.max_value()
            )));
        }
        Ok(self.randomize(*input, rng))
    }
}

/// Registers the Microsoft mechanism factories
/// ([`MechanismKind::MicrosoftDBitFlip`],
/// [`MechanismKind::MicrosoftOneBitMean`]) into `registry`.
pub fn register_mechanisms(registry: &mut Registry) {
    registry.register(MechanismKind::MicrosoftDBitFlip, |d| {
        let mech = DBitFlip::new(
            d.domain_size() as u32,
            d.bits_per_device(),
            d.epsilon_checked(),
        )?;
        Ok(
            Box::new(ErasedBridge::new(OracleMechanism(mech), d.clone()))
                as Box<dyn ErasedMechanism>,
        )
    });
    registry.register(MechanismKind::MicrosoftOneBitMean, |d| {
        let mech = OneBitMean::new(d.epsilon_checked(), d.max_value())?;
        Ok(Box::new(ErasedBridge::new(mech, d.clone())) as Box<dyn ErasedMechanism>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::wire::{decode_report, encode_report_vec};

    #[test]
    fn dbit_report_round_trips() {
        let report = DBitReport {
            buckets: vec![0, 5, 6, 900, 1023],
            bits: vec![true, false, false, true, true],
        };
        let back: DBitReport = decode_report(&encode_report_vec(&report)).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn dbit_decode_rejects_unsorted_buckets() {
        let report = DBitReport {
            buckets: vec![5, 5],
            bits: vec![true, false],
        };
        // A zero delta after the first bucket encodes a duplicate — the
        // decoder must reject it rather than round-tripping silently.
        let frame = encode_report_vec(&report);
        assert!(decode_report::<DBitReport>(&frame).is_err());
    }
}
