//! 1BitMean: Microsoft's single-bit mean estimator.
//!
//! Each device holds `x ∈ [0, max]` and transmits **one bit**, set with
//! probability
//! `Pr[1] = 1/(e^ε+1) + (x/max)·(e^ε−1)/(e^ε+1)`.
//! The bit is ε-LDP (likelihood ratio between any two inputs is at most
//! `e^ε`, attained at the endpoints), and the debiased average
//! `max/n · Σ (b·(e^ε+1) − 1)/(e^ε−1)` is an unbiased mean estimate with
//! worst-case standard deviation `max·√(e^ε+1)²/… /√n` — the
//! `O(max/(ε√n))` the paper quotes for millions of devices.

use ldp_core::fo::FoAggregator;
use ldp_core::mech::BatchMechanism;
use ldp_core::{Epsilon, Error, Result};
use rand::{Rng, RngCore};

/// The 1BitMean mechanism over values in `[0, max_value]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneBitMean {
    epsilon: Epsilon,
    max_value: f64,
}

impl OneBitMean {
    /// Creates the mechanism.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if `max_value` is not positive
    /// and finite.
    pub fn new(epsilon: Epsilon, max_value: f64) -> Result<Self> {
        if !(max_value.is_finite() && max_value > 0.0) {
            return Err(Error::InvalidParameter(format!(
                "max_value must be positive and finite, got {max_value}"
            )));
        }
        Ok(Self { epsilon, max_value })
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Upper bound of the input range.
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// The probability the report bit is 1 for input `x`.
    ///
    /// # Panics
    /// Panics if `x` is outside `[0, max_value]`.
    pub fn p_one(&self, x: f64) -> f64 {
        assert!(
            (0.0..=self.max_value).contains(&x),
            "x={x} outside [0, {}]",
            self.max_value
        );
        let e = self.epsilon.exp();
        1.0 / (e + 1.0) + (x / self.max_value) * (e - 1.0) / (e + 1.0)
    }

    /// Client side: the single-bit report.
    pub fn randomize<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> bool {
        rng.gen_bool(self.p_one(x))
    }

    /// Debiases one bit into an unbiased per-user contribution in value
    /// units: `max·(b·(e^ε+1) − 1)/(e^ε−1)`.
    pub fn debias(&self, bit: bool) -> f64 {
        let e = self.epsilon.exp();
        let b = if bit { 1.0 } else { 0.0 };
        self.max_value * (b * (e + 1.0) - 1.0) / (e - 1.0)
    }

    /// Server side: unbiased mean estimate from all report bits.
    pub fn estimate_mean(&self, bits: &[bool]) -> f64 {
        if bits.is_empty() {
            return 0.0;
        }
        bits.iter().map(|&b| self.debias(b)).sum::<f64>() / bits.len() as f64
    }

    /// Worst-case variance of the mean estimate over `n` devices
    /// (maximized at `Pr[1] = ½`):
    /// `max²·(e^ε+1)²/(4n(e^ε−1)²)`.
    ///
    /// This method is the formula's single home: the planner's cost
    /// model ([`crate::cost`]) prices 1BitMean plans by instantiating
    /// the mechanism and delegating here.
    pub fn worst_case_variance(&self, n: usize) -> f64 {
        let e = self.epsilon.exp();
        self.max_value * self.max_value * (e + 1.0).powi(2) / (4.0 * n as f64 * (e - 1.0).powi(2))
    }

    /// Creates an empty streaming aggregator — the sufficient statistic
    /// is just the 1-bit count, so server memory is `O(1)` regardless of
    /// the device population (unlike [`estimate_mean`](Self::estimate_mean),
    /// which needs all bits materialized).
    pub fn new_aggregator(&self) -> OneBitMeanAggregator {
        OneBitMeanAggregator {
            mechanism: *self,
            ones: 0,
            n: 0,
        }
    }
}

/// Streaming aggregator for [`OneBitMean`]: the exact integer 1-bit count.
///
/// Implements [`FoAggregator`] so the sharded parallel engine can merge
/// it; `estimate()` returns the single-element vector `[mean]` (this is a
/// mean estimator, not a histogram — the "domain" is the one statistic).
#[derive(Debug, Clone)]
pub struct OneBitMeanAggregator {
    mechanism: OneBitMean,
    ones: u64,
    n: usize,
}

impl OneBitMeanAggregator {
    /// The mechanism this aggregator was configured for.
    pub fn mechanism(&self) -> OneBitMean {
        self.mechanism
    }

    /// Number of 1-bits observed.
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// The 1BitMean debias applied to an arbitrary underlying 1-rate:
    /// `max·(rate·(e^ε+1) − 1)/(e^ε−1)` — the linear map behind
    /// [`mean`](Self::mean), exposed for wrappers that correct the rate
    /// first (the telemetry pipeline's γ output perturbation).
    pub fn debiased_rate_to_mean(&self, rate: f64) -> f64 {
        let e = self.mechanism.epsilon.exp();
        self.mechanism.max_value * (rate * (e + 1.0) - 1.0) / (e - 1.0)
    }

    /// Unbiased mean estimate from the accumulated counts:
    /// `max·(ones·(e^ε+1) − n)/((e^ε−1)·n)` — algebraically identical to
    /// [`OneBitMean::estimate_mean`] over the same bits (they may differ
    /// in the last ulp: this form divides once instead of summing `n`
    /// per-bit debias terms).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let e = self.mechanism.epsilon.exp();
        self.mechanism.max_value * (self.ones as f64 * (e + 1.0) - self.n as f64)
            / ((e - 1.0) * self.n as f64)
    }
}

impl ldp_core::snapshot::StateSnapshot for OneBitMeanAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::MS_ONE_BIT_MEAN
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_f64_le(out, self.mechanism.epsilon.value());
        ldp_core::wire::put_f64_le(out, self.mechanism.max_value);
        ldp_core::snapshot::put_count(out, self.n);
        ldp_core::wire::put_uvarint(out, self.ones);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_f64(r, self.mechanism.epsilon.value(), "1BitMean epsilon")?;
        ldp_core::snapshot::check_f64(r, self.mechanism.max_value, "1BitMean max value")?;
        let n = ldp_core::snapshot::get_count(r)?;
        let ones = r.uvarint()?;
        self.n = n;
        self.ones = ones;
        Ok(())
    }
}

impl FoAggregator for OneBitMeanAggregator {
    type Report = bool;

    fn accumulate(&mut self, report: &bool) {
        self.ones += u64::from(*report);
        self.n += 1;
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        vec![self.mean()]
    }

    fn merge(&mut self, other: Self) {
        assert!(
            self.mechanism == other.mechanism,
            "merge: mechanism mismatch"
        );
        self.ones += other.ones;
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.mechanism != other.mechanism {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: 1BitMean mechanism mismatch".into(),
            ));
        }
        if self.n < other.n || self.ones < other.ones {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: 1BitMean subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        self.ones -= other.ones;
        self.n -= other.n;
        Ok(())
    }
}

/// 1BitMean is not a frequency oracle — its input is a bounded real, not
/// an item — so it joins the sharded engine through [`BatchMechanism`]
/// directly: `ldp_workloads::parallel::accumulate_mech_sharded` drives it
/// over `&[f64]` populations.
impl BatchMechanism for OneBitMean {
    type Input = f64;
    type Aggregator = OneBitMeanAggregator;

    fn new_aggregator(&self) -> OneBitMeanAggregator {
        OneBitMean::new_aggregator(self)
    }

    /// Monomorphized batch path: one `gen_bool` draw per device, bit
    /// folded straight into the integer counter. Same RNG stream as the
    /// scalar `randomize` + `accumulate` loop by construction.
    fn accumulate_batch<R: RngCore>(
        &self,
        inputs: &[f64],
        rng: &mut R,
        agg: &mut OneBitMeanAggregator,
    ) {
        assert!(agg.mechanism == *self, "aggregator mechanism mismatch");
        for &x in inputs {
            let bit = self.randomize(x, rng);
            agg.ones += u64::from(bit);
            agg.n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mech(eps: f64, max: f64) -> OneBitMean {
        OneBitMean::new(Epsilon::new(eps).unwrap(), max).unwrap()
    }

    #[test]
    fn p_one_endpoints_saturate_ldp() {
        let m = mech(1.0, 100.0);
        let p0 = m.p_one(0.0);
        let p100 = m.p_one(100.0);
        // Likelihood ratios at both output values equal e^eps.
        assert!((p100 / p0 - 1.0f64.exp()).abs() < 1e-9);
        assert!(((1.0 - p0) / (1.0 - p100) - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn p_one_linear_in_x() {
        let m = mech(2.0, 10.0);
        let mid = m.p_one(5.0);
        assert!((mid - (m.p_one(0.0) + m.p_one(10.0)) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_estimate_unbiased() {
        let m = mech(1.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        // True values: deterministic mixture with mean 230.
        let bits: Vec<bool> = (0..n)
            .map(|i| {
                let x = if i % 10 < 7 { 100.0 } else { 533.3333333333334 };
                m.randomize(x, &mut rng)
            })
            .collect();
        let est = m.estimate_mean(&bits);
        let truth = 0.7 * 100.0 + 0.3 * 533.3333333333334;
        let sd = m.worst_case_variance(n).sqrt();
        assert!(
            (est - truth).abs() < 4.0 * sd,
            "est={est} truth={truth} sd={sd}"
        );
    }

    #[test]
    fn variance_shrinks_with_eps_and_n() {
        let n = 1000;
        assert!(mech(2.0, 1.0).worst_case_variance(n) < mech(0.5, 1.0).worst_case_variance(n));
        assert!(mech(1.0, 1.0).worst_case_variance(10 * n) < mech(1.0, 1.0).worst_case_variance(n));
    }

    #[test]
    fn empty_reports_estimate_zero() {
        assert_eq!(mech(1.0, 5.0).estimate_mean(&[]), 0.0);
        assert_eq!(mech(1.0, 5.0).new_aggregator().mean(), 0.0);
    }

    #[test]
    fn aggregator_mean_matches_estimate_mean() {
        let m = mech(1.0, 250.0);
        let mut rng = StdRng::seed_from_u64(11);
        let bits: Vec<bool> = (0..5000)
            .map(|i| m.randomize((i % 200) as f64, &mut rng))
            .collect();
        let mut agg = m.new_aggregator();
        for &b in &bits {
            agg.accumulate(&b);
        }
        assert_eq!(agg.reports(), bits.len());
        let direct = m.estimate_mean(&bits);
        assert!(
            (agg.mean() - direct).abs() < 1e-9,
            "agg={} direct={direct}",
            agg.mean()
        );
        assert_eq!(agg.estimate(), vec![agg.mean()]);
    }

    #[test]
    fn batch_path_bit_identical_and_merge_exact() {
        use ldp_core::mech::BatchMechanism;
        let m = mech(2.0, 100.0);
        let values: Vec<f64> = (0..3000).map(|i| (i % 100) as f64).collect();

        let mut scalar_rng = StdRng::seed_from_u64(13);
        let mut scalar = m.new_aggregator();
        for &x in &values {
            scalar.accumulate(&m.randomize(x, &mut scalar_rng));
        }

        let mut batch_rng = StdRng::seed_from_u64(13);
        let mut batch = m.new_aggregator();
        m.accumulate_batch(&values, &mut batch_rng, &mut batch);
        assert_eq!(scalar.ones(), batch.ones());
        assert_eq!(scalar.reports(), batch.reports());

        // Split + merge reproduces the counters exactly.
        let mut rng = StdRng::seed_from_u64(13);
        let mut a = m.new_aggregator();
        m.accumulate_batch(&values[..1000], &mut rng, &mut a);
        let mut b = m.new_aggregator();
        m.accumulate_batch(&values[1000..], &mut rng, &mut b);
        a.merge(b);
        assert_eq!(a.ones(), scalar.ones());
        assert_eq!(a.reports(), scalar.reports());
    }

    #[test]
    fn rejects_bad_range() {
        assert!(OneBitMean::new(Epsilon::new(1.0).unwrap(), 0.0).is_err());
        assert!(OneBitMean::new(Epsilon::new(1.0).unwrap(), f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_panics() {
        let m = mech(1.0, 10.0);
        m.p_one(11.0);
    }
}
