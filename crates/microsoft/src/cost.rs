//! Cost-model entries for the Microsoft telemetry mechanisms,
//! registered into [`CostBook`] alongside the Apple and core entries.
//!
//! Variance delegates to the mechanisms' own published formulas —
//! [`DBitFlip::count_variance`] (the `(k/d)²`-scaled covered-bucket
//! bound) and [`OneBitMean::worst_case_variance`] — keeping one source
//! of truth per mechanism. The dBitFlip knob is bits-per-device `b`:
//! more bits per report means more coverage per bucket (variance falls
//! as `1/b`) at the price of a bigger frame, so the tuner takes the
//! most bits the report budget allows. 1BitMean is the only entry that
//! answers [`QueryShape::Mean`] — and the only shape it answers.

use crate::dbitflip::DBitFlip;
use crate::onebit::OneBitMean;
use ldp_core::cost::{
    frame_bytes, uvarint_len, CostBook, CostEstimate, CostModel, QueryShape, WorkloadSpec,
    STATE_OVERHEAD_BYTES,
};
use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp_core::{LdpError, Result};

/// Most bits per device the tuner reaches for when budgets allow —
/// beyond this the variance gains flatten while frames keep growing.
const MAX_BITS_PER_DEVICE: u64 = 64;

/// Registers the Microsoft cost entries (dBitFlip, 1BitMean).
pub fn register_cost_models(book: &mut CostBook) {
    book.register(DBitFlipCost);
    book.register(OneBitMeanCost);
}

/// dBitFlip payload upper bound: bit count varint, then per covered
/// bucket a delta varint (bounded by the absolute index width) plus a
/// packed bit.
fn dbit_payload(b: u64, buckets: u64) -> u64 {
    uvarint_len(b) + b.saturating_mul(uvarint_len(buckets.saturating_sub(1))) + b.div_ceil(8)
}

struct DBitFlipCost;

impl CostModel for DBitFlipCost {
    fn kind(&self) -> MechanismKind {
        MechanismKind::MicrosoftDBitFlip
    }

    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>> {
        spec.validate()?;
        if matches!(spec.query_shape, QueryShape::Mean { .. }) {
            return Ok(None);
        }
        if spec.domain_size > u64::from(u32::MAX) {
            return Ok(None); // bucketed telemetry tops out at u32 buckets
        }
        // Most coverage the budgets allow: variance falls as 1/b, frame
        // grows linearly in b.
        let mut b = MAX_BITS_PER_DEVICE.min(spec.domain_size);
        if let Some(budget) = spec.report_budget {
            while b > 1 && frame_bytes(dbit_payload(b, spec.domain_size)) > budget {
                b -= 1;
            }
            if frame_bytes(dbit_payload(b, spec.domain_size)) > budget {
                return Ok(None);
            }
        }
        Ok(Some(
            ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
                .domain_size(spec.domain_size)
                .epsilon(spec.epsilon)
                .bits_per_device(u32::try_from(b).expect("b <= 64"))
                .build()?,
        ))
    }

    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate> {
        if desc.kind() != MechanismKind::MicrosoftDBitFlip {
            return Err(LdpError::InvalidParameter(format!(
                "dBitFlip cost entry asked to price a {} descriptor",
                desc.kind().name()
            )));
        }
        let buckets = desc.domain_size();
        let b = u64::from(desc.bits_per_device());
        let mech = DBitFlip::new(
            u32::try_from(buckets).map_err(|_| {
                LdpError::InvalidDescriptor(format!("dBitFlip buckets {buckets} overflow u32"))
            })?,
            desc.bits_per_device(),
            desc.epsilon_checked(),
        )?;
        let n = usize::try_from(spec.population).unwrap_or(usize::MAX);
        Ok(CostEstimate {
            variance: mech.count_variance(n),
            // ones + covered counters per bucket.
            memory_bytes: buckets * 16 + STATE_OVERHEAD_BYTES,
            bytes_per_report: frame_bytes(dbit_payload(b, buckets)),
            decode_ops: spec.queried_items(),
            subtractive: true,
            linear_memory: false,
        })
    }
}

struct OneBitMeanCost;

impl CostModel for OneBitMeanCost {
    fn kind(&self) -> MechanismKind {
        MechanismKind::MicrosoftOneBitMean
    }

    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>> {
        spec.validate()?;
        let QueryShape::Mean { max_value } = spec.query_shape else {
            return Ok(None); // a mean mechanism answers mean queries only
        };
        Ok(Some(
            ProtocolDescriptor::builder(MechanismKind::MicrosoftOneBitMean)
                .domain_size(spec.domain_size)
                .epsilon(spec.epsilon)
                .max_value(max_value)
                .build()?,
        ))
    }

    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate> {
        if desc.kind() != MechanismKind::MicrosoftOneBitMean {
            return Err(LdpError::InvalidParameter(format!(
                "1BitMean cost entry asked to price a {} descriptor",
                desc.kind().name()
            )));
        }
        let mech = OneBitMean::new(desc.epsilon_checked(), desc.max_value())?;
        let n = usize::try_from(spec.population).unwrap_or(usize::MAX);
        Ok(CostEstimate {
            variance: mech.worst_case_variance(n),
            memory_bytes: STATE_OVERHEAD_BYTES,
            bytes_per_report: frame_bytes(1),
            decode_ops: 1,
            subtractive: true,
            linear_memory: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> CostBook {
        let mut b = CostBook::empty();
        register_cost_models(&mut b);
        b
    }

    #[test]
    fn registers_both_mechanisms() {
        let b = book();
        assert!(b.get(MechanismKind::MicrosoftDBitFlip).is_some());
        assert!(b.get(MechanismKind::MicrosoftOneBitMean).is_some());
    }

    #[test]
    fn dbit_takes_more_bits_when_frames_allow() {
        let b = book();
        let model = b.get(MechanismKind::MicrosoftDBitFlip).unwrap();
        let roomy = WorkloadSpec::new(256, 100_000, 1.0);
        let tight = WorkloadSpec::new(256, 100_000, 1.0).with_report_budget(16);
        let d_roomy = model.tune(&roomy).unwrap().unwrap();
        let d_tight = model.tune(&tight).unwrap().unwrap();
        assert!(d_roomy.bits_per_device() > d_tight.bits_per_device());
        let c_tight = model.cost(&d_tight, &tight).unwrap();
        assert!(c_tight.bytes_per_report <= 16);
        let c_roomy = model.cost(&d_roomy, &roomy).unwrap();
        assert!(c_roomy.variance < c_tight.variance, "more bits, less noise");
    }

    #[test]
    fn dbit_variance_delegates_to_mechanism() {
        let b = book();
        let model = b.get(MechanismKind::MicrosoftDBitFlip).unwrap();
        let spec = WorkloadSpec::new(128, 20_000, 1.0);
        let desc = model.tune(&spec).unwrap().unwrap();
        let cost = model.cost(&desc, &spec).unwrap();
        let mech = DBitFlip::new(128, desc.bits_per_device(), desc.epsilon_checked()).unwrap();
        assert_eq!(cost.variance, mech.count_variance(20_000));
    }

    #[test]
    fn onebit_serves_only_mean_queries() {
        let b = book();
        let model = b.get(MechanismKind::MicrosoftOneBitMean).unwrap();
        assert!(model
            .tune(&WorkloadSpec::new(64, 1000, 1.0))
            .unwrap()
            .is_none());
        let mean =
            WorkloadSpec::new(64, 1000, 1.0).with_query_shape(QueryShape::Mean { max_value: 10.0 });
        let desc = model.tune(&mean).unwrap().unwrap();
        assert_eq!(desc.max_value(), 10.0);
        let cost = model.cost(&desc, &mean).unwrap();
        let mech = OneBitMean::new(desc.epsilon_checked(), 10.0).unwrap();
        assert_eq!(cost.variance, mech.worst_case_variance(1000));
        assert!(cost.bytes_per_report <= 4);
    }
}
