//! dBitFlip: Microsoft's d-bit histogram estimator.
//!
//! The value space (e.g. app-usage seconds) is bucketized into `k` buckets.
//! Each device is randomly responsible for `d ≤ k` buckets (sampled
//! without replacement at enrollment); at collection time it sends, for
//! each of its buckets `j`, the bit `1[v ∈ bucket j]` flipped through
//! symmetric randomized response with probability `e^{ε/2}/(e^{ε/2}+1)`.
//!
//! Changing a device's value changes at most **two** of its (one-hot)
//! bucket bits, so per-bit `ε/2` randomized response yields ε-LDP overall —
//! the same accounting as SUE, but with communication `d` bits instead of
//! `k`. The server debiases each bucket over the devices responsible for
//! it and rescales by `k/d`; the per-bucket standard deviation is
//! `√(k/d)`-fold that of full SUE, the accuracy/communication dial the
//! paper exposes.

use ldp_core::estimate::debias_count;
use ldp_core::{Epsilon, Error, Result};
use rand::seq::index::sample;
use rand::Rng;

/// One dBitFlip report: which buckets the device covers, and its noisy
/// bits for them (parallel arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DBitReport {
    /// The `d` bucket indices this device is responsible for (sorted).
    pub buckets: Vec<u32>,
    /// Noisy indicator bits, one per entry of `buckets`.
    pub bits: Vec<bool>,
}

/// The dBitFlip mechanism over `k` buckets with `d` bits per device.
#[derive(Debug, Clone, Copy)]
pub struct DBitFlip {
    k: u32,
    d: u32,
    epsilon: Epsilon,
    /// Pr[bit kept truthful] = e^{ε/2}/(e^{ε/2}+1).
    p: f64,
}

impl DBitFlip {
    /// Creates the mechanism.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] unless `1 ≤ d ≤ k` and `k ≥ 2`.
    pub fn new(k: u32, d: u32, epsilon: Epsilon) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter(format!(
                "need k >= 2 buckets, got {k}"
            )));
        }
        if d == 0 || d > k {
            return Err(Error::InvalidParameter(format!(
                "need 1 <= d <= k, got d={d} k={k}"
            )));
        }
        let half = (epsilon.value() / 2.0).exp();
        Ok(Self {
            k,
            d,
            epsilon,
            p: half / (half + 1.0),
        })
    }

    /// Bucket count `k`.
    pub fn buckets(&self) -> u32 {
        self.k
    }

    /// Bits per device `d`.
    pub fn bits_per_device(&self) -> u32 {
        self.d
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Client side: sample the device's bucket set (enrollment) and
    /// produce its noisy bits for a value in bucket `value_bucket`.
    ///
    /// # Panics
    /// Panics if `value_bucket >= k`.
    pub fn randomize<R: Rng + ?Sized>(&self, value_bucket: u32, rng: &mut R) -> DBitReport {
        assert!(
            value_bucket < self.k,
            "bucket {value_bucket} out of range {}",
            self.k
        );
        let mut buckets: Vec<u32> = sample(rng, self.k as usize, self.d as usize)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        buckets.sort_unstable();
        let bits = buckets
            .iter()
            .map(|&j| {
                let truth = j == value_bucket;
                if rng.gen_bool(self.p) {
                    truth
                } else {
                    !truth
                }
            })
            .collect();
        DBitReport { buckets, bits }
    }

    /// Creates an empty aggregator.
    pub fn new_aggregator(&self) -> DBitAggregator {
        DBitAggregator {
            ones: vec![0; self.k as usize],
            covered: vec![0; self.k as usize],
            n: 0,
            p: self.p,
        }
    }

    /// Per-bucket count variance over `n` devices (noise floor):
    /// each bucket is covered by `≈ n·d/k` devices with SUE-grade noise,
    /// then rescaled by `k/d`.
    pub fn count_variance(&self, n: usize) -> f64 {
        let covered = n as f64 * self.d as f64 / self.k as f64;
        let q = 1.0 - self.p;
        let per_covered = covered * q * (1.0 - q) / (self.p - q).powi(2);
        per_covered * (self.k as f64 / self.d as f64).powi(2)
    }
}

/// Aggregator for [`DBitFlip`].
#[derive(Debug, Clone)]
pub struct DBitAggregator {
    /// Noisy 1-counts per bucket.
    ones: Vec<u64>,
    /// Number of devices covering each bucket.
    covered: Vec<u64>,
    n: usize,
    p: f64,
}

impl DBitAggregator {
    /// Folds one report in.
    ///
    /// # Panics
    /// Panics if the report's arrays disagree or reference unknown buckets.
    pub fn accumulate(&mut self, report: &DBitReport) {
        assert_eq!(report.buckets.len(), report.bits.len(), "malformed report");
        for (&j, &b) in report.buckets.iter().zip(&report.bits) {
            let j = j as usize;
            assert!(j < self.ones.len(), "bucket {j} out of range");
            self.covered[j] += 1;
            if b {
                self.ones[j] += 1;
            }
        }
        self.n += 1;
    }

    /// Devices accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Unbiased histogram estimate (population counts per bucket):
    /// debias over covering devices, then scale by `n / covered_j`.
    pub fn estimate(&self) -> Vec<f64> {
        let q = 1.0 - self.p;
        self.ones
            .iter()
            .zip(&self.covered)
            .map(|(&ones, &cov)| {
                if cov == 0 {
                    return 0.0;
                }
                let debiased = debias_count(ones as f64, cov as usize, self.p, q);
                debiased * self.n as f64 / cov as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(DBitFlip::new(1, 1, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 0, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 9, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 8, eps(1.0)).is_ok());
    }

    #[test]
    fn report_shape() {
        let m = DBitFlip::new(32, 4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = m.randomize(5, &mut rng);
        assert_eq!(r.buckets.len(), 4);
        assert_eq!(r.bits.len(), 4);
        let mut sorted = r.buckets.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "buckets must be distinct");
        assert!(r.buckets.iter().all(|&b| b < 32));
    }

    #[test]
    fn histogram_unbiased() {
        let m = DBitFlip::new(16, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut agg = m.new_aggregator();
        let mut truth = [0f64; 16];
        for u in 0..n {
            // Skewed: bucket u%4 for most, bucket 8 for some.
            let b = if u % 10 == 0 { 8 } else { (u % 4) as u32 };
            truth[b as usize] += 1.0;
            agg.accumulate(&m.randomize(b, &mut rng));
        }
        let est = agg.estimate();
        let sd = m.count_variance(n).sqrt();
        for j in 0..16 {
            assert!(
                (est[j] - truth[j]).abs() < 5.0 * sd,
                "bucket {j}: est={} truth={} sd={sd}",
                est[j],
                truth[j]
            );
        }
    }

    #[test]
    fn full_coverage_matches_sue_accuracy() {
        // d = k: every device covers every bucket; variance should equal
        // the SUE noise floor (no k/d inflation).
        let m_full = DBitFlip::new(8, 8, eps(1.0)).unwrap();
        let m_sub = DBitFlip::new(8, 2, eps(1.0)).unwrap();
        assert!(m_full.count_variance(1000) < m_sub.count_variance(1000));
        let ratio = m_sub.count_variance(1000) / m_full.count_variance(1000);
        assert!((ratio - 4.0).abs() < 0.1, "k/d variance inflation: {ratio}");
    }

    #[test]
    fn estimates_sum_near_n() {
        let m = DBitFlip::new(8, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut agg = m.new_aggregator();
        for u in 0..n {
            agg.accumulate(&m.randomize((u % 8) as u32, &mut rng));
        }
        let total: f64 = agg.estimate().iter().sum();
        assert!((total - n as f64).abs() < n as f64 * 0.1, "total={total}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        let m = DBitFlip::new(8, 2, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        m.randomize(8, &mut rng);
    }
}
