//! dBitFlip: Microsoft's d-bit histogram estimator.
//!
//! The value space (e.g. app-usage seconds) is bucketized into `k` buckets.
//! Each device is randomly responsible for `d ≤ k` buckets (sampled
//! without replacement at enrollment); at collection time it sends, for
//! each of its buckets `j`, the bit `1[v ∈ bucket j]` flipped through
//! symmetric randomized response with probability `e^{ε/2}/(e^{ε/2}+1)`.
//!
//! Changing a device's value changes at most **two** of its (one-hot)
//! bucket bits, so per-bit `ε/2` randomized response yields ε-LDP overall —
//! the same accounting as SUE, but with communication `d` bits instead of
//! `k`. The server debiases each bucket over the devices responsible for
//! it and rescales by `k/d`; the per-bucket standard deviation is
//! `√(k/d)`-fold that of full SUE, the accuracy/communication dial the
//! paper exposes.
//!
//! ## Batch engine
//!
//! The client channel decomposes into two stages the batch engine can
//! amortize, shared verbatim by the scalar and fused paths:
//!
//! 1. **Bucket sampling** — `d` distinct of `k`: rejection sampling when
//!    `d ≪ k` (expected `O(d)` draws, no `O(k)` pool — the naive
//!    Fisher–Yates pool is what made the old path allocate and touch `k`
//!    words per report), falling back to a partial Fisher–Yates over a
//!    reusable pool when `d` is a large fraction of `k`.
//! 2. **Bit flips** — each of the `d` bits flips with the *small*
//!    probability `q = 1/(e^{ε/2}+1)`, so flipped positions are sampled
//!    with the shared geometric-skip sampler
//!    ([`ldp_core::fo::batch::GeometricSkip`]): `1 + d·q` draws instead
//!    of `d`.
//!
//! [`DBitFlip`] also implements `ldp_core::fo::FrequencyOracle` (the
//! bucket index is the item), with a fused
//! `randomize_accumulate_batch` that folds reports straight into the
//! integer [`DBitAggregator`] counters with zero per-report allocation —
//! which is what lets `ldp_workloads::parallel` shard its collection.

use ldp_core::estimate::debias_count;
use ldp_core::fo::batch::GeometricSkip;
use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::{Epsilon, Error, Result};
use rand::{Rng, RngCore};

/// One dBitFlip report: which buckets the device covers, and its noisy
/// bits for them (parallel arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DBitReport {
    /// The `d` bucket indices this device is responsible for (sorted).
    pub buckets: Vec<u32>,
    /// Noisy indicator bits, one per entry of `buckets`.
    pub bits: Vec<bool>,
}

/// The dBitFlip mechanism over `k` buckets with `d` bits per device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DBitFlip {
    k: u32,
    d: u32,
    epsilon: Epsilon,
    /// Pr[bit kept truthful] = e^{ε/2}/(e^{ε/2}+1).
    p: f64,
    /// Geometric-skip sampler for the per-bit flip rate `q = 1 − p`,
    /// precomputed once; shared by the scalar and fused paths so both
    /// consume identical RNG streams.
    flip_skip: GeometricSkip,
}

impl DBitFlip {
    /// Creates the mechanism.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] unless `1 ≤ d ≤ k` and `k ≥ 2`.
    pub fn new(k: u32, d: u32, epsilon: Epsilon) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter(format!(
                "need k >= 2 buckets, got {k}"
            )));
        }
        if d == 0 || d > k {
            return Err(Error::InvalidParameter(format!(
                "need 1 <= d <= k, got d={d} k={k}"
            )));
        }
        let half = (epsilon.value() / 2.0).exp();
        let p = half / (half + 1.0);
        Ok(Self {
            k,
            d,
            epsilon,
            p,
            flip_skip: GeometricSkip::new(1.0 - p),
        })
    }

    /// Bucket count `k`.
    pub fn buckets(&self) -> u32 {
        self.k
    }

    /// Bits per device `d`.
    pub fn bits_per_device(&self) -> u32 {
        self.d
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Pr[bit kept truthful] = `e^{ε/2}/(e^{ε/2}+1)`.
    pub fn keep_prob(&self) -> f64 {
        self.p
    }

    /// Samples the device's `d` distinct buckets into `out` (sorted
    /// ascending), reusing `pool` as Fisher–Yates scratch when the dense
    /// branch is taken. The single bucket-sampling core behind both the
    /// scalar and the fused paths — which is what makes their RNG streams
    /// identical.
    ///
    /// Branch selection is deterministic in `(k, d)`: rejection sampling
    /// when `4·d ≤ k` (expected `< 4/3` draws per bucket, never touches
    /// `pool`), partial Fisher–Yates otherwise (exactly `d` draws, `O(k)`
    /// pool reset).
    fn sample_buckets_into<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut Vec<u32>,
        pool: &mut Vec<u32>,
    ) {
        out.clear();
        let (k, d) = (self.k as usize, self.d as usize);
        if d * 4 <= k {
            // Sparse: rejection against the already-picked prefix. The
            // linear membership scan is O(d²) worst case, but d ≤ k/4
            // keeps d small exactly when this branch is selected.
            while out.len() < d {
                let c = rng.gen_range(0..self.k);
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        } else {
            // Dense: partial Fisher–Yates over a reusable pool.
            pool.clear();
            pool.extend(0..self.k);
            for i in 0..d {
                let j = rng.gen_range(i..k);
                pool.swap(i, j);
            }
            out.extend_from_slice(&pool[..d]);
        }
        out.sort_unstable();
    }

    /// Samples a fresh device bucket set (enrollment): `d` distinct
    /// buckets, sorted ascending.
    pub fn sample_buckets<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.d as usize);
        let mut pool = Vec::new();
        self.sample_buckets_into(rng, &mut out, &mut pool);
        out
    }

    /// Client side: sample the device's bucket set (enrollment) and
    /// produce its noisy bits for a value in bucket `value_bucket`.
    ///
    /// # Panics
    /// Panics if `value_bucket >= k`.
    pub fn randomize<R: Rng + ?Sized>(&self, value_bucket: u32, rng: &mut R) -> DBitReport {
        assert!(
            value_bucket < self.k,
            "bucket {value_bucket} out of range {}",
            self.k
        );
        let buckets = self.sample_buckets(rng);
        let mut bits: Vec<bool> = buckets.iter().map(|&j| j == value_bucket).collect();
        self.flip_skip.sample_into(self.d as u64, rng, |i| {
            let b = &mut bits[i as usize];
            *b = !*b;
        });
        DBitReport { buckets, bits }
    }

    /// Creates an empty aggregator.
    pub fn new_aggregator(&self) -> DBitAggregator {
        DBitAggregator {
            ones: vec![0; self.k as usize],
            covered: vec![0; self.k as usize],
            n: 0,
            d: self.d,
            p: self.p,
        }
    }

    /// Per-bucket count variance over `n` devices (noise floor):
    /// each bucket is covered by `≈ n·d/k` devices with SUE-grade noise,
    /// then rescaled by `k/d`.
    ///
    /// This method is the formula's single home: the planner's cost
    /// model ([`crate::cost`]) prices dBitFlip plans by instantiating
    /// the mechanism and delegating here.
    pub fn count_variance(&self, n: usize) -> f64 {
        let covered = n as f64 * self.d as f64 / self.k as f64;
        let q = 1.0 - self.p;
        let per_covered = covered * q * (1.0 - q) / (self.p - q).powi(2);
        per_covered * (self.k as f64 / self.d as f64).powi(2)
    }
}

impl FrequencyOracle for DBitFlip {
    type Report = DBitReport;
    type Aggregator = DBitAggregator;

    fn name(&self) -> &'static str {
        "dBitFlip"
    }

    fn domain_size(&self) -> u64 {
        self.k as u64
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> DBitReport {
        assert!(
            value < self.k as u64,
            "bucket {value} out of range {}",
            self.k
        );
        DBitFlip::randomize(self, value as u32, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(DBitReport),
    {
        for &v in values {
            assert!(v < self.k as u64, "bucket {v} out of range {}", self.k);
            sink(DBitFlip::randomize(self, v as u32, rng));
        }
    }

    /// Fused batch path: reuses one bucket/pool/flip scratch for the
    /// whole batch and folds each report's `(bucket, bit)` pairs straight
    /// into the integer counters — zero per-report allocation,
    /// monomorphized draws, same RNG stream as the scalar loop.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut DBitAggregator,
    ) {
        assert!(
            agg.ones.len() == self.k as usize && agg.p == self.p,
            "aggregator configured for a different dBitFlip mechanism"
        );
        let d = self.d as usize;
        let mut buckets: Vec<u32> = Vec::with_capacity(d);
        let mut pool: Vec<u32> = Vec::new();
        let mut flips: Vec<u32> = Vec::with_capacity(d);
        for &v in values {
            assert!(v < self.k as u64, "bucket {v} out of range {}", self.k);
            self.sample_buckets_into(rng, &mut buckets, &mut pool);
            flips.clear();
            self.flip_skip
                .sample_into(self.d as u64, rng, |i| flips.push(i as u32));
            // Walk the sorted bucket list against the (sorted) flip
            // positions: bit = 1[j == v] XOR flipped.
            let mut fi = 0usize;
            for (idx, &j) in buckets.iter().enumerate() {
                let flipped = fi < flips.len() && flips[fi] == idx as u32;
                fi += usize::from(flipped);
                let bit = (j as u64 == v) != flipped;
                agg.covered[j as usize] += 1;
                agg.ones[j as usize] += u64::from(bit);
            }
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> DBitAggregator {
        DBitFlip::new_aggregator(self)
    }

    /// The analytical per-bucket noise floor (`f`-independent: the
    /// dominant terms are the flip noise and the `k/d` coverage
    /// rescaling), verified empirically in
    /// `crates/microsoft/tests/batch_identity.rs`.
    fn count_variance(&self, n: usize, _f: f64) -> f64 {
        DBitFlip::count_variance(self, n)
    }

    fn report_bits(&self) -> usize {
        // d bucket indices plus d payload bits.
        self.d as usize * (1 + (self.k as u64).next_power_of_two().trailing_zeros() as usize)
    }
}

/// Aggregator for [`DBitFlip`].
#[derive(Debug, Clone)]
pub struct DBitAggregator {
    /// Noisy 1-counts per bucket.
    ones: Vec<u64>,
    /// Number of devices covering each bucket.
    covered: Vec<u64>,
    n: usize,
    /// Bits per device: every legitimate report covers exactly `d`
    /// distinct buckets (the protocol's per-report influence bound).
    d: u32,
    p: f64,
}

impl DBitAggregator {
    /// Folds one report in.
    ///
    /// # Panics
    /// Panics if the report's arrays disagree or reference unknown buckets.
    pub fn accumulate(&mut self, report: &DBitReport) {
        assert_eq!(report.buckets.len(), report.bits.len(), "malformed report");
        self.accumulate_bits(
            report
                .buckets
                .iter()
                .zip(&report.bits)
                .map(|(&j, &b)| (j, b)),
        );
    }

    /// Folds one report given as `(bucket, bit)` pairs, without requiring
    /// a materialized [`DBitReport`] — the allocation-free entry point
    /// used by the memoized repeated-collection clients and the fused
    /// pipeline path. Bit-identical to [`accumulate`](Self::accumulate)
    /// on the equivalent report.
    ///
    /// # Panics
    /// Panics if a bucket index is out of range.
    pub fn accumulate_bits(&mut self, pairs: impl IntoIterator<Item = (u32, bool)>) {
        for (j, b) in pairs {
            let j = j as usize;
            assert!(j < self.ones.len(), "bucket {j} out of range");
            self.covered[j] += 1;
            self.ones[j] += u64::from(b);
        }
        self.n += 1;
    }

    /// Whether this aggregator was configured for `mech` (bucket count
    /// and keep probability agree) — the compatibility check behind the
    /// fused paths' mismatch assertions.
    pub fn compatible_with(&self, mech: &DBitFlip) -> bool {
        self.ones.len() == mech.buckets() as usize
            && self.d == mech.bits_per_device()
            && self.p == mech.keep_prob()
    }

    /// Merges another aggregator's counters into this one. Exact
    /// (integer addition), so sharded collection is bit-identical to
    /// sequential.
    ///
    /// # Panics
    /// Panics if the two aggregators disagree on bucket count or channel.
    pub fn merge(&mut self, other: Self) {
        assert!(
            self.ones.len() == other.ones.len() && self.d == other.d && self.p == other.p,
            "merge: mechanism mismatch"
        );
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        for (a, b) in self.covered.iter_mut().zip(&other.covered) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Subtracts another aggregator's counters from this one — the exact
    /// inverse of [`merge`](Self::merge) for retiring a window delta
    /// from a running total. All-or-nothing: both counter vectors are
    /// underflow-checked before either moves.
    ///
    /// # Errors
    /// [`ldp_core::LdpError::StateMismatch`] if the mechanisms differ or
    /// `other` is not a sub-aggregate of this state.
    pub fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.ones.len() != other.ones.len() || self.d != other.d || self.p != other.p {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: dBitFlip mechanism mismatch".into(),
            ));
        }
        if self.n < other.n
            || !ldp_core::fo::counts_fit(&self.ones, &other.ones)
            || !ldp_core::fo::counts_fit(&self.covered, &other.covered)
        {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: dBitFlip subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        ldp_core::fo::subtract_counts(&mut self.ones, &other.ones);
        ldp_core::fo::subtract_counts(&mut self.covered, &other.covered);
        self.n -= other.n;
        Ok(())
    }

    /// Devices accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Unbiased histogram estimate (population counts per bucket):
    /// debias over covering devices, then scale by `n / covered_j`.
    pub fn estimate(&self) -> Vec<f64> {
        let q = 1.0 - self.p;
        self.ones
            .iter()
            .zip(&self.covered)
            .map(|(&ones, &cov)| {
                if cov == 0 {
                    return 0.0;
                }
                let debiased = debias_count(ones as f64, cov as usize, self.p, q);
                debiased * self.n as f64 / cov as f64
            })
            .collect()
    }
}

impl ldp_core::snapshot::StateSnapshot for DBitAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::MS_DBIT
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, u64::from(self.d));
        ldp_core::wire::put_f64_le(out, self.p);
        ldp_core::snapshot::put_count(out, self.n);
        ldp_core::snapshot::put_counts(out, &self.ones);
        ldp_core::snapshot::put_counts(out, &self.covered);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_u64(r, u64::from(self.d), "dBitFlip bits per device")?;
        ldp_core::snapshot::check_f64(r, self.p, "dBitFlip keep probability")?;
        let n = ldp_core::snapshot::get_count(r)?;
        let ones = ldp_core::snapshot::get_counts(r, self.ones.len(), "dBitFlip bucket counts")?;
        let covered =
            ldp_core::snapshot::get_counts(r, self.covered.len(), "dBitFlip coverage counts")?;
        self.n = n;
        self.ones = ones;
        self.covered = covered;
        Ok(())
    }
}

impl FoAggregator for DBitAggregator {
    type Report = DBitReport;

    fn accumulate(&mut self, report: &DBitReport) {
        DBitAggregator::accumulate(self, report);
    }

    fn try_accumulate(&mut self, report: &DBitReport) -> ldp_core::Result<()> {
        let k = self.ones.len();
        if report.buckets.len() != report.bits.len() {
            return Err(Error::Malformed(format!(
                "dBitFlip report with {} buckets but {} bits",
                report.buckets.len(),
                report.bits.len()
            )));
        }
        // The protocol's influence bound: exactly `d` buckets per
        // device (a k-bucket "report" would vote k/d times over).
        if report.buckets.len() != self.d as usize {
            return Err(Error::Malformed(format!(
                "dBitFlip report covers {} buckets, protocol says {}",
                report.buckets.len(),
                self.d
            )));
        }
        if let Some(&j) = report.buckets.iter().find(|&&j| j as usize >= k) {
            return Err(Error::Malformed(format!(
                "dBitFlip bucket {j} outside range {k}"
            )));
        }
        DBitAggregator::accumulate(self, report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        DBitAggregator::estimate(self)
    }

    fn merge(&mut self, other: Self) {
        DBitAggregator::merge(self, other);
    }

    fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        DBitAggregator::try_subtract(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(DBitFlip::new(1, 1, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 0, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 9, eps(1.0)).is_err());
        assert!(DBitFlip::new(8, 8, eps(1.0)).is_ok());
    }

    /// The wire-facing checked accumulate enforces the per-device
    /// influence bound: exactly `d` in-range buckets per report.
    #[test]
    fn try_accumulate_enforces_bucket_count() {
        use ldp_core::fo::FoAggregator;
        let m = DBitFlip::new(32, 4, eps(1.0)).unwrap();
        let mut agg = DBitFlip::new_aggregator(&m);
        let ok = DBitReport {
            buckets: vec![1, 5, 9, 30],
            bits: vec![true, false, true, false],
        };
        assert!(agg.try_accumulate(&ok).is_ok());
        // Covering all k buckets would vote k/d times over; reject it.
        let all = DBitReport {
            buckets: (0..32).collect(),
            bits: vec![true; 32],
        };
        assert!(agg.try_accumulate(&all).is_err());
        let out_of_range = DBitReport {
            buckets: vec![1, 5, 9, 32],
            bits: vec![true; 4],
        };
        assert!(agg.try_accumulate(&out_of_range).is_err());
        let mismatched = DBitReport {
            buckets: vec![1, 5, 9, 30],
            bits: vec![true; 3],
        };
        assert!(agg.try_accumulate(&mismatched).is_err());
        assert_eq!(agg.reports(), 1, "rejected reports leave state intact");
    }

    #[test]
    fn report_shape() {
        let m = DBitFlip::new(32, 4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = m.randomize(5, &mut rng);
        assert_eq!(r.buckets.len(), 4);
        assert_eq!(r.bits.len(), 4);
        let mut sorted = r.buckets.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "buckets must be distinct");
        assert!(r.buckets.iter().all(|&b| b < 32));
    }

    /// Both sampling branches must yield distinct sorted in-range buckets
    /// at a uniform per-bucket rate.
    #[test]
    fn bucket_sampling_uniform_both_branches() {
        let mut rng = StdRng::seed_from_u64(17);
        // (k, d) pairs straddling the rejection/Fisher–Yates switch.
        for (k, d) in [(32u32, 4u32), (8, 5)] {
            let m = DBitFlip::new(k, d, eps(1.0)).unwrap();
            let trials = 40_000;
            let mut counts = vec![0u64; k as usize];
            for _ in 0..trials {
                let b = m.sample_buckets(&mut rng);
                assert_eq!(b.len(), d as usize);
                assert!(b.windows(2).all(|w| w[0] < w[1]), "sorted distinct: {b:?}");
                for &j in &b {
                    counts[j as usize] += 1;
                }
            }
            let expect = trials as f64 * d as f64 / k as f64;
            let sd = (trials as f64 * (d as f64 / k as f64) * (1.0 - d as f64 / k as f64)).sqrt();
            for (j, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - expect).abs() < 6.0 * sd,
                    "k={k} d={d} bucket {j}: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn histogram_unbiased() {
        let m = DBitFlip::new(16, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut agg = m.new_aggregator();
        let mut truth = [0f64; 16];
        for u in 0..n {
            // Skewed: bucket u%4 for most, bucket 8 for some.
            let b = if u % 10 == 0 { 8 } else { (u % 4) as u32 };
            truth[b as usize] += 1.0;
            agg.accumulate(&m.randomize(b, &mut rng));
        }
        let est = agg.estimate();
        let sd = m.count_variance(n).sqrt();
        for j in 0..16 {
            assert!(
                (est[j] - truth[j]).abs() < 5.0 * sd,
                "bucket {j}: est={} truth={} sd={sd}",
                est[j],
                truth[j]
            );
        }
    }

    #[test]
    fn full_coverage_matches_sue_accuracy() {
        // d = k: every device covers every bucket; variance should equal
        // the SUE noise floor (no k/d inflation).
        let m_full = DBitFlip::new(8, 8, eps(1.0)).unwrap();
        let m_sub = DBitFlip::new(8, 2, eps(1.0)).unwrap();
        assert!(m_full.count_variance(1000) < m_sub.count_variance(1000));
        let ratio = m_sub.count_variance(1000) / m_full.count_variance(1000);
        assert!((ratio - 4.0).abs() < 0.1, "k/d variance inflation: {ratio}");
    }

    #[test]
    fn estimates_sum_near_n() {
        let m = DBitFlip::new(8, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut agg = m.new_aggregator();
        for u in 0..n {
            agg.accumulate(&m.randomize((u % 8) as u32, &mut rng));
        }
        let total: f64 = agg.estimate().iter().sum();
        assert!((total - n as f64).abs() < n as f64 * 0.1, "total={total}");
    }

    /// The fused oracle path must land on exactly the counters the scalar
    /// loop produces — both sampling branches.
    #[test]
    fn fused_batch_bit_identical_to_scalar() {
        for (k, d) in [(64u32, 4u32), (8, 6)] {
            let m = DBitFlip::new(k, d, eps(1.5)).unwrap();
            let values: Vec<u64> = (0..2000).map(|i| i % k as u64).collect();

            let mut scalar_rng = StdRng::seed_from_u64(23);
            let mut scalar = m.new_aggregator();
            for &v in &values {
                scalar.accumulate(&m.randomize(v as u32, &mut scalar_rng));
            }

            let mut fused_rng = StdRng::seed_from_u64(23);
            let mut fused = m.new_aggregator();
            m.randomize_accumulate_batch(&values, &mut fused_rng, &mut fused);

            assert_eq!(scalar.ones, fused.ones, "k={k} d={d}");
            assert_eq!(scalar.covered, fused.covered, "k={k} d={d}");
            assert_eq!(scalar.reports(), fused.reports());
        }
    }

    #[test]
    fn merge_matches_sequential() {
        let m = DBitFlip::new(16, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let mut a = m.new_aggregator();
        for u in 0..800u32 {
            a.accumulate(&m.randomize(u % 16, &mut rng));
        }
        let mut b = m.new_aggregator();
        for u in 0..800u32 {
            b.accumulate(&m.randomize(u % 16, &mut rng));
        }

        let mut rng2 = StdRng::seed_from_u64(29);
        let mut seq = m.new_aggregator();
        for _ in 0..2 {
            for u in 0..800u32 {
                seq.accumulate(&m.randomize(u % 16, &mut rng2));
            }
        }

        a.merge(b);
        assert_eq!(a.ones, seq.ones);
        assert_eq!(a.covered, seq.covered);
        assert_eq!(a.reports(), seq.reports());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        let m = DBitFlip::new(8, 2, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        m.randomize(8, &mut rng);
    }
}
