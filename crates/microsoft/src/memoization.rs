//! α-point rounding and response memoization: privacy for *repeated*
//! collection.
//!
//! The tutorial's §1.2(3) stresses Microsoft's distinctive problem:
//! telemetry is collected **daily**. Fresh randomness every round would
//! let the aggregator average the noise away; deterministic re-use of one response
//! would reveal when the value changes. Ding et al. combine three pieces:
//!
//! 1. **α-point rounding** — each device draws `α ~ U[0, max)` *once* and
//!    forever after rounds its value `x` to `max·1[x > α]`. Over the draw
//!    of α the rounding is unbiased for any `x`, yet a device whose value
//!    is stable produces a *constant* bit — nothing new leaks per round.
//! 2. **Memoization** — the device pre-draws its 1BitMean responses for
//!    rounded value 0 and for rounded value `max` once, and replays them.
//!    An observer sees at most two distinct messages, ever.
//! 3. **Output perturbation** — optionally, each transmitted bit is
//!    flipped with probability `γ` using *fresh* randomness, hiding the
//!    exact transition times at a small accuracy cost (the server debias
//!    accounts for γ).
//!
//! [`MemoizedMeanClient`] implements the full client; the server side is a
//! γ-aware debiased average.

use crate::onebit::OneBitMean;
use ldp_core::{Error, Result};
use rand::Rng;

/// Configuration of the rounding/memoization layer.
#[derive(Debug, Clone, Copy)]
pub struct RoundingConfig {
    /// Per-round output-perturbation flip probability `γ ∈ [0, ½)`.
    /// Zero disables output perturbation (pure memoization).
    pub gamma: f64,
}

impl RoundingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if `γ ∉ [0, ½)`.
    pub fn new(gamma: f64) -> Result<Self> {
        if !(0.0..0.5).contains(&gamma) {
            return Err(Error::InvalidParameter(format!(
                "gamma must be in [0, 0.5), got {gamma}"
            )));
        }
        Ok(Self { gamma })
    }
}

/// A device participating in repeated 1BitMean collection.
#[derive(Debug, Clone)]
pub struct MemoizedMeanClient {
    mechanism: OneBitMean,
    config: RoundingConfig,
    /// The α-point threshold, drawn once.
    alpha: f64,
    /// Memoized 1BitMean response for rounded value 0.
    response_zero: bool,
    /// Memoized 1BitMean response for rounded value `max`.
    response_max: bool,
}

impl MemoizedMeanClient {
    /// Enrolls a device: draws α and the two memoized responses.
    pub fn enroll<R: Rng + ?Sized>(
        mechanism: OneBitMean,
        config: RoundingConfig,
        rng: &mut R,
    ) -> Self {
        let alpha = rng.gen_range(0.0..mechanism.max_value());
        let response_zero = mechanism.randomize(0.0, rng);
        let response_max = mechanism.randomize(mechanism.max_value(), rng);
        Self {
            mechanism,
            config,
            alpha,
            response_zero,
            response_max,
        }
    }

    /// The device's α threshold (test hook; secret in a deployment).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// α-point rounding of `x`: `max` if `x > α` else `0`.
    ///
    /// # Panics
    /// Panics if `x` is outside `[0, max]`.
    pub fn round(&self, x: f64) -> f64 {
        assert!(
            (0.0..=self.mechanism.max_value()).contains(&x),
            "x={x} outside [0, {}]",
            self.mechanism.max_value()
        );
        if x > self.alpha {
            self.mechanism.max_value()
        } else {
            0.0
        }
    }

    /// One collection round: round the current value, replay the memoized
    /// response, optionally output-perturb with fresh randomness.
    pub fn report<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> bool {
        let memoized = if self.round(x) > 0.0 {
            self.response_max
        } else {
            self.response_zero
        };
        if self.config.gamma > 0.0 && rng.gen_bool(self.config.gamma) {
            !memoized
        } else {
            memoized
        }
    }

    /// Server-side mean estimate across devices for one round, accounting
    /// for output perturbation: `E[observed] = (1−γ)·p + γ·(1−p)` where
    /// `p` is the underlying 1BitMean rate, so observed rates are first
    /// mapped back through `(obs − γ)/(1 − 2γ)`.
    pub fn estimate_round_mean(
        mechanism: &OneBitMean,
        config: &RoundingConfig,
        bits: &[bool],
    ) -> f64 {
        if bits.is_empty() {
            return 0.0;
        }
        let gamma = config.gamma;
        let observed_rate = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        let underlying_rate = if gamma > 0.0 {
            (observed_rate - gamma) / (1.0 - 2.0 * gamma)
        } else {
            observed_rate
        };
        // Map the underlying 1-rate through the 1BitMean debias: the rate
        // corresponds to n * p_one(x_avg); invert linearly.
        let e = mechanism.epsilon().exp();
        let q0 = 1.0 / (e + 1.0);
        let slope = (e - 1.0) / (e + 1.0);
        mechanism.max_value() * (underlying_rate - q0) / slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mech() -> OneBitMean {
        OneBitMean::new(Epsilon::new(1.0).unwrap(), 100.0).unwrap()
    }

    #[test]
    fn rounding_is_unbiased_over_alpha() {
        // Average of round(x) over many enrollments approaches x.
        let mut rng = StdRng::seed_from_u64(1);
        let x = 37.0;
        let n = 100_000;
        let avg: f64 = (0..n)
            .map(|_| {
                let c =
                    MemoizedMeanClient::enroll(mech(), RoundingConfig::new(0.0).unwrap(), &mut rng);
                c.round(x)
            })
            .sum::<f64>()
            / n as f64;
        assert!((avg - x).abs() < 1.0, "avg={avg}");
    }

    #[test]
    fn stable_value_stable_report() {
        // Without output perturbation, a stable value yields an identical
        // report every round: nothing new leaks.
        let mut rng = StdRng::seed_from_u64(2);
        let c = MemoizedMeanClient::enroll(mech(), RoundingConfig::new(0.0).unwrap(), &mut rng);
        let first = c.report(42.0, &mut rng);
        for _ in 0..100 {
            assert_eq!(c.report(42.0, &mut rng), first);
        }
    }

    #[test]
    fn at_most_two_distinct_reports_without_perturbation() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = MemoizedMeanClient::enroll(mech(), RoundingConfig::new(0.0).unwrap(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for round in 0..200 {
            let x = (round as f64 * 7.3) % 100.0; // wandering value
            seen.insert(c.report(x, &mut rng));
        }
        assert!(seen.len() <= 2);
    }

    #[test]
    fn output_perturbation_varies_reports() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = MemoizedMeanClient::enroll(mech(), RoundingConfig::new(0.2).unwrap(), &mut rng);
        let reports: Vec<bool> = (0..200).map(|_| c.report(42.0, &mut rng)).collect();
        let flips = reports.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips > 10, "perturbation should vary reports: {flips}");
    }

    #[test]
    fn population_mean_recovered_across_rounds() {
        let mechanism = mech();
        let config = RoundingConfig::new(0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let clients: Vec<MemoizedMeanClient> = (0..n)
            .map(|_| MemoizedMeanClient::enroll(mechanism, config, &mut rng))
            .collect();
        // True mean 30 (values 10 and 50 half-half).
        for round in 0..3 {
            let bits: Vec<bool> = clients
                .iter()
                .enumerate()
                .map(|(i, c)| c.report(if i % 2 == 0 { 10.0 } else { 50.0 }, &mut rng))
                .collect();
            let est = MemoizedMeanClient::estimate_round_mean(&mechanism, &config, &bits);
            assert!((est - 30.0).abs() < 5.0, "round {round}: est={est}");
        }
    }

    #[test]
    fn gamma_validation() {
        assert!(RoundingConfig::new(-0.1).is_err());
        assert!(RoundingConfig::new(0.5).is_err());
        assert!(RoundingConfig::new(0.0).is_ok());
        assert!(RoundingConfig::new(0.49).is_ok());
    }
}
