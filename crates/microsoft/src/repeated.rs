//! Repeated histogram collection: memoized dBitFlip.
//!
//! The companion to α-point rounding for the *histogram* side of the
//! telemetry pipeline: each device pre-draws, **once**, its noisy bit for
//! each of its `d` assigned buckets under both hypotheses ("my value is
//! in this bucket" / "it is not"), and replays those memoized answers at
//! every collection round. While a device's bucket stays the same, its
//! transcript is constant — repeated collection reveals nothing beyond
//! the first round, the property Ding et al. deploy in Windows.

use crate::dbitflip::{DBitAggregator, DBitFlip, DBitReport};
use rand::Rng;

/// A device enrolled in repeated dBitFlip collection.
#[derive(Debug, Clone)]
pub struct MemoizedHistogramClient {
    mechanism: DBitFlip,
    /// The device's assigned buckets (fixed at enrollment).
    buckets: Vec<u32>,
    /// Memoized noisy answer per assigned bucket for the "value in this
    /// bucket" hypothesis.
    answer_in: Vec<bool>,
    /// Memoized noisy answer per assigned bucket for the "value not in
    /// this bucket" hypothesis.
    answer_out: Vec<bool>,
}

impl MemoizedHistogramClient {
    /// Enrolls a device: samples its bucket set and pre-draws both
    /// hypothesis answers for every assigned bucket.
    pub fn enroll<R: Rng + ?Sized>(mechanism: DBitFlip, rng: &mut R) -> Self {
        let buckets = mechanism.sample_buckets(rng);
        let p = mechanism.keep_prob();
        let answer_in = buckets.iter().map(|_| rng.gen_bool(p)).collect();
        let answer_out = buckets.iter().map(|_| !rng.gen_bool(p)).collect();
        Self {
            mechanism,
            buckets,
            answer_in,
            answer_out,
        }
    }

    /// The device's assigned buckets.
    pub fn buckets(&self) -> &[u32] {
        &self.buckets
    }

    /// One collection round: replay the memoized answers for the current
    /// value's bucket. Identical input ⇒ identical report, every round.
    ///
    /// # Panics
    /// Panics if `value_bucket` is out of range.
    pub fn report(&self, value_bucket: u32) -> DBitReport {
        assert!(
            value_bucket < self.mechanism.buckets(),
            "bucket {value_bucket} out of range {}",
            self.mechanism.buckets()
        );
        let bits = self
            .buckets
            .iter()
            .zip(self.answer_in.iter().zip(&self.answer_out))
            .map(|(&j, (&ans_in, &ans_out))| if j == value_bucket { ans_in } else { ans_out })
            .collect();
        DBitReport {
            buckets: self.buckets.clone(),
            bits,
        }
    }

    /// Allocation-free round: folds the memoized answers for
    /// `value_bucket` straight into `agg`, without materializing a
    /// [`DBitReport`] (no bucket-list clone, no bit vector). Bit-identical
    /// to `agg.accumulate(&self.report(value_bucket))`.
    ///
    /// # Panics
    /// Panics if `value_bucket` is out of range.
    pub fn accumulate_into(&self, value_bucket: u32, agg: &mut DBitAggregator) {
        assert!(
            value_bucket < self.mechanism.buckets(),
            "bucket {value_bucket} out of range {}",
            self.mechanism.buckets()
        );
        agg.accumulate_bits(
            self.buckets
                .iter()
                .zip(self.answer_in.iter().zip(&self.answer_out))
                .map(|(&j, (&ans_in, &ans_out))| {
                    (j, if j == value_bucket { ans_in } else { ans_out })
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mech() -> DBitFlip {
        DBitFlip::new(16, 4, Epsilon::new(2.0).unwrap()).unwrap()
    }

    #[test]
    fn stable_value_stable_transcript() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = MemoizedHistogramClient::enroll(mech(), &mut rng);
        let first = c.report(5);
        for _ in 0..50 {
            assert_eq!(c.report(5), first, "transcript must be constant");
        }
    }

    #[test]
    fn at_most_two_transcripts_per_bucket_pair() {
        // Toggling between two values yields at most two distinct reports.
        let mut rng = StdRng::seed_from_u64(2);
        let c = MemoizedHistogramClient::enroll(mech(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for round in 0..40 {
            let v = if round % 2 == 0 { 3 } else { 9 };
            seen.insert(format!("{:?}", c.report(v)));
        }
        assert!(seen.len() <= 2, "transcripts: {}", seen.len());
    }

    #[test]
    fn population_histogram_still_unbiased() {
        let mechanism = mech();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let clients: Vec<MemoizedHistogramClient> = (0..n)
            .map(|_| MemoizedHistogramClient::enroll(mechanism, &mut rng))
            .collect();
        let mut truth = [0f64; 16];
        let mut agg = mechanism.new_aggregator();
        for (i, c) in clients.iter().enumerate() {
            let b = (i % 4) as u32;
            truth[b as usize] += 1.0;
            agg.accumulate(&c.report(b));
        }
        let est = agg.estimate();
        let sd = mechanism.count_variance(n).sqrt();
        for j in 0..16 {
            assert!(
                (est[j] - truth[j]).abs() < 5.0 * sd,
                "bucket {j}: est={} truth={} sd={sd}",
                est[j],
                truth[j]
            );
        }
    }

    #[test]
    fn accumulate_into_matches_report_accumulate() {
        let mechanism = mech();
        let mut rng = StdRng::seed_from_u64(5);
        let clients: Vec<MemoizedHistogramClient> = (0..500)
            .map(|_| MemoizedHistogramClient::enroll(mechanism, &mut rng))
            .collect();
        let mut via_report = mechanism.new_aggregator();
        let mut fused = mechanism.new_aggregator();
        for (i, c) in clients.iter().enumerate() {
            let b = (i % 16) as u32;
            via_report.accumulate(&c.report(b));
            c.accumulate_into(b, &mut fused);
        }
        assert_eq!(via_report.estimate(), fused.estimate());
        assert_eq!(via_report.reports(), fused.reports());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = MemoizedHistogramClient::enroll(mech(), &mut rng);
        c.report(16);
    }
}
