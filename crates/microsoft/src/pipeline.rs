//! The assembled telemetry pipeline: what actually ships on a device.
//!
//! Ding et al.'s deployment does not run one mechanism — it runs a
//! *collection program*: a per-device privacy budget split across a mean
//! statistic (1BitMean) and a histogram statistic (dBitFlip), each with
//! memoization so daily collection stays inside the budget forever. This
//! module packages that composition behind one [`TelemetryPipeline`] so a
//! downstream user configures the deployment, not the mechanisms.

use crate::dbitflip::{DBitAggregator, DBitFlip};
use crate::memoization::{MemoizedMeanClient, RoundingConfig};
use crate::onebit::{OneBitMean, OneBitMeanAggregator};
use crate::repeated::MemoizedHistogramClient;
use ldp_core::fo::FoAggregator;
use ldp_core::mech::BatchMechanism;
use ldp_core::privacy::PrivacyBudget;
use ldp_core::{Epsilon, Result};
use rand::{Rng, RngCore};

/// Deployment configuration: total per-device budget and its split.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Total per-device ε (lifetime, thanks to memoization).
    pub total_epsilon: f64,
    /// Fraction of the budget spent on the mean statistic (the rest goes
    /// to the histogram).
    pub mean_fraction: f64,
    /// Value range upper bound for the mean statistic.
    pub max_value: f64,
    /// Histogram bucket count.
    pub buckets: u32,
    /// Bits per device for the histogram.
    pub bits_per_device: u32,
    /// Output-perturbation γ for the mean reports.
    pub gamma: f64,
}

/// The server-side view of one deployment.
#[derive(Debug)]
pub struct TelemetryPipeline {
    mean_mech: OneBitMean,
    rounding: RoundingConfig,
    hist_mech: DBitFlip,
}

/// One enrolled device: memoized state for both statistics.
#[derive(Debug, Clone)]
pub struct TelemetryDevice {
    mean_client: MemoizedMeanClient,
    hist_client: MemoizedHistogramClient,
    max_value: f64,
    buckets: u32,
}

/// One round's transmissions from a device.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// The 1BitMean bit.
    pub mean_bit: bool,
    /// The dBitFlip report.
    pub hist: crate::dbitflip::DBitReport,
}

impl TelemetryPipeline {
    /// Builds the pipeline, drawing the two mechanisms' budgets from one
    /// [`PrivacyBudget`] so the split is checked, not assumed.
    ///
    /// # Errors
    /// Propagates budget/parameter validation failures.
    pub fn new(config: TelemetryConfig) -> Result<Self> {
        let mut budget = PrivacyBudget::new(Epsilon::new(config.total_epsilon)?);
        let mean_eps = budget.draw(config.total_epsilon * config.mean_fraction)?;
        let hist_eps = budget.draw(budget.remaining())?;
        Ok(Self {
            mean_mech: OneBitMean::new(mean_eps, config.max_value)?,
            rounding: RoundingConfig::new(config.gamma)?,
            hist_mech: DBitFlip::new(config.buckets, config.bits_per_device, hist_eps)?,
        })
    }

    /// Enrolls a device (draws all its memoized randomness once).
    pub fn enroll<R: Rng + ?Sized>(&self, rng: &mut R) -> TelemetryDevice {
        TelemetryDevice {
            mean_client: MemoizedMeanClient::enroll(self.mean_mech, self.rounding, rng),
            hist_client: MemoizedHistogramClient::enroll(self.hist_mech, rng),
            max_value: self.mean_mech.max_value(),
            buckets: self.hist_mech.buckets(),
        }
    }

    /// Creates a fresh histogram aggregator for one round.
    pub fn new_histogram_aggregator(&self) -> DBitAggregator {
        self.hist_mech.new_aggregator()
    }

    /// Creates a fresh combined aggregator (mean + histogram) for one
    /// round, ready for the fused collection path.
    pub fn new_round_aggregator(&self) -> TelemetryAggregator {
        TelemetryAggregator {
            mean: self.mean_mech.new_aggregator(),
            hist: self.hist_mech.new_aggregator(),
            gamma: self.rounding.gamma,
        }
    }

    /// A borrowed view of one collection round over an enrolled device
    /// fleet — the [`BatchMechanism`] the sharded parallel engine drives.
    pub fn round<'a>(&'a self, devices: &'a [TelemetryDevice]) -> TelemetryRound<'a> {
        TelemetryRound {
            pipeline: self,
            devices,
        }
    }

    /// Server-side round mean from the collected mean bits.
    pub fn estimate_mean(&self, bits: &[bool]) -> f64 {
        MemoizedMeanClient::estimate_round_mean(&self.mean_mech, &self.rounding, bits)
    }
}

/// Combined per-round server state: the 1BitMean bit count and the
/// dBitFlip histogram counters — both exact integers, so sharded merges
/// reproduce sequential collection bit for bit.
#[derive(Debug, Clone)]
pub struct TelemetryAggregator {
    mean: OneBitMeanAggregator,
    hist: DBitAggregator,
    gamma: f64,
}

impl TelemetryAggregator {
    /// γ-corrected round mean in value units: maps the observed 1-rate
    /// back through the output-perturbation channel, then the 1BitMean
    /// debias — the streaming-counter equivalent of
    /// [`TelemetryPipeline::estimate_mean`].
    pub fn round_mean(&self) -> f64 {
        let n = self.mean.reports();
        if n == 0 {
            return 0.0;
        }
        let observed = self.mean.ones() as f64 / n as f64;
        let underlying = if self.gamma > 0.0 {
            (observed - self.gamma) / (1.0 - 2.0 * self.gamma)
        } else {
            observed
        };
        self.mean.debiased_rate_to_mean(underlying)
    }

    /// The histogram half of the round.
    pub fn histogram(&self) -> &DBitAggregator {
        &self.hist
    }

    /// The mean half of the round (raw, γ-uncorrected).
    pub fn mean_bits(&self) -> &OneBitMeanAggregator {
        &self.mean
    }
}

impl ldp_core::snapshot::StateSnapshot for TelemetryAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::MS_TELEMETRY
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        // γ first, then the two halves' own payloads back to back (each
        // is self-delimiting: its counter vectors carry length prefixes).
        ldp_core::wire::put_f64_le(out, self.gamma);
        self.mean.snapshot_payload(out);
        self.hist.snapshot_payload(out);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_f64(r, self.gamma, "telemetry gamma")?;
        // Decode into clones so a failure in the second half leaves the
        // first untouched.
        let mut mean = self.mean.clone();
        mean.restore_payload(r)?;
        let mut hist = self.hist.clone();
        hist.restore_payload(r)?;
        self.mean = mean;
        self.hist = hist;
        Ok(())
    }
}

impl FoAggregator for TelemetryAggregator {
    type Report = TelemetryReport;

    fn accumulate(&mut self, report: &TelemetryReport) {
        self.mean.accumulate(&report.mean_bit);
        self.hist.accumulate(&report.hist);
    }

    fn reports(&self) -> usize {
        self.mean.reports()
    }

    /// The histogram estimate (the frequency-shaped half of the round);
    /// the mean statistic is exposed via
    /// [`round_mean`](Self::round_mean).
    fn estimate(&self) -> Vec<f64> {
        self.hist.estimate()
    }

    fn merge(&mut self, other: Self) {
        assert!(self.gamma == other.gamma, "merge: gamma mismatch");
        self.mean.merge(other.mean);
        self.hist.merge(other.hist);
    }

    fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.gamma != other.gamma {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: telemetry gamma mismatch".into(),
            ));
        }
        // Subtract into clones so a refusal from the second half leaves
        // the first untouched (mirrors `restore_payload`).
        let mut mean = self.mean.clone();
        mean.try_subtract(&other.mean)?;
        let mut hist = self.hist.clone();
        hist.try_subtract(&other.hist)?;
        self.mean = mean;
        self.hist = hist;
        Ok(())
    }
}

/// One collection round over an enrolled fleet, as a [`BatchMechanism`]:
/// inputs are `(device_index, value)` pairs (the device's memoized
/// randomness lives with the device, so shards must know *which* device
/// reports, not just the value). Build inputs with
/// [`TelemetryRound::inputs`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryRound<'a> {
    pipeline: &'a TelemetryPipeline,
    devices: &'a [TelemetryDevice],
}

impl TelemetryRound<'_> {
    /// Pairs each device index with its current value, in fleet order —
    /// the input population for one round.
    ///
    /// # Panics
    /// Panics if `values` and the fleet disagree in length.
    pub fn inputs(&self, values: &[f64]) -> Vec<(u32, f64)> {
        assert_eq!(
            values.len(),
            self.devices.len(),
            "one value per enrolled device"
        );
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect()
    }
}

impl BatchMechanism for TelemetryRound<'_> {
    type Input = (u32, f64);
    type Aggregator = TelemetryAggregator;

    fn new_aggregator(&self) -> TelemetryAggregator {
        self.pipeline.new_round_aggregator()
    }

    /// Fused round: each device's mean bit (one optional γ draw) and its
    /// memoized histogram answers fold straight into the counters — no
    /// [`TelemetryReport`], no bucket-list clone, no bit vector. Same RNG
    /// stream as the scalar `TelemetryDevice::report` + accumulate loop.
    fn accumulate_batch<R: RngCore>(
        &self,
        inputs: &[(u32, f64)],
        rng: &mut R,
        agg: &mut TelemetryAggregator,
    ) {
        assert!(
            agg.gamma == self.pipeline.rounding.gamma
                && agg.mean.mechanism() == self.pipeline.mean_mech
                && agg.hist.compatible_with(&self.pipeline.hist_mech),
            "aggregator configured for a different telemetry pipeline"
        );
        for &(i, value) in inputs {
            let device = &self.devices[i as usize];
            let bucket = device.bucket_of(value);
            let bit = device.mean_client.report(value, rng);
            agg.mean.accumulate(&bit);
            device.hist_client.accumulate_into(bucket, &mut agg.hist);
        }
    }
}

impl TelemetryDevice {
    /// The histogram bucket of `value`.
    ///
    /// # Panics
    /// Panics if `value` is outside `[0, max_value]`.
    pub fn bucket_of(&self, value: f64) -> u32 {
        assert!(
            (0.0..=self.max_value).contains(&value),
            "value {value} outside [0, {}]",
            self.max_value
        );
        ((value / self.max_value * self.buckets as f64) as u32).min(self.buckets - 1)
    }

    /// Produces one round's report for the device's current value.
    ///
    /// # Panics
    /// Panics if `value` is outside `[0, max_value]`.
    pub fn report<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> TelemetryReport {
        let bucket = self.bucket_of(value);
        TelemetryReport {
            mean_bit: self.mean_client.report(value, rng),
            hist: self.hist_client.report(bucket),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> TelemetryConfig {
        TelemetryConfig {
            total_epsilon: 2.0,
            mean_fraction: 0.5,
            max_value: 100.0,
            buckets: 10,
            bits_per_device: 4,
            gamma: 0.0,
        }
    }

    #[test]
    fn budget_split_is_enforced() {
        let mut bad = config();
        bad.total_epsilon = 0.0;
        assert!(TelemetryPipeline::new(bad).is_err());
        let mut bad2 = config();
        bad2.gamma = 0.9;
        assert!(TelemetryPipeline::new(bad2).is_err());
        assert!(TelemetryPipeline::new(config()).is_ok());
    }

    #[test]
    fn round_estimates_accurate() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 80_000;
        let devices: Vec<TelemetryDevice> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        // Values 20 and 80 half/half: mean 50; histogram peaks at buckets 2 and 8.
        let mut bits = Vec::with_capacity(n);
        let mut agg = pipeline.new_histogram_aggregator();
        for (i, d) in devices.iter().enumerate() {
            let v = if i % 2 == 0 { 20.0 } else { 80.0 };
            let r = d.report(v, &mut rng);
            bits.push(r.mean_bit);
            agg.accumulate(&r.hist);
        }
        let mean = pipeline.estimate_mean(&bits);
        assert!((mean - 50.0).abs() < 3.0, "mean={mean}");
        let hist = agg.estimate();
        assert!(
            hist[2] > hist[0] * 3.0,
            "bucket 2 should dominate: {hist:?}"
        );
        assert!(
            hist[8] > hist[9] * 3.0,
            "bucket 8 should dominate: {hist:?}"
        );
    }

    #[test]
    fn stable_device_constant_transcript_across_rounds() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let device = pipeline.enroll(&mut rng);
        let first = device.report(42.0, &mut rng);
        for _ in 0..20 {
            let r = device.report(42.0, &mut rng);
            assert_eq!(r.mean_bit, first.mean_bit);
            assert_eq!(r.hist, first.hist);
        }
    }

    #[test]
    fn fused_round_bit_identical_to_scalar() {
        let pipeline = TelemetryPipeline::new(TelemetryConfig {
            gamma: 0.1,
            ..config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2000;
        let devices: Vec<TelemetryDevice> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let round = pipeline.round(&devices);
        let inputs = round.inputs(&values);

        let mut scalar_rng = StdRng::seed_from_u64(33);
        let mut scalar = pipeline.new_round_aggregator();
        for (d, &v) in devices.iter().zip(&values) {
            scalar.accumulate(&d.report(v, &mut scalar_rng));
        }

        let mut fused_rng = StdRng::seed_from_u64(33);
        let mut fused = pipeline.new_round_aggregator();
        round.accumulate_batch(&inputs, &mut fused_rng, &mut fused);

        assert_eq!(scalar.reports(), fused.reports());
        assert_eq!(scalar.mean_bits().ones(), fused.mean_bits().ones());
        assert_eq!(scalar.estimate(), fused.estimate());
        assert_eq!(scalar.round_mean(), fused.round_mean());
    }

    #[test]
    fn round_mean_matches_estimate_mean() {
        let pipeline = TelemetryPipeline::new(TelemetryConfig {
            gamma: 0.15,
            ..config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 30_000;
        let devices: Vec<TelemetryDevice> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        let mut bits = Vec::with_capacity(n);
        let mut agg = pipeline.new_round_aggregator();
        for (i, d) in devices.iter().enumerate() {
            let v = if i % 2 == 0 { 20.0 } else { 80.0 };
            let r = d.report(v, &mut rng);
            bits.push(r.mean_bit);
            agg.accumulate(&r);
        }
        let direct = pipeline.estimate_mean(&bits);
        assert!(
            (agg.round_mean() - direct).abs() < 1e-9,
            "agg={} direct={direct}",
            agg.round_mean()
        );
        assert!((agg.round_mean() - 50.0).abs() < 4.0);
    }

    #[test]
    fn sharded_round_merge_matches_sequential() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 1200;
        let devices: Vec<TelemetryDevice> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let round = pipeline.round(&devices);
        let inputs = round.inputs(&values);

        let mut rng_a = StdRng::seed_from_u64(77);
        let mut seq = pipeline.new_round_aggregator();
        round.accumulate_batch(&inputs, &mut rng_a, &mut seq);

        let mut rng_b = StdRng::seed_from_u64(77);
        let mut left = pipeline.new_round_aggregator();
        round.accumulate_batch(&inputs[..700], &mut rng_b, &mut left);
        let mut right = pipeline.new_round_aggregator();
        round.accumulate_batch(&inputs[700..], &mut rng_b, &mut right);
        left.merge(right);

        assert_eq!(left.estimate(), seq.estimate());
        assert_eq!(left.mean_bits().ones(), seq.mean_bits().ones());
        assert_eq!(left.reports(), seq.reports());
    }

    #[test]
    #[should_panic(expected = "different telemetry pipeline")]
    fn mismatched_round_aggregator_panics() {
        let pipeline_a = TelemetryPipeline::new(config()).unwrap();
        let pipeline_b = TelemetryPipeline::new(TelemetryConfig {
            total_epsilon: 4.0,
            ..config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let devices: Vec<TelemetryDevice> = (0..4).map(|_| pipeline_a.enroll(&mut rng)).collect();
        let round = pipeline_a.round(&devices);
        let inputs = round.inputs(&[1.0, 2.0, 3.0, 4.0]);
        let mut wrong_agg = pipeline_b.new_round_aggregator();
        round.accumulate_batch(&inputs, &mut rng, &mut wrong_agg);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_value_panics() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let device = pipeline.enroll(&mut rng);
        device.report(101.0, &mut rng);
    }
}
