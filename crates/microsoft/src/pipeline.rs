//! The assembled telemetry pipeline: what actually ships on a device.
//!
//! Ding et al.'s deployment does not run one mechanism — it runs a
//! *collection program*: a per-device privacy budget split across a mean
//! statistic (1BitMean) and a histogram statistic (dBitFlip), each with
//! memoization so daily collection stays inside the budget forever. This
//! module packages that composition behind one [`TelemetryPipeline`] so a
//! downstream user configures the deployment, not the mechanisms.

use crate::dbitflip::{DBitAggregator, DBitFlip};
use crate::memoization::{MemoizedMeanClient, RoundingConfig};
use crate::onebit::OneBitMean;
use crate::repeated::MemoizedHistogramClient;
use ldp_core::privacy::PrivacyBudget;
use ldp_core::{Epsilon, Result};
use rand::Rng;

/// Deployment configuration: total per-device budget and its split.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Total per-device ε (lifetime, thanks to memoization).
    pub total_epsilon: f64,
    /// Fraction of the budget spent on the mean statistic (the rest goes
    /// to the histogram).
    pub mean_fraction: f64,
    /// Value range upper bound for the mean statistic.
    pub max_value: f64,
    /// Histogram bucket count.
    pub buckets: u32,
    /// Bits per device for the histogram.
    pub bits_per_device: u32,
    /// Output-perturbation γ for the mean reports.
    pub gamma: f64,
}

/// The server-side view of one deployment.
#[derive(Debug)]
pub struct TelemetryPipeline {
    mean_mech: OneBitMean,
    rounding: RoundingConfig,
    hist_mech: DBitFlip,
}

/// One enrolled device: memoized state for both statistics.
#[derive(Debug, Clone)]
pub struct TelemetryDevice {
    mean_client: MemoizedMeanClient,
    hist_client: MemoizedHistogramClient,
    max_value: f64,
    buckets: u32,
}

/// One round's transmissions from a device.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// The 1BitMean bit.
    pub mean_bit: bool,
    /// The dBitFlip report.
    pub hist: crate::dbitflip::DBitReport,
}

impl TelemetryPipeline {
    /// Builds the pipeline, drawing the two mechanisms' budgets from one
    /// [`PrivacyBudget`] so the split is checked, not assumed.
    ///
    /// # Errors
    /// Propagates budget/parameter validation failures.
    pub fn new(config: TelemetryConfig) -> Result<Self> {
        let mut budget = PrivacyBudget::new(Epsilon::new(config.total_epsilon)?);
        let mean_eps = budget.draw(config.total_epsilon * config.mean_fraction)?;
        let hist_eps = budget.draw(budget.remaining())?;
        Ok(Self {
            mean_mech: OneBitMean::new(mean_eps, config.max_value)?,
            rounding: RoundingConfig::new(config.gamma)?,
            hist_mech: DBitFlip::new(config.buckets, config.bits_per_device, hist_eps)?,
        })
    }

    /// Enrolls a device (draws all its memoized randomness once).
    pub fn enroll<R: Rng + ?Sized>(&self, rng: &mut R) -> TelemetryDevice {
        TelemetryDevice {
            mean_client: MemoizedMeanClient::enroll(self.mean_mech, self.rounding, rng),
            hist_client: MemoizedHistogramClient::enroll(self.hist_mech, rng),
            max_value: self.mean_mech.max_value(),
            buckets: self.hist_mech.buckets(),
        }
    }

    /// Creates a fresh histogram aggregator for one round.
    pub fn new_histogram_aggregator(&self) -> DBitAggregator {
        self.hist_mech.new_aggregator()
    }

    /// Server-side round mean from the collected mean bits.
    pub fn estimate_mean(&self, bits: &[bool]) -> f64 {
        MemoizedMeanClient::estimate_round_mean(&self.mean_mech, &self.rounding, bits)
    }
}

impl TelemetryDevice {
    /// Produces one round's report for the device's current value.
    ///
    /// # Panics
    /// Panics if `value` is outside `[0, max_value]`.
    pub fn report<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> TelemetryReport {
        assert!(
            (0.0..=self.max_value).contains(&value),
            "value {value} outside [0, {}]",
            self.max_value
        );
        let bucket = ((value / self.max_value * self.buckets as f64) as u32).min(self.buckets - 1);
        TelemetryReport {
            mean_bit: self.mean_client.report(value, rng),
            hist: self.hist_client.report(bucket),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> TelemetryConfig {
        TelemetryConfig {
            total_epsilon: 2.0,
            mean_fraction: 0.5,
            max_value: 100.0,
            buckets: 10,
            bits_per_device: 4,
            gamma: 0.0,
        }
    }

    #[test]
    fn budget_split_is_enforced() {
        let mut bad = config();
        bad.total_epsilon = 0.0;
        assert!(TelemetryPipeline::new(bad).is_err());
        let mut bad2 = config();
        bad2.gamma = 0.9;
        assert!(TelemetryPipeline::new(bad2).is_err());
        assert!(TelemetryPipeline::new(config()).is_ok());
    }

    #[test]
    fn round_estimates_accurate() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 80_000;
        let devices: Vec<TelemetryDevice> = (0..n).map(|_| pipeline.enroll(&mut rng)).collect();
        // Values 20 and 80 half/half: mean 50; histogram peaks at buckets 2 and 8.
        let mut bits = Vec::with_capacity(n);
        let mut agg = pipeline.new_histogram_aggregator();
        for (i, d) in devices.iter().enumerate() {
            let v = if i % 2 == 0 { 20.0 } else { 80.0 };
            let r = d.report(v, &mut rng);
            bits.push(r.mean_bit);
            agg.accumulate(&r.hist);
        }
        let mean = pipeline.estimate_mean(&bits);
        assert!((mean - 50.0).abs() < 3.0, "mean={mean}");
        let hist = agg.estimate();
        assert!(
            hist[2] > hist[0] * 3.0,
            "bucket 2 should dominate: {hist:?}"
        );
        assert!(
            hist[8] > hist[9] * 3.0,
            "bucket 8 should dominate: {hist:?}"
        );
    }

    #[test]
    fn stable_device_constant_transcript_across_rounds() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let device = pipeline.enroll(&mut rng);
        let first = device.report(42.0, &mut rng);
        for _ in 0..20 {
            let r = device.report(42.0, &mut rng);
            assert_eq!(r.mean_bit, first.mean_bit);
            assert_eq!(r.hist, first.hist);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_value_panics() {
        let pipeline = TelemetryPipeline::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let device = pipeline.enroll(&mut rng);
        device.report(101.0, &mut rng);
    }
}
