//! # `ldp-microsoft` — Microsoft's private telemetry collection, reproduced
//!
//! Ding, Kulkarni and Yekhanin ("Collecting Telemetry Data Privately",
//! NeurIPS 2017) deployed LDP in Windows 10 to collect app-usage
//! statistics *every day, indefinitely* — the regime where naive
//! randomized response loses all privacy (noise averages away across
//! rounds). The SIGMOD 2018 tutorial presents their three ideas:
//!
//! * [`onebit::OneBitMean`] — a single-bit mean estimator for bounded
//!   numeric values (app usage seconds), the communication-minimal
//!   mechanism the paper deploys at scale.
//! * [`dbitflip::DBitFlip`] — a d-bit histogram estimator: each device is
//!   responsible for `d` random buckets, giving constant communication
//!   independent of the bucket count.
//! * [`memoization`] — α-point rounding plus response memoization: each
//!   device pre-draws its noisy answers *once* and replays them, so
//!   repeated collection reveals nothing new while values are stable;
//!   optional output perturbation hides the transition points themselves.
//!
//! ## Example
//! ```
//! use ldp_microsoft::OneBitMean;
//! use ldp_core::Epsilon;
//! use rand::SeedableRng;
//!
//! let mech = OneBitMean::new(Epsilon::new(1.0).unwrap(), 3600.0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! // 100k devices, true mean app usage 900s.
//! let bits: Vec<bool> =
//!     (0..100_000).map(|i| mech.randomize(900.0 + (i % 7) as f64, &mut rng)).collect();
//! let est = mech.estimate_mean(&bits);
//! assert!((est - 903.0).abs() < 40.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod dbitflip;
pub mod memoization;
pub mod onebit;
pub mod pipeline;
pub mod repeated;
pub mod wire;

pub use cost::register_cost_models;
pub use dbitflip::{DBitAggregator, DBitFlip, DBitReport};
pub use memoization::{MemoizedMeanClient, RoundingConfig};
pub use onebit::{OneBitMean, OneBitMeanAggregator};
pub use pipeline::{
    TelemetryAggregator, TelemetryConfig, TelemetryDevice, TelemetryPipeline, TelemetryReport,
    TelemetryRound,
};
pub use repeated::MemoizedHistogramClient;
pub use wire::register_mechanisms;
