//! Wire codecs and registry factories for the Apple mechanisms.
//!
//! * [`CmsReport`] travels as `uvarint row | uvarint m | packed sign
//!   bits` (bit set ⇔ `+1`), so an `m = 1024` report costs ~131 bytes
//!   instead of the kilobyte its in-memory `Vec<i8>` occupies.
//! * [`HcmsReport`] travels as `uvarint row | uvarint coeff | sign
//!   byte` — the three numbers the white paper's single-bit protocol
//!   actually transmits.
//!
//! [`register_mechanisms`] plugs [`CmsOracle`] and [`HcmsOracle`]
//! factories into a [`Registry`], making both buildable from a
//! [`ProtocolDescriptor`] (`sketch(k, m)` + `hash_seed` + `domain_size`
//! + `epsilon`).

use crate::cms::{CmsOracle, CmsReport};
use crate::hcms::{HcmsOracle, HcmsReport};
use ldp_core::protocol::{MechanismKind, ProtocolDescriptor, Registry};
use ldp_core::wire::{
    get_packed_bits, get_sign, packed_bit, put_packed_bits, put_sign, put_uvarint, tag,
    ErasedBridge, ErasedMechanism, OracleMechanism, WireReader, WireReport,
};
use ldp_core::{LdpError, Result};

impl WireReport for CmsReport {
    const TAG: u8 = tag::APPLE_CMS;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.row as u64);
        put_uvarint(out, self.bits.len() as u64);
        put_packed_bits(out, self.bits.iter().map(|&b| b > 0));
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let row = r.uvarint()?;
        let row = u32::try_from(row)
            .map_err(|_| LdpError::Malformed(format!("CMS row {row} overflows u32")))?;
        let m = r.uvarint()?;
        let m = usize::try_from(m)
            .map_err(|_| LdpError::Malformed(format!("CMS width {m} overflows usize")))?;
        let bytes = get_packed_bits(r, m)?;
        let bits = (0..m)
            .map(|i| if packed_bit(bytes, i) { 1 } else { -1 })
            .collect();
        Ok(Self { row, bits })
    }
}

impl WireReport for HcmsReport {
    const TAG: u8 = tag::APPLE_HCMS;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.row as u64);
        put_uvarint(out, self.coeff as u64);
        put_sign(out, self.sign);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let row = r.uvarint()?;
        let row = u32::try_from(row)
            .map_err(|_| LdpError::Malformed(format!("HCMS row {row} overflows u32")))?;
        let coeff = r.uvarint()?;
        let coeff = u32::try_from(coeff)
            .map_err(|_| LdpError::Malformed(format!("HCMS coeff {coeff} overflows u32")))?;
        Ok(Self {
            row,
            coeff,
            sign: get_sign(r)?,
        })
    }
}

/// Registers the Apple mechanism factories
/// ([`MechanismKind::AppleCms`], [`MechanismKind::AppleHcms`]) into
/// `registry`. Both map the descriptor as: `sketch(k, m)` → sketch
/// shape, `hash_seed` → the deterministic hash-family seed clients and
/// server share, `domain_size` → the enumerable query domain.
pub fn register_mechanisms(registry: &mut Registry) {
    registry.register(MechanismKind::AppleCms, |d| {
        build_cms(d).map(|mech| Box::new(mech) as Box<dyn ErasedMechanism>)
    });
    registry.register(MechanismKind::AppleHcms, |d| {
        build_hcms(d).map(|mech| Box::new(mech) as Box<dyn ErasedMechanism>)
    });
}

fn build_cms(d: &ProtocolDescriptor) -> Result<ErasedBridge<OracleMechanism<CmsOracle>>> {
    let oracle = CmsOracle::new(
        d.sketch_rows() as usize,
        d.sketch_width() as usize,
        d.epsilon_checked(),
        d.hash_seed(),
        d.domain_size(),
    );
    Ok(ErasedBridge::new(OracleMechanism(oracle), d.clone()))
}

fn build_hcms(d: &ProtocolDescriptor) -> Result<ErasedBridge<OracleMechanism<HcmsOracle>>> {
    let oracle = HcmsOracle::new(
        d.sketch_rows() as usize,
        d.sketch_width() as usize,
        d.epsilon_checked(),
        d.hash_seed(),
        d.domain_size(),
    );
    Ok(ErasedBridge::new(OracleMechanism(oracle), d.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::wire::{decode_report, encode_report_vec};

    #[test]
    fn cms_report_round_trips() {
        let report = CmsReport {
            row: 3,
            bits: (0..37).map(|i| if i % 5 == 0 { 1 } else { -1 }).collect(),
        };
        let frame = encode_report_vec(&report);
        let back: CmsReport = decode_report(&frame).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn hcms_report_round_trips() {
        for sign in [-1i8, 1] {
            let report = HcmsReport {
                row: 7,
                coeff: 1023,
                sign,
            };
            let back: HcmsReport = decode_report(&encode_report_vec(&report)).unwrap();
            assert_eq!(back, report);
        }
    }
}
