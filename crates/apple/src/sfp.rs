//! The Sequence Fragment Puzzle (SFP): Apple's new-word discovery.
//!
//! Discovering strings outside any dictionary is harder than frequency
//! estimation: fragments alone can be reassembled incorrectly ("face" +
//! "time" vs "face" + "book"). Apple's trick is the *puzzle piece*: every
//! fragment report carries an 8-bit hash of the **whole word**, so the
//! server only joins fragments whose puzzle pieces match — collisions
//! across different words are rare (1/256 per pair) and are filtered by a
//! final frequency check.
//!
//! Protocol (white-paper structure, simulated dictionary-free):
//! 1. Each client normalizes its word to a fixed length, picks a random
//!    fragment position `pos`, and submits
//!    `(pos, encode(fragment ‖ h₈(word)))` through a [`CmsProtocol`]
//!    sketch for that position, plus `encode(word)` through a separate
//!    whole-word sketch (budget split across the two submissions).
//! 2. The server decodes frequent `(fragment, puzzle)` pairs per position,
//!    groups them by puzzle byte, assembles one candidate word per puzzle
//!    group (taking the best fragment per position), and ranks candidates
//!    by their whole-word sketch estimate.

use crate::cms::{CmsProtocol, CmsServer};
use ldp_core::{Epsilon, Error, Result};
use ldp_sketch::hash::hash_bytes64;
use rand::Rng;

/// Normalization alphabet (same 40-symbol set as the RAPPOR discovery
/// reproduction): `a–z`, `0–9`, `.`, `-`, `_`, pad.
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-_";
const PAD: u64 = 39;
const RADIX: u64 = 40;

fn symbol(b: u8) -> u64 {
    match b {
        b'a'..=b'z' => (b - b'a') as u64,
        b'A'..=b'Z' => (b - b'A') as u64,
        b'0'..=b'9' => 26 + (b - b'0') as u64,
        b'.' => 36,
        b'-' => 37,
        b'_' => 38,
        _ => 37,
    }
}

#[cfg(test)]
fn normalize(s: &[u8], len: usize) -> Vec<u64> {
    let mut out = Vec::new();
    normalize_into(s, len, &mut out);
    out
}

/// Allocation-free [`normalize`] into a reusable buffer (the fused
/// collection loop normalizes one word per user).
fn normalize_into(s: &[u8], len: usize, out: &mut Vec<u64>) {
    out.clear();
    out.extend(s.iter().take(len).map(|&b| symbol(b)));
    out.resize(len, PAD);
}

fn pack_fragment(symbols: &[u64]) -> u64 {
    symbols.iter().fold(0, |acc, &s| acc * RADIX + s)
}

fn unpack_fragment(mut v: u64, len: usize) -> String {
    let mut chars = vec![0u8; len];
    for i in (0..len).rev() {
        let s = (v % RADIX) as usize;
        chars[i] = if s == PAD as usize { b'*' } else { ALPHABET[s] };
        v /= RADIX;
    }
    String::from_utf8(chars).expect("ascii alphabet")
}

/// 64-bit hash of a whole (normalized) word — the whole-word sketch key;
/// its low byte is the puzzle piece. `buf` is a reusable byte scratch.
fn word_hash_with(word: &[u64], buf: &mut Vec<u8>) -> u64 {
    buf.clear();
    buf.extend(word.iter().map(|&s| s as u8));
    hash_bytes64(buf)
}

/// 8-bit puzzle piece of a whole (normalized) word.
fn puzzle_piece(word: &[u64]) -> u64 {
    word_hash_with(word, &mut Vec::new()) & 0xff
}

/// Whole-word sketch key.
fn word_key(word: &[u64]) -> u64 {
    word_hash_with(word, &mut Vec::new())
}

/// Configuration for [`SfpDiscovery`].
#[derive(Debug, Clone)]
pub struct SfpConfig {
    /// Normalized word length (symbols).
    pub word_len: usize,
    /// Fragment length (must divide `word_len`).
    pub fragment_len: usize,
    /// Total per-user budget, split evenly between the fragment and
    /// whole-word submissions.
    pub epsilon: Epsilon,
    /// Sketch rows `k` for both sketches.
    pub sketch_rows: usize,
    /// Sketch width `m` for both sketches.
    pub sketch_width: usize,
    /// How many top `(fragment, puzzle)` pairs to keep per position.
    pub fragments_per_position: usize,
}

impl SfpConfig {
    /// A configuration suitable for simulations: 6-symbol words, bigram
    /// fragments, 1024-wide sketches.
    pub fn simulation(epsilon: Epsilon) -> Self {
        Self {
            word_len: 6,
            fragment_len: 2,
            epsilon,
            sketch_rows: 16,
            sketch_width: 1024,
            fragments_per_position: 8,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.word_len == 0 || self.fragment_len == 0 {
            return Err(Error::InvalidParameter("lengths must be positive".into()));
        }
        if !self.word_len.is_multiple_of(self.fragment_len) {
            return Err(Error::InvalidParameter(format!(
                "fragment_len {} must divide word_len {}",
                self.fragment_len, self.word_len
            )));
        }
        if self.sketch_rows == 0 || self.sketch_width < 2 || self.fragments_per_position == 0 {
            return Err(Error::InvalidParameter(
                "sketch parameters out of range".into(),
            ));
        }
        Ok(())
    }

    fn positions(&self) -> usize {
        self.word_len / self.fragment_len
    }

    fn fragment_domain(&self) -> u64 {
        RADIX.pow(self.fragment_len as u32) * 256
    }
}

/// A discovered word and its estimated count.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredWord {
    /// The recovered normalized word (pad symbols shown as `*`).
    pub word: String,
    /// Whole-word sketch estimate of its population count.
    pub estimate: f64,
}

/// Server-side collection state for one SFP round: one CMS server per
/// fragment position plus the whole-word server. Mergeable, so the
/// client stage can be sharded (threads or collector machines) and
/// combined — the same contract as every `ldp-core` aggregator.
#[derive(Debug, Clone)]
pub struct SfpCollectors {
    fragments: Vec<CmsServer>,
    word: CmsServer,
}

impl SfpCollectors {
    /// Reports collected (each user contributes one fragment report and
    /// one whole-word report).
    pub fn reports(&self) -> usize {
        self.word.reports()
    }

    /// The per-position fragment sketches.
    pub fn fragment_servers(&self) -> &[CmsServer] {
        &self.fragments
    }

    /// The whole-word sketch.
    pub fn word_server(&self) -> &CmsServer {
        &self.word
    }

    /// Merges another shard's collectors into this one (exact integer
    /// counter addition — bit-identical to sequential collection).
    ///
    /// # Panics
    /// Panics if the two collector sets came from different
    /// [`SfpDiscovery`] instances.
    pub fn merge(&mut self, other: Self) {
        assert_eq!(
            self.fragments.len(),
            other.fragments.len(),
            "merge: position count mismatch"
        );
        for (a, b) in self.fragments.iter_mut().zip(other.fragments) {
            a.merge(b);
        }
        self.word.merge(other.word);
    }

    /// Subtracts another collector pair's counters from this one — the
    /// exact inverse of [`merge`](Self::merge), checked across **every**
    /// fragment sketch and the word sketch before any of them moves, so
    /// a refusal leaves the whole state untouched.
    ///
    /// # Errors
    /// [`ldp_core::LdpError::StateMismatch`] if the sketch shapes differ
    /// or `other` is not a sub-aggregate of this state.
    pub fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        let fits = self.fragments.len() == other.fragments.len()
            && self
                .fragments
                .iter()
                .zip(&other.fragments)
                .all(|(a, b)| a.subtract_fits(b))
            && self.word.subtract_fits(&other.word);
        if !fits {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: SFP subtrahend is not configured like, or is not a sub-aggregate of, \
                 this state"
                    .into(),
            ));
        }
        for (a, b) in self.fragments.iter_mut().zip(&other.fragments) {
            a.try_subtract(b).expect("pre-checked fragment subtract");
        }
        self.word
            .try_subtract(&other.word)
            .expect("pre-checked word subtract");
        Ok(())
    }
}

impl ldp_core::snapshot::StateSnapshot for SfpCollectors {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::APPLE_SFP
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        // Each nested sketch payload is self-delimiting (its counter
        // vectors carry length prefixes), so the fragment payloads are
        // written back to back with only a leading position count.
        ldp_core::snapshot::put_count(out, self.fragments.len());
        for frag in &self.fragments {
            frag.snapshot_payload(out);
        }
        self.word.snapshot_payload(out);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        let positions = ldp_core::snapshot::get_count(r)?;
        if positions != self.fragments.len() {
            return Err(ldp_core::LdpError::StateMismatch(format!(
                "SFP position count: snapshot has {positions}, aggregator has {}",
                self.fragments.len()
            )));
        }
        // Decode into clones so a failure partway leaves `self` intact.
        let mut fragments = self.fragments.clone();
        for frag in &mut fragments {
            frag.restore_payload(r)?;
        }
        let mut word = self.word.clone();
        word.restore_payload(r)?;
        self.fragments = fragments;
        self.word = word;
        Ok(())
    }
}

/// The SFP discovery protocol.
#[derive(Debug)]
pub struct SfpDiscovery {
    config: SfpConfig,
    fragment_sketches: Vec<CmsProtocol>,
    word_sketch: CmsProtocol,
}

impl SfpDiscovery {
    /// Creates the protocol, deriving per-position sketch seeds from
    /// `seed`.
    ///
    /// # Errors
    /// Propagates configuration validation failures.
    pub fn new(config: SfpConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let half_eps = config.epsilon.split(2);
        let fragment_sketches = (0..config.positions())
            .map(|p| {
                CmsProtocol::new(
                    config.sketch_rows,
                    config.sketch_width,
                    half_eps,
                    seed.wrapping_add(1 + p as u64),
                )
            })
            .collect();
        let word_sketch = CmsProtocol::new(config.sketch_rows, config.sketch_width, half_eps, seed);
        Ok(Self {
            config,
            fragment_sketches,
            word_sketch,
        })
    }

    /// Creates the empty per-position fragment sketches and the whole-word
    /// sketch for one collection round.
    pub fn new_collectors(&self) -> SfpCollectors {
        SfpCollectors {
            fragments: self
                .fragment_sketches
                .iter()
                .map(|s| s.new_server())
                .collect(),
            word: self.word_sketch.new_server(),
        }
    }

    /// The fused client stage: privatizes every user's fragment and
    /// whole-word submissions (each at `ε/2`) straight into `collectors`
    /// through [`CmsServer::accumulate_fused`] — no report vectors, no
    /// per-user sketch rows, one reusable normalization buffer.
    ///
    /// Bit-identical to the scalar reference (per-user
    /// `randomize` + `accumulate` with the same RNG), and mergeable: the
    /// population can be sharded across calls on separate collectors and
    /// combined with [`SfpCollectors::merge`].
    pub fn collect<R: Rng + ?Sized>(
        &self,
        population: &[&[u8]],
        rng: &mut R,
        collectors: &mut SfpCollectors,
    ) {
        let cfg = &self.config;
        let positions = cfg.positions();
        let mut word = Vec::with_capacity(cfg.word_len);
        let mut bytes = Vec::with_capacity(cfg.word_len);
        for raw in population {
            normalize_into(raw, cfg.word_len, &mut word);
            let hash = word_hash_with(&word, &mut bytes);
            let puzzle = hash & 0xff;
            let pos = rng.gen_range(0..positions);
            let frag = pack_fragment(&word[pos * cfg.fragment_len..(pos + 1) * cfg.fragment_len]);
            let frag_value = frag * 256 + puzzle;
            collectors.fragments[pos].accumulate_fused(frag_value, rng);
            collectors.word.accumulate_fused(hash, rng);
        }
    }

    /// Runs discovery over a population of words: one fused collection
    /// round ([`collect`](Self::collect)) followed by
    /// [`decode`](Self::decode).
    ///
    /// Returns discovered words sorted by estimated count, descending.
    pub fn run<R: Rng>(&self, population: &[&[u8]], rng: &mut R) -> Vec<DiscoveredWord> {
        let mut collectors = self.new_collectors();
        self.collect(population, rng, &mut collectors);
        self.decode(&collectors)
    }

    /// Server side: candidate-driven decode — a heavy-hitter-style
    /// frontier instead of exhaustively scoring `40^ℓ·256` values at
    /// every position.
    ///
    /// Position 0 is the seed scan: only `(fragment, puzzle)` values
    /// clearing a noise threshold (a multiple of the sketch's
    /// per-estimate standard deviation) survive — found with
    /// [`CmsServer::scan_above`], which feeds the threshold into a
    /// pruned sketch scan rather than estimating the full domain — and
    /// their puzzle bytes form the surviving *frontier*. Positions ≥ 1 then
    /// score only values whose puzzle byte is in the frontier — a
    /// `|frontier|/256` fraction of the domain. The join is sound
    /// because any completable candidate must carry its puzzle byte at
    /// *every* position, so restricting later positions to puzzles that
    /// survived position 0 discards nothing that could have assembled.
    ///
    /// Each surviving list is then capped at `fragments_per_position`
    /// (the same cap the frozen [`decode_exhaustive`](Self::decode_exhaustive)
    /// applies) and fed to the identical assemble/verify/rank stage, so
    /// on workloads where the true words sit above the noise threshold
    /// the two decoders return the same heavy-hitter set.
    pub fn decode(&self, collectors: &SfpCollectors) -> Vec<DiscoveredWord> {
        let cfg = &self.config;
        let domain = cfg.fragment_domain();
        let mut per_position: Vec<Vec<(u64, u64, f64)>> =
            Vec::with_capacity(collectors.fragments.len());
        // Frontier of puzzle bytes still alive; None = not yet seeded.
        let mut frontier: Option<std::collections::BTreeSet<u64>> = None;
        for (pos, server) in collectors.fragments.iter().enumerate() {
            let threshold = self.noise_threshold(pos, server.reports());
            let mut scored: Vec<(u64, u64, f64)> = Vec::new();
            match &frontier {
                None => {
                    // Seed scan: the 2σ survivor threshold drives a
                    // pruned sketch scan (precomputed cell table,
                    // row-level suffix-max cutoffs) instead of a full
                    // per-value estimate of the whole domain; the
                    // survivors and their estimates are bit-identical
                    // to the naive filter scan.
                    for (v, e) in server.scan_above(domain, threshold) {
                        scored.push((v / 256, v % 256, e));
                    }
                }
                Some(alive) => {
                    // Frontier scan: only puzzles that can still join.
                    for frag in 0..domain / 256 {
                        for &puzzle in alive {
                            let e = server.estimate(frag * 256 + puzzle);
                            if e > threshold {
                                scored.push((frag, puzzle, e));
                            }
                        }
                    }
                }
            }
            scored.sort_by(|a, b| b.2.total_cmp(&a.2));
            scored.truncate(cfg.fragments_per_position);
            // Narrow the frontier: a puzzle missing at any position can
            // never assemble a complete candidate.
            frontier = Some(scored.iter().map(|&(_, p, _)| p).collect());
            per_position.push(scored);
        }
        self.assemble_and_rank(&per_position, collectors)
    }

    /// The per-position survival threshold: twice the fragment sketch's
    /// approximate per-estimate standard deviation at `n` reports (and
    /// never below zero, matching the exhaustive decoder's positivity
    /// filter).
    fn noise_threshold(&self, pos: usize, n: usize) -> f64 {
        2.0 * self.fragment_sketches[pos].approx_count_variance(n).sqrt()
    }

    /// The frozen exhaustive decoder: scores the full `40^ℓ·256` domain
    /// at every position and keeps each position's global top
    /// `fragments_per_position`. Kept verbatim as the correctness oracle
    /// for [`decode`](Self::decode) (recall tests) and as the frozen
    /// baseline `ldp-bench` measures `sfp_decode_speedup` against — do
    /// not optimize it.
    pub fn decode_exhaustive(&self, collectors: &SfpCollectors) -> Vec<DiscoveredWord> {
        let cfg = &self.config;
        let domain = cfg.fragment_domain();
        let mut per_position: Vec<Vec<(u64, u64, f64)>> =
            Vec::with_capacity(collectors.fragments.len());
        for server in &collectors.fragments {
            let mut scored: Vec<(u64, u64, f64)> = (0..domain)
                .map(|v| (v / 256, v % 256, server.estimate(v)))
                .collect();
            scored.sort_by(|a, b| b.2.total_cmp(&a.2));
            scored.truncate(cfg.fragments_per_position);
            scored.retain(|&(_, _, e)| e > 0.0);
            per_position.push(scored);
        }
        self.assemble_and_rank(&per_position, collectors)
    }

    /// Shared back half of both decoders: group per-position survivors
    /// by puzzle byte, take the best fragment per position within each
    /// group, verify the puzzle byte against the assembled word, and
    /// rank the verified candidates by whole-word sketch estimate.
    fn assemble_and_rank(
        &self,
        per_position: &[Vec<(u64, u64, f64)>],
        collectors: &SfpCollectors,
    ) -> Vec<DiscoveredWord> {
        let cfg = &self.config;
        let mut candidates: Vec<Vec<u64>> = Vec::new();
        let puzzles: std::collections::BTreeSet<u64> = per_position
            .iter()
            .flat_map(|frags| frags.iter().map(|&(_, p, _)| p))
            .collect();
        for puzzle in puzzles {
            // Require a matching fragment at every position.
            let mut word_syms: Vec<u64> = Vec::with_capacity(cfg.word_len);
            let mut complete = true;
            for frags in per_position {
                match frags
                    .iter()
                    .filter(|&&(_, p, _)| p == puzzle)
                    .max_by(|a, b| a.2.total_cmp(&b.2))
                {
                    Some(&(frag, _, _)) => {
                        let mut syms = vec![0u64; cfg.fragment_len];
                        let mut v = frag;
                        for i in (0..cfg.fragment_len).rev() {
                            syms[i] = v % RADIX;
                            v /= RADIX;
                        }
                        word_syms.extend(syms);
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            // The puzzle byte must verify against the assembled word.
            if complete && puzzle_piece(&word_syms) == puzzle {
                candidates.push(word_syms);
            }
        }

        let mut out: Vec<DiscoveredWord> = candidates
            .into_iter()
            .map(|syms| DiscoveredWord {
                word: syms
                    .chunks(cfg.fragment_len)
                    .map(|c| unpack_fragment(pack_fragment(c), cfg.fragment_len))
                    .collect::<Vec<_>>()
                    .join(""),
                estimate: collectors.word.estimate(word_key(&syms)),
            })
            .filter(|d| d.estimate > 0.0)
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn puzzle_piece_is_8_bits_and_stable() {
        let w = normalize(b"foobar", 6);
        let p1 = puzzle_piece(&w);
        let p2 = puzzle_piece(&w);
        assert_eq!(p1, p2);
        assert!(p1 < 256);
        assert_ne!(
            puzzle_piece(&normalize(b"foobar", 6)),
            puzzle_piece(&normalize(b"foobaz", 6))
        );
    }

    #[test]
    fn fragment_pack_unpack_roundtrip() {
        for s in [b"ab".as_slice(), b"z9", b".."] {
            let syms = normalize(s, 2);
            let packed = pack_fragment(&syms);
            assert_eq!(
                unpack_fragment(packed, 2).as_bytes(),
                s.to_ascii_lowercase()
            );
        }
    }

    #[test]
    fn discovers_popular_words() {
        let config = SfpConfig::simulation(Epsilon::new(6.0).unwrap());
        let sfp = SfpDiscovery::new(config, 99).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut population: Vec<&[u8]> = Vec::new();
        for i in 0..20_000 {
            population.push(match i % 10 {
                0..=5 => b"selfie",
                6..=8 => b"emojis",
                _ => b"xq1-z0",
            });
        }
        let found = sfp.run(&population, &mut rng);
        assert!(!found.is_empty(), "should discover words");
        assert_eq!(found[0].word, "selfie", "top word: {found:?}");
        assert!(
            found.iter().any(|d| d.word == "emojis"),
            "emojis should be found: {found:?}"
        );
    }

    #[test]
    fn candidate_decode_matches_exhaustive_oracle() {
        // On seeded workloads whose true words sit well above the noise
        // threshold, the frontier decode must return exactly the same
        // heavy-hitter set as the frozen exhaustive oracle — every word
        // the oracle finds (recall) and nothing extra (superset-free).
        for (seed, rng_seed) in [(99u64, 7u64), (5, 11), (1234, 42)] {
            let config = SfpConfig::simulation(Epsilon::new(6.0).unwrap());
            let sfp = SfpDiscovery::new(config, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let mut population: Vec<&[u8]> = Vec::new();
            for i in 0..20_000 {
                population.push(match i % 10 {
                    0..=5 => b"selfie",
                    6..=8 => b"emojis",
                    _ => b"xq1-z0",
                });
            }
            let mut collectors = sfp.new_collectors();
            sfp.collect(&population, &mut rng, &mut collectors);

            let fast = sfp.decode(&collectors);
            let slow = sfp.decode_exhaustive(&collectors);
            let fast_words: Vec<&str> = fast.iter().map(|d| d.word.as_str()).collect();
            let slow_words: Vec<&str> = slow.iter().map(|d| d.word.as_str()).collect();
            assert_eq!(
                fast_words, slow_words,
                "seed ({seed},{rng_seed}): frontier {fast:?} vs exhaustive {slow:?}"
            );
            // Estimates come from the same whole-word sketch lookups.
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.estimate.to_bits(), s.estimate.to_bits());
            }
        }
    }

    #[test]
    fn config_validation() {
        let mut c = SfpConfig::simulation(Epsilon::new(2.0).unwrap());
        c.fragment_len = 4; // does not divide 6
        assert!(SfpDiscovery::new(c, 0).is_err());
        let mut c = SfpConfig::simulation(Epsilon::new(2.0).unwrap());
        c.sketch_rows = 0;
        assert!(SfpDiscovery::new(c, 0).is_err());
    }
}
