//! # `ldp-apple` — Apple's local differential privacy stack, reproduced
//!
//! Apple's deployment ("Learning with Privacy at Scale", 2017; US patent
//! 9,594,741) collects popular emoji, words and web domains from hundreds
//! of millions of devices. The SIGMOD 2018 tutorial highlights its two
//! technical moves beyond RAPPOR:
//!
//! 1. **Sketching before privatizing** — the domain (every possible word)
//!    is first hashed into a `k × m` Count-Mean Sketch, so client messages
//!    and server state scale with the sketch, not the domain
//!    ([`cms::CmsProtocol`]).
//! 2. **Fourier-spreading for 1-bit messages** — the Hadamard variant
//!    ([`hcms::HcmsProtocol`]) has each device transmit a *single
//!    privatized bit* (one sampled Hadamard coefficient), with accuracy
//!    matching the full-vector CMS: the transform spreads the one-hot
//!    signal so any coordinate carries `1/√m` of it.
//!
//! New-word discovery — learning strings outside any dictionary — is
//! reproduced in [`sfp`] (Sequence Fragment Puzzle): fragments are
//! reported alongside an 8-bit hash "puzzle piece" of the whole word, and
//! the server reassembles candidates by matching puzzle pieces across
//! positions.
//!
//! ## Example
//! ```
//! use ldp_apple::cms::CmsProtocol;
//! use ldp_core::Epsilon;
//! use rand::SeedableRng;
//!
//! let proto = CmsProtocol::new(64, 1024, Epsilon::new(4.0).unwrap(), 99);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut server = proto.new_server();
//! for user in 0..20_000u64 {
//!     let emoji = user % 10; // ten popular emoji
//!     server.accumulate(&proto.randomize(emoji, &mut rng));
//! }
//! let est = server.estimate(3);
//! assert!((est - 2000.0).abs() < 600.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cms;
pub mod cost;
pub mod hcms;
pub mod sfp;
pub mod wire;

pub use cms::{CmsAggregator, CmsOracle, CmsProtocol, CmsReport, CmsServer};
pub use cost::register_cost_models;
pub use hcms::{HcmsAggregator, HcmsOracle, HcmsProtocol, HcmsReport, HcmsServer};
pub use sfp::{SfpCollectors, SfpConfig, SfpDiscovery};
pub use wire::register_mechanisms;
