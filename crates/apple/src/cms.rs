//! Apple's private Count-Mean Sketch (CMS) protocol.
//!
//! Client side (`A_client-CMS` in the white paper): pick a uniform sketch
//! row `j ∈ [k]`, build the ±1 one-hot vector of `h_j(value)` over `[m]`,
//! flip each coordinate's sign independently with probability
//! `1/(e^{ε/2}+1)` (two coordinates differ between any two inputs, hence
//! the `ε/2`), and send `(j, noisy vector)`.
//!
//! Server side: debias each report coordinate by `c_ε = (e^{ε/2}+1)/(e^{ε/2}−1)`,
//! scale by `k` to undo row sampling, accumulate into the `k × m` matrix,
//! and answer point queries with the collision-debiased row mean
//! `f̂(d) = (m/(m−1)) · ( (1/k)·Σ_j M[j, h_j(d)] − n/m )`.
//!
//! The estimate is unbiased; its variance has two parts — privatization
//! noise `Θ(k·c_ε²·…/n)`-per-report and sketch collision noise `Θ(n/m)` —
//! which is exactly the trade-off experiment E4 sweeps.

use ldp_core::Epsilon;
use ldp_sketch::hash::PairwiseHash;
use rand::Rng;

/// One CMS report: the sampled row and the privatized ±1 vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsReport {
    /// Sampled sketch row `j ∈ [k]`.
    pub row: u32,
    /// Privatized vector over the `m` buckets, entries in `{−1, +1}`.
    pub bits: Vec<i8>,
}

/// The CMS protocol parameters shared by clients and server.
#[derive(Debug, Clone)]
pub struct CmsProtocol {
    k: usize,
    m: usize,
    epsilon: Epsilon,
    flip_prob: f64,
    c_eps: f64,
    hashes: Vec<PairwiseHash>,
}

impl CmsProtocol {
    /// Creates a protocol with `k` hash rows and sketch width `m`, seeded
    /// deterministically so clients and server agree on the hash family.
    ///
    /// # Panics
    /// Panics if `k == 0` or `m < 2`.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash row");
        assert!(m >= 2, "sketch width must be at least 2");
        let half = (epsilon.value() / 2.0).exp();
        let hashes = (0..k)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    m as u64,
                )
            })
            .collect();
        Self {
            k,
            m,
            epsilon,
            flip_prob: 1.0 / (half + 1.0),
            c_eps: (half + 1.0) / (half - 1.0),
            hashes,
        }
    }

    /// Sketch shape `(k, m)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.m)
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The per-coordinate sign-flip probability `1/(e^{ε/2}+1)`.
    pub fn flip_prob(&self) -> f64 {
        self.flip_prob
    }

    /// The debias constant `c_ε`.
    pub fn c_eps(&self) -> f64 {
        self.c_eps
    }

    /// The bucket `h_j(value)`.
    pub fn bucket(&self, row: usize, value: u64) -> usize {
        self.hashes[row].hash(value) as usize
    }

    /// Client side: produce a privatized report for `value`.
    pub fn randomize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> CmsReport {
        let row = rng.gen_range(0..self.k);
        let bucket = self.bucket(row, value);
        let mut bits = vec![-1i8; self.m];
        bits[bucket] = 1;
        for b in bits.iter_mut() {
            if rng.gen_bool(self.flip_prob) {
                *b = -*b;
            }
        }
        CmsReport {
            row: row as u32,
            bits,
        }
    }

    /// Creates the matching server.
    pub fn new_server(&self) -> CmsServer {
        CmsServer {
            protocol: self.clone(),
            matrix: vec![0.0; self.k * self.m],
            n: 0,
        }
    }

    /// Approximate variance of a count estimate over `n` reports:
    /// privatization term `(k·(c_ε²−…)+m…)`-free simplified bound
    /// `n·k·(c_ε² − 1)/m·…` — we expose the empirically validated
    /// leading term `n·(c_ε²·k/m + 1/m)·m/(m−1)²·m ≈ n·k·c_ε²/m + n/m`.
    pub fn approx_count_variance(&self, n: usize) -> f64 {
        let nf = n as f64;
        let m = self.m as f64;
        let k = self.k as f64;
        // Leading terms: sign-flip noise (each report contributes
        // k·c_eps·(±1)/2-scale noise to the queried cell with prob 1/k)
        // plus sketch collision variance n/m.
        nf * k * self.c_eps * self.c_eps / m * (m / (m - 1.0)).powi(2) + nf / m
    }
}

/// Server-side CMS state: the running `k × m` debiased matrix.
#[derive(Debug, Clone)]
pub struct CmsServer {
    protocol: CmsProtocol,
    matrix: Vec<f64>,
    n: usize,
}

impl CmsServer {
    /// Folds one report into the matrix:
    /// `M[j, l] += k · (c_ε/2 · bits[l] + 1/2)`.
    ///
    /// # Panics
    /// Panics if the report's shape disagrees with the protocol.
    pub fn accumulate(&mut self, report: &CmsReport) {
        let (k, m) = self.protocol.shape();
        assert!((report.row as usize) < k, "row out of range");
        assert_eq!(report.bits.len(), m, "report width mismatch");
        let c = self.protocol.c_eps;
        let row = report.row as usize;
        let base = row * m;
        for (l, &b) in report.bits.iter().enumerate() {
            self.matrix[base + l] += k as f64 * (c / 2.0 * b as f64 + 0.5);
        }
        self.n += 1;
    }

    /// Number of reports accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Unbiased count estimate for `value`:
    /// `(m/(m−1)) · ( (1/k)·Σ_j M[j, h_j(value)] − n/m )`.
    pub fn estimate(&self, value: u64) -> f64 {
        let (k, m) = self.protocol.shape();
        let mf = m as f64;
        let mean_cell: f64 = (0..k)
            .map(|j| self.matrix[j * m + self.protocol.bucket(j, value)])
            .sum::<f64>()
            / k as f64;
        (mf / (mf - 1.0)) * (mean_cell - self.n as f64 / mf)
    }

    /// Estimates every item in `items` (convenience for sweeps).
    pub fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        items.iter().map(|&v| self.estimate(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn flip_prob_and_ceps_consistent() {
        let p = CmsProtocol::new(4, 32, eps(2.0), 1);
        let half = 1.0f64.exp(); // e^{2/2}
        assert!((p.flip_prob() - 1.0 / (half + 1.0)).abs() < 1e-12);
        assert!((p.c_eps() - (half + 1.0) / (half - 1.0)).abs() < 1e-12);
        // c_eps = 1/(1-2*flip_prob): debias inverts the flip channel.
        assert!((p.c_eps() - 1.0 / (1.0 - 2.0 * p.flip_prob())).abs() < 1e-9);
    }

    #[test]
    fn estimates_unbiased_for_heavy_item() {
        let proto = CmsProtocol::new(16, 256, eps(4.0), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = proto.new_server();
        let n = 30_000;
        for u in 0..n {
            let v = if u % 3 == 0 {
                7u64
            } else {
                1000 + u as u64 % 5000
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        let est = server.estimate(7);
        let truth = (n as f64 / 3.0).ceil();
        assert!((est - truth).abs() < 1500.0, "est={est} truth={truth}");
        assert_eq!(server.reports(), n);
    }

    #[test]
    fn absent_items_near_zero() {
        let proto = CmsProtocol::new(8, 128, eps(4.0), 9);
        let mut rng = StdRng::seed_from_u64(11);
        let mut server = proto.new_server();
        let n = 20_000;
        for u in 0..n {
            server.accumulate(&proto.randomize(u as u64 % 50, &mut rng));
        }
        // Average over many absent items: collisions add ~n/m per cell but
        // the debias removes the mean; individual estimates are noisy.
        let absent: Vec<u64> = (1000..1100).collect();
        let ests = server.estimate_items(&absent);
        let avg = ests.iter().sum::<f64>() / ests.len() as f64;
        assert!(avg.abs() < 200.0, "avg absent estimate {avg}");
    }

    #[test]
    fn estimate_average_unbiased_over_trials() {
        let proto = CmsProtocol::new(4, 64, eps(2.0), 13);
        let truth = 500usize;
        let n = 2000usize;
        let trials = 40;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let mut server = proto.new_server();
            for u in 0..n {
                let v = if u < truth { 42u64 } else { 10_000 + u as u64 };
                server.accumulate(&proto.randomize(v, &mut rng));
            }
            sum += server.estimate(42);
        }
        let avg = sum / trials as f64;
        assert!((avg - truth as f64).abs() < 60.0, "avg={avg}");
    }

    #[test]
    fn wider_sketch_reduces_collision_error() {
        let narrow = CmsProtocol::new(4, 16, eps(4.0), 17);
        let wide = CmsProtocol::new(4, 1024, eps(4.0), 17);
        assert!(wide.approx_count_variance(10_000) < narrow.approx_count_variance(10_000));
    }

    #[test]
    #[should_panic(expected = "report width mismatch")]
    fn shape_mismatch_panics() {
        let proto = CmsProtocol::new(2, 16, eps(1.0), 0);
        let mut server = proto.new_server();
        server.accumulate(&CmsReport {
            row: 0,
            bits: vec![1; 8],
        });
    }
}
