//! Apple's private Count-Mean Sketch (CMS) protocol.
//!
//! Client side (`A_client-CMS` in the white paper): pick a uniform sketch
//! row `j ∈ [k]`, build the ±1 one-hot vector of `h_j(value)` over `[m]`,
//! flip each coordinate's sign independently with probability
//! `1/(e^{ε/2}+1)` (two coordinates differ between any two inputs, hence
//! the `ε/2`), and send `(j, noisy vector)`.
//!
//! Server side: accumulate the `k × m` sketch and answer point queries
//! with the debiased, collision-corrected row mean
//! `f̂(d) = (m/(m−1)) · ( (1/k)·Σ_j M[j, h_j(d)] − n/m )` where
//! `M[j, l] = k · Σ (c_ε/2 · bits[l] + 1/2)` over the reports that sampled
//! row `j`, with `c_ε = (e^{ε/2}+1)/(e^{ε/2}−1)`.
//!
//! The estimate is unbiased; its variance has two parts — privatization
//! noise `Θ(k·c_ε²·…/n)`-per-report and sketch collision noise `Θ(n/m)` —
//! which is exactly the trade-off experiment E4 sweeps.
//!
//! ## Batch engine
//!
//! Sign flips are i.i.d. Bernoulli(`q`) over the `m` coordinates, so the
//! client samples the *flipped positions* with the shared geometric-skip
//! sampler ([`ldp_core::fo::batch::GeometricSkip`]): `2 + m·q` uniform
//! draws per report instead of `m`. The server keeps **integer** state —
//! per-cell `+1` counts plus per-row report counts — so the debiased
//! matrix is a pure function of exact counters: scalar accumulation,
//! fused accumulation ([`CmsServer::accumulate_fused`], `O(1 + m·q)`
//! counter increments per report, no `O(m)` scan, no allocation), and
//! sharded merges ([`CmsServer::merge`]) are all bit-identical by
//! construction. [`CmsOracle`] binds the sketch to an enumerable domain
//! and plugs it into `ldp_core::fo::FrequencyOracle`, which is what lets
//! `ldp_workloads::parallel` drive CMS collection across shards.

use ldp_core::fo::batch::GeometricSkip;
use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::Epsilon;
use ldp_sketch::hash::PairwiseHash;
use rand::{Rng, RngCore};

/// One CMS report: the sampled row and the privatized ±1 vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsReport {
    /// Sampled sketch row `j ∈ [k]`.
    pub row: u32,
    /// Privatized vector over the `m` buckets, entries in `{−1, +1}`.
    pub bits: Vec<i8>,
}

impl CmsReport {
    /// An empty report buffer, for reuse with [`CmsProtocol::report_into`].
    pub fn empty() -> Self {
        Self {
            row: 0,
            bits: Vec::new(),
        }
    }
}

/// The CMS protocol parameters shared by clients and server.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsProtocol {
    k: usize,
    m: usize,
    epsilon: Epsilon,
    flip_prob: f64,
    c_eps: f64,
    /// Geometric-skip sampler for the per-coordinate sign-flip rate,
    /// precomputed once (CDF boundary table); shared by the scalar and
    /// fused paths so both consume identical RNG streams.
    flip_skip: GeometricSkip,
    hashes: Vec<PairwiseHash>,
}

impl CmsProtocol {
    /// Creates a protocol with `k` hash rows and sketch width `m`, seeded
    /// deterministically so clients and server agree on the hash family.
    ///
    /// # Panics
    /// Panics if `k == 0` or `m < 2`.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash row");
        assert!(m >= 2, "sketch width must be at least 2");
        let half = (epsilon.value() / 2.0).exp();
        let hashes = (0..k)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    m as u64,
                )
            })
            .collect();
        let flip_prob = 1.0 / (half + 1.0);
        Self {
            k,
            m,
            epsilon,
            flip_prob,
            c_eps: (half + 1.0) / (half - 1.0),
            flip_skip: GeometricSkip::new(flip_prob),
            hashes,
        }
    }

    /// Sketch shape `(k, m)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.m)
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The per-coordinate sign-flip probability `1/(e^{ε/2}+1)`.
    pub fn flip_prob(&self) -> f64 {
        self.flip_prob
    }

    /// The debias constant `c_ε`.
    pub fn c_eps(&self) -> f64 {
        self.c_eps
    }

    /// The bucket `h_j(value)`.
    pub fn bucket(&self, row: usize, value: u64) -> usize {
        self.hashes[row].hash(value) as usize
    }

    /// Samples the report's row and resolves the value's bucket in it —
    /// the first stage of the shared sampling core (one `gen_range`
    /// draw). The second stage is `flip_skip.sample_into` over the `m`
    /// coordinates; every client path (scalar, `report_into`, fused)
    /// performs exactly these two stages in order, which is what makes
    /// their RNG streams identical.
    #[inline]
    fn sample_cell<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> (usize, usize) {
        let row = rng.gen_range(0..self.k);
        (row, self.bucket(row, value))
    }

    /// Client side: produce a privatized report for `value`.
    pub fn randomize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> CmsReport {
        let mut report = CmsReport::empty();
        self.report_into(value, rng, &mut report);
        report
    }

    /// Allocation-free client side: writes the privatized report for
    /// `value` into `report`, reusing its buffer (mirrors
    /// `ldp_rappor::RapporClient::report_into`). Same RNG stream as
    /// [`randomize`](Self::randomize) — which is implemented on top of it.
    pub fn report_into<R: Rng + ?Sized>(&self, value: u64, rng: &mut R, report: &mut CmsReport) {
        let (row, bucket) = self.sample_cell(value, rng);
        let bits = &mut report.bits;
        bits.clear();
        bits.resize(self.m, -1i8);
        self.flip_skip.sample_into(self.m as u64, rng, |l| {
            let b = &mut bits[l as usize];
            *b = -*b;
        });
        // Sign flips commute with the one-hot sign, so the bucket's +1 is
        // applied after the flip pass (toggling it once more).
        bits[bucket] = -bits[bucket];
        report.row = row as u32;
    }

    /// Creates the matching server.
    pub fn new_server(&self) -> CmsServer {
        CmsServer {
            protocol: self.clone(),
            ones: vec![0; self.k * self.m],
            row_n: vec![0; self.k],
            n: 0,
        }
    }

    /// Approximate variance of a count estimate over `n` reports.
    ///
    /// Each report contributes `c_ε/2·b + ½` to the queried row-mean
    /// (its sampled row enters the `k`-row average with weight `1/k`
    /// against the accumulation scale `k`, so the row count cancels),
    /// where `b` is the privatized ±1 sign of the queried cell:
    /// `Var(b) = 1 − E[b]²/c_ε²` with `E[b] ≈ −(1 − 2/m)` for an absent
    /// item. Hence
    /// `Var ≈ (m/(m−1))² · n/4 · (c_ε² − (1 − 2/m)²)` — flip noise plus
    /// the sketch-collision spread, independent of `k`. Verified
    /// empirically in `crates/apple/tests/batch_identity.rs`.
    ///
    /// This method is the formula's single home: the planner's cost
    /// model ([`crate::cost`]) prices CMS plans by instantiating the
    /// protocol and delegating here rather than restating the algebra.
    pub fn approx_count_variance(&self, n: usize) -> f64 {
        let nf = n as f64;
        let m = self.m as f64;
        let c = self.c_eps;
        (m / (m - 1.0)).powi(2) * nf / 4.0 * (c * c - (1.0 - 2.0 / m).powi(2))
    }
}

/// Server-side CMS state: exact integer counters from which the debiased
/// `k × m` matrix is derived on demand.
///
/// Keeping counters instead of a running `f64` matrix makes every
/// accumulation path exact: the scalar [`accumulate`](Self::accumulate),
/// the fused [`accumulate_fused`](Self::accumulate_fused) and
/// [`merge`](Self::merge) all land on identical state for identical
/// reports, with no floating-point reassociation anywhere.
#[derive(Debug, Clone)]
pub struct CmsServer {
    protocol: CmsProtocol,
    /// Per-cell count of `+1` entries among the reports that sampled the
    /// cell's row (`k × m`, row-major).
    ones: Vec<u64>,
    /// Number of reports that sampled each row.
    row_n: Vec<u64>,
    n: usize,
}

impl CmsServer {
    /// Folds one report into the counters. The derived matrix cell is
    /// `M[j, l] = k · (c_ε/2 · Σ bits[l] + n_j/2)` — identical to
    /// accumulating `k·(c_ε/2·bits[l] + ½)` per report.
    ///
    /// # Panics
    /// Panics if the report's shape disagrees with the protocol.
    pub fn accumulate(&mut self, report: &CmsReport) {
        let (k, m) = self.protocol.shape();
        assert!((report.row as usize) < k, "row out of range");
        assert_eq!(report.bits.len(), m, "report width mismatch");
        let row = report.row as usize;
        let base = row * m;
        for (l, &b) in report.bits.iter().enumerate() {
            self.ones[base + l] += u64::from(b > 0);
        }
        self.row_n[row] += 1;
        self.n += 1;
    }

    /// Fused client+server step: randomizes `value` and folds the report
    /// directly into the counters — `O(1 + m·q)` increments (one per
    /// flipped coordinate) instead of an `O(m)` scan, and no report is
    /// materialized. Consumes exactly the RNG stream of
    /// [`CmsProtocol::randomize`], so the resulting state is bit-identical
    /// to `accumulate(&randomize(value, rng))`.
    ///
    /// # Panics
    /// Panics if the RNG stream is exhausted (it never is for `RngCore`).
    pub fn accumulate_fused<R: RngCore + ?Sized>(&mut self, value: u64, rng: &mut R) {
        let (row, bucket) = self.protocol.sample_cell(value, rng);
        let m = self.protocol.m;
        let base = row * m;
        let skip = self.protocol.flip_skip;
        let ones = &mut self.ones;
        // A flipped non-bucket coordinate lands at +1; a flipped bucket
        // coordinate lands at −1. Everything else keeps its base sign
        // (−1 off-bucket, +1 at the bucket).
        let mut bucket_flipped = false;
        skip.sample_into(m as u64, rng, |l| {
            let l = l as usize;
            if l == bucket {
                bucket_flipped = true;
            } else {
                ones[base + l] += 1;
            }
        });
        if !bucket_flipped {
            ones[base + bucket] += 1;
        }
        self.row_n[row] += 1;
        self.n += 1;
    }

    /// Merges another server's counters into this one, as if its reports
    /// had been accumulated here. Exact (integer addition), so sharded
    /// collection is bit-identical to sequential.
    ///
    /// # Panics
    /// Panics if the two servers were built from different protocols.
    pub fn merge(&mut self, other: Self) {
        assert!(
            self.protocol == other.protocol,
            "merge: protocol mismatch (shape, budget or hash family)"
        );
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        for (a, b) in self.row_n.iter_mut().zip(&other.row_n) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Subtracts another server's counters from this one — the exact
    /// inverse of [`merge`](Self::merge) for retiring a window delta
    /// from a running total. All-or-nothing: every underflow check runs
    /// before the first counter moves.
    ///
    /// # Errors
    /// [`ldp_core::LdpError::StateMismatch`] if the protocols differ or
    /// `other` is not a sub-aggregate of this state.
    pub fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.protocol != other.protocol {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: CMS protocol mismatch".into(),
            ));
        }
        if !self.subtract_fits(other) {
            // (The protocol check above already passed; this is the
            // underflow half of the fit.)
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: CMS subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        ldp_core::fo::subtract_counts(&mut self.ones, &other.ones);
        ldp_core::fo::subtract_counts(&mut self.row_n, &other.row_n);
        self.n -= other.n;
        Ok(())
    }

    /// True iff [`try_subtract`](Self::try_subtract) would commit (same
    /// protocol, no counter underflow) — the pre-check SFP's
    /// multi-sketch subtract runs over every fragment before touching
    /// any, keeping its own subtract all-or-nothing.
    pub(crate) fn subtract_fits(&self, other: &Self) -> bool {
        self.protocol == other.protocol
            && self.n >= other.n
            && ldp_core::fo::counts_fit(&self.ones, &other.ones)
            && ldp_core::fo::counts_fit(&self.row_n, &other.row_n)
    }

    /// Number of reports accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// The debiased matrix cell `M[j, l]`, derived from the counters:
    /// `Σ bits[l] = 2·ones − n_j` over the `n_j` reports of row `j`.
    #[inline]
    fn cell(&self, j: usize, l: usize) -> f64 {
        let k = self.protocol.k as f64;
        let c = self.protocol.c_eps;
        let ones = self.ones[j * self.protocol.m + l] as f64;
        let nj = self.row_n[j] as f64;
        k * (c / 2.0 * (2.0 * ones - nj) + 0.5 * nj)
    }

    /// Unbiased count estimate for `value`:
    /// `(m/(m−1)) · ( (1/k)·Σ_j M[j, h_j(value)] − n/m )`.
    pub fn estimate(&self, value: u64) -> f64 {
        let (k, m) = self.protocol.shape();
        let mf = m as f64;
        let mean_cell: f64 = (0..k)
            .map(|j| self.cell(j, self.protocol.bucket(j, value)))
            .sum::<f64>()
            / k as f64;
        (mf / (mf - 1.0)) * (mean_cell - self.n as f64 / mf)
    }

    /// Estimates every item in `items` (convenience for sweeps).
    pub fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        items.iter().map(|&v| self.estimate(v)).collect()
    }

    /// Scans `0..domain` and returns, in ascending value order, every
    /// `(value, estimate)` whose estimate **exceeds** `threshold` — the
    /// result a naive `(0..domain).filter(|v| estimate(v) > threshold)`
    /// scan would produce, estimates bit-identical, but without paying
    /// the full estimate for values that cannot clear the cutoff.
    ///
    /// The estimate is a fixed affine transform of the row-cell sum
    /// `S(v) = Σ_j M[j, h_j(v)]`, so `estimate(v) > threshold` is a
    /// cutoff on `S(v)`. The scan precomputes the `k × m` debiased cell
    /// table once (the per-value work drops to hash + lookup), plus each
    /// row's maximum cell and the suffix sums of those maxima; a value
    /// whose partial sum over the first rows cannot reach the cutoff
    /// even on per-row maxima is abandoned mid-scan. The bound is padded
    /// by a conservative slack covering float reassociation, so pruning
    /// never drops a true survivor; survivors finish all `k` rows, and
    /// their sum is folded in exactly [`estimate`](Self::estimate)'s
    /// operation order.
    pub fn scan_above(&self, domain: u64, threshold: f64) -> Vec<(u64, f64)> {
        let (k, m) = self.protocol.shape();
        let (kf, mf) = (k as f64, m as f64);
        let mut cells = Vec::with_capacity(k * m);
        for j in 0..k {
            for l in 0..m {
                cells.push(self.cell(j, l));
            }
        }
        // suffix_max[j] bounds Σ_{j' ≥ j} of any per-row cell choice.
        let mut suffix_max = vec![0.0f64; k + 1];
        for j in (0..k).rev() {
            let row_max = cells[j * m..(j + 1) * m]
                .iter()
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            suffix_max[j] = suffix_max[j + 1] + row_max;
        }
        // estimate > threshold  ⟺  S(v) > cutoff, up to rounding — the
        // slack keeps the row-level bound conservative; the survivor
        // test itself reruns the exact comparison.
        let cutoff = kf * (threshold * (mf - 1.0) / mf + self.n as f64 / mf);
        let slack = 1e-9 * (1.0 + cutoff.abs() + suffix_max[0].abs());

        let mut out = Vec::new();
        'values: for v in 0..domain {
            let mut sum = 0.0f64;
            for j in 0..k {
                if sum + suffix_max[j] < cutoff - slack {
                    continue 'values;
                }
                sum += cells[j * m + self.protocol.bucket(j, v)];
            }
            // Identical float pipeline to `estimate`: the cell values
            // came from the same `cell()` calls, `sum` folded them in
            // the same row order from the same 0.0.
            let e = (mf / (mf - 1.0)) * (sum / kf - self.n as f64 / mf);
            if e > threshold {
                out.push((v, e));
            }
        }
        out
    }
}

/// Combined fingerprint of a sketch's row hash functions — one 64-bit
/// word a snapshot can embed so state sketched under a *different* hash
/// family is rejected instead of silently merged into nonsense.
pub(crate) fn hashes_fingerprint(hashes: &[PairwiseHash]) -> u64 {
    hashes.iter().fold(0x6170_706c_6560_736b, |acc, h| {
        ldp_sketch::hash::mix64(acc ^ h.fingerprint())
    })
}

impl ldp_core::snapshot::StateSnapshot for CmsServer {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::APPLE_CMS_SKETCH
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, self.protocol.k as u64);
        ldp_core::wire::put_uvarint(out, self.protocol.m as u64);
        ldp_core::wire::put_f64_le(out, self.protocol.epsilon.value());
        ldp_core::wire::put_u64_le(out, hashes_fingerprint(&self.protocol.hashes));
        ldp_core::snapshot::put_count(out, self.n);
        ldp_core::snapshot::put_counts(out, &self.ones);
        ldp_core::snapshot::put_counts(out, &self.row_n);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_u64(r, self.protocol.k as u64, "CMS row count")?;
        ldp_core::snapshot::check_u64(r, self.protocol.m as u64, "CMS width")?;
        ldp_core::snapshot::check_f64(r, self.protocol.epsilon.value(), "CMS epsilon")?;
        ldp_core::snapshot::check_u64_le(
            r,
            hashes_fingerprint(&self.protocol.hashes),
            "CMS hash family",
        )?;
        let n = ldp_core::snapshot::get_count(r)?;
        let ones = ldp_core::snapshot::get_counts(r, self.ones.len(), "CMS cell counts")?;
        let row_n = ldp_core::snapshot::get_counts(r, self.row_n.len(), "CMS row totals")?;
        self.n = n;
        self.ones = ones;
        self.row_n = row_n;
        Ok(())
    }
}

/// [`CmsProtocol`] bound to an enumerable item domain `0..d`, exposing the
/// sketch as a [`FrequencyOracle`] so the sharded parallel engine
/// (`ldp_workloads::parallel`) and the cross-mechanism experiment tables
/// can drive it like any other oracle.
///
/// # Examples
/// ```
/// use ldp_apple::cms::CmsOracle;
/// use ldp_core::fo::{FoAggregator, FrequencyOracle};
/// use ldp_core::Epsilon;
/// use rand::SeedableRng;
/// let oracle = CmsOracle::new(16, 256, Epsilon::new(4.0).unwrap(), 7, 64);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let values = vec![3u64; 4000];
/// let mut agg = oracle.new_aggregator();
/// oracle.randomize_accumulate_batch(&values, &mut rng, &mut agg);
/// assert!(agg.estimate()[3] > 3000.0);
/// ```
#[derive(Debug, Clone)]
pub struct CmsOracle {
    protocol: CmsProtocol,
    domain: u64,
}

impl CmsOracle {
    /// Creates a CMS oracle: `k` rows, width `m`, deterministic hash seed,
    /// over items `0..domain`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m < 2` or `domain == 0`.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64, domain: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        Self {
            protocol: CmsProtocol::new(k, m, epsilon, seed),
            domain,
        }
    }

    /// The underlying sketch protocol.
    pub fn protocol(&self) -> &CmsProtocol {
        &self.protocol
    }
}

/// Aggregator for [`CmsOracle`]: a [`CmsServer`] plus the bound domain.
#[derive(Debug, Clone)]
pub struct CmsAggregator {
    server: CmsServer,
    domain: u64,
}

impl CmsAggregator {
    /// The underlying sketch server (for point queries beyond `0..d`).
    pub fn server(&self) -> &CmsServer {
        &self.server
    }
}

impl ldp_core::snapshot::StateSnapshot for CmsAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::APPLE_CMS
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, self.domain);
        self.server.snapshot_payload(out);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_u64(r, self.domain, "CMS oracle domain")?;
        self.server.restore_payload(r)
    }
}

impl FoAggregator for CmsAggregator {
    type Report = CmsReport;

    fn accumulate(&mut self, report: &CmsReport) {
        self.server.accumulate(report);
    }

    fn try_accumulate(&mut self, report: &CmsReport) -> ldp_core::Result<()> {
        let (k, m) = self.server.protocol.shape();
        if report.row as usize >= k || report.bits.len() != m {
            return Err(ldp_core::LdpError::Malformed(format!(
                "CMS report (row {}, width {}) does not fit the {k}x{m} sketch",
                report.row,
                report.bits.len()
            )));
        }
        self.server.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.server.reports()
    }

    fn estimate(&self) -> Vec<f64> {
        (0..self.domain).map(|v| self.server.estimate(v)).collect()
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        self.server.estimate_items(items)
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.domain, other.domain, "merge: domain mismatch");
        self.server.merge(other.server);
    }

    fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.domain != other.domain {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: CMS oracle domain mismatch".into(),
            ));
        }
        self.server.try_subtract(&other.server)
    }
}

impl FrequencyOracle for CmsOracle {
    type Report = CmsReport;
    type Aggregator = CmsAggregator;

    fn name(&self) -> &'static str {
        "CMS"
    }

    fn domain_size(&self) -> u64 {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.protocol.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> CmsReport {
        assert!(value < self.domain, "value {value} outside domain");
        self.protocol.randomize(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(CmsReport),
    {
        for &v in values {
            assert!(v < self.domain, "value {v} outside domain");
            sink(self.protocol.randomize(v, rng));
        }
    }

    /// Fused batch path: each report lands as `O(1 + m·q)` counter
    /// increments via [`CmsServer::accumulate_fused`] — no report vector,
    /// no `O(m)` scan, monomorphized RNG draws.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut CmsAggregator,
    ) {
        assert!(
            agg.server.protocol == self.protocol && agg.domain == self.domain,
            "aggregator configured for a different CMS oracle"
        );
        for &v in values {
            assert!(v < self.domain, "value {v} outside domain");
            agg.server.accumulate_fused(v, rng);
        }
    }

    fn new_aggregator(&self) -> CmsAggregator {
        CmsAggregator {
            server: self.protocol.new_server(),
            domain: self.domain,
        }
    }

    /// Sketch-noise approximation (collision + privatization leading
    /// terms); CMS has no exact closed form per true frequency `f`, so
    /// this is `f`-independent — adequate for the 5σ test tolerances and
    /// the experiment tables, and empirically validated in
    /// `crates/apple/tests/batch_identity.rs`.
    fn count_variance(&self, n: usize, _f: f64) -> f64 {
        self.protocol.approx_count_variance(n)
    }

    fn report_bits(&self) -> usize {
        // The ±1 vector is one bit per bucket, plus the row index.
        self.protocol.m
            + (self.protocol.k.max(2) as u64)
                .next_power_of_two()
                .trailing_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn flip_prob_and_ceps_consistent() {
        let p = CmsProtocol::new(4, 32, eps(2.0), 1);
        let half = 1.0f64.exp(); // e^{2/2}
        assert!((p.flip_prob() - 1.0 / (half + 1.0)).abs() < 1e-12);
        assert!((p.c_eps() - (half + 1.0) / (half - 1.0)).abs() < 1e-12);
        // c_eps = 1/(1-2*flip_prob): debias inverts the flip channel.
        assert!((p.c_eps() - 1.0 / (1.0 - 2.0 * p.flip_prob())).abs() < 1e-9);
    }

    #[test]
    fn scan_above_matches_naive_filter_bit_exactly() {
        let proto = CmsProtocol::new(8, 64, eps(3.0), 11);
        let mut rng = StdRng::seed_from_u64(23);
        let mut server = proto.new_server();
        let domain = 4096u64;
        for u in 0..5_000u64 {
            let v = if u % 3 == 0 { u % 7 } else { u % domain };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        // Thresholds spanning "keep everything" through "keep nothing";
        // each must reproduce the naive filter scan exactly, estimates
        // included.
        for threshold in [-1e6, -10.0, 0.0, 5.0, 50.0, 500.0, 1e9] {
            let fast = server.scan_above(domain, threshold);
            let naive: Vec<(u64, f64)> = (0..domain)
                .map(|v| (v, server.estimate(v)))
                .filter(|&(_, e)| e > threshold)
                .collect();
            assert_eq!(fast.len(), naive.len(), "threshold={threshold}");
            for ((va, ea), (vb, eb)) in fast.iter().zip(&naive) {
                assert_eq!(va, vb, "threshold={threshold}");
                assert_eq!(ea.to_bits(), eb.to_bits(), "threshold={threshold}");
            }
        }
        // Empty server: nothing exceeds a positive threshold.
        let empty = proto.new_server();
        assert!(empty.scan_above(domain, 0.0).is_empty());
    }

    #[test]
    fn estimates_unbiased_for_heavy_item() {
        let proto = CmsProtocol::new(16, 256, eps(4.0), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = proto.new_server();
        let n = 30_000;
        for u in 0..n {
            let v = if u % 3 == 0 {
                7u64
            } else {
                1000 + u as u64 % 5000
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        let est = server.estimate(7);
        let truth = (n as f64 / 3.0).ceil();
        assert!((est - truth).abs() < 1500.0, "est={est} truth={truth}");
        assert_eq!(server.reports(), n);
    }

    #[test]
    fn absent_items_near_zero() {
        let proto = CmsProtocol::new(8, 128, eps(4.0), 9);
        let mut rng = StdRng::seed_from_u64(11);
        let mut server = proto.new_server();
        let n = 20_000;
        for u in 0..n {
            server.accumulate(&proto.randomize(u as u64 % 50, &mut rng));
        }
        // Average over many absent items: collisions add ~n/m per cell but
        // the debias removes the mean; individual estimates are noisy.
        let absent: Vec<u64> = (1000..1100).collect();
        let ests = server.estimate_items(&absent);
        let avg = ests.iter().sum::<f64>() / ests.len() as f64;
        assert!(avg.abs() < 200.0, "avg absent estimate {avg}");
    }

    #[test]
    fn estimate_average_unbiased_over_trials() {
        let proto = CmsProtocol::new(4, 64, eps(2.0), 13);
        let truth = 500usize;
        let n = 2000usize;
        let trials = 40;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let mut server = proto.new_server();
            for u in 0..n {
                let v = if u < truth { 42u64 } else { 10_000 + u as u64 };
                server.accumulate(&proto.randomize(v, &mut rng));
            }
            sum += server.estimate(42);
        }
        let avg = sum / trials as f64;
        assert!((avg - truth as f64).abs() < 60.0, "avg={avg}");
    }

    #[test]
    fn wider_sketch_reduces_collision_error() {
        let narrow = CmsProtocol::new(4, 16, eps(4.0), 17);
        let wide = CmsProtocol::new(4, 1024, eps(4.0), 17);
        assert!(wide.approx_count_variance(10_000) < narrow.approx_count_variance(10_000));
    }

    #[test]
    fn report_into_reuses_buffer_and_matches_randomize() {
        let proto = CmsProtocol::new(4, 64, eps(2.0), 23);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut report = CmsReport::empty();
        for v in 0..200u64 {
            proto.report_into(v % 7, &mut rng_a, &mut report);
            let fresh = proto.randomize(v % 7, &mut rng_b);
            assert_eq!(report, fresh);
            assert!(report.bits.iter().all(|&b| b == 1 || b == -1));
        }
    }

    #[test]
    fn fused_accumulate_bit_identical_to_scalar() {
        let proto = CmsProtocol::new(8, 128, eps(2.0), 29);
        let values: Vec<u64> = (0..3000).map(|i| i % 40).collect();

        let mut scalar_rng = StdRng::seed_from_u64(31);
        let mut scalar = proto.new_server();
        for &v in &values {
            scalar.accumulate(&proto.randomize(v, &mut scalar_rng));
        }

        let mut fused_rng = StdRng::seed_from_u64(31);
        let mut fused = proto.new_server();
        for &v in &values {
            fused.accumulate_fused(v, &mut fused_rng);
        }

        assert_eq!(scalar.ones, fused.ones);
        assert_eq!(scalar.row_n, fused.row_n);
        assert_eq!(scalar.reports(), fused.reports());
    }

    #[test]
    fn merge_matches_sequential() {
        let proto = CmsProtocol::new(4, 32, eps(2.0), 37);
        let values: Vec<u64> = (0..1000).map(|i| i % 11).collect();
        let mut rng = StdRng::seed_from_u64(41);
        let mut a = proto.new_server();
        for &v in &values[..400] {
            a.accumulate_fused(v, &mut rng);
        }
        let mut b = proto.new_server();
        for &v in &values[400..] {
            b.accumulate_fused(v, &mut rng);
        }

        let mut rng2 = StdRng::seed_from_u64(41);
        let mut seq = proto.new_server();
        for &v in &values {
            seq.accumulate_fused(v, &mut rng2);
        }

        a.merge(b);
        assert_eq!(a.ones, seq.ones);
        assert_eq!(a.row_n, seq.row_n);
        assert_eq!(a.reports(), seq.reports());
    }

    #[test]
    #[should_panic(expected = "report width mismatch")]
    fn shape_mismatch_panics() {
        let proto = CmsProtocol::new(2, 16, eps(1.0), 0);
        let mut server = proto.new_server();
        server.accumulate(&CmsReport {
            row: 0,
            bits: vec![1; 8],
        });
    }

    #[test]
    #[should_panic(expected = "protocol mismatch")]
    fn merge_protocol_mismatch_panics() {
        let a = CmsProtocol::new(2, 16, eps(1.0), 0).new_server();
        let b = CmsProtocol::new(2, 16, eps(1.0), 1).new_server();
        let mut a = a;
        a.merge(b);
    }

    #[test]
    fn oracle_estimates_match_server() {
        let oracle = CmsOracle::new(8, 128, eps(4.0), 3, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let values: Vec<u64> = (0..8000).map(|i| i % 4).collect();
        let mut agg = oracle.new_aggregator();
        oracle.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        let est = agg.estimate();
        assert_eq!(est.len(), 16);
        for (v, &e) in est.iter().enumerate().take(4) {
            assert!((e - 2000.0).abs() < 800.0, "item {v}: {e}");
        }
        assert_eq!(agg.estimate_items(&[0, 1])[0], est[0]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn oracle_rejects_out_of_domain() {
        let oracle = CmsOracle::new(2, 16, eps(1.0), 3, 8);
        let mut rng = StdRng::seed_from_u64(0);
        FrequencyOracle::randomize(&oracle, 8, &mut rng);
    }
}
