//! Cost-model entries for the Apple sketches, registered into
//! [`CostBook`] the same way [`crate::register_mechanisms`] plugs wire
//! factories into a `Registry`.
//!
//! Variance numbers delegate to the sketches' own published formulas —
//! [`CmsProtocol::approx_count_variance`] and
//! [`HcmsProtocol::approx_count_variance`] — so the planner and the
//! estimators can never disagree. Knob tuning picks the sketch shape
//! `k×m`: width `m` drives both accuracy (variance falls monotonically
//! toward its asymptote as `m` grows) and the budgeted resources (CMS
//! frames carry `m` bits; both sketches keep `k·m` counters; HCMS
//! decodes with `k` FWHTs of size `m`), so the tuner takes the largest
//! power-of-two `m` the budgets allow, then the most rows `k` that
//! still fit.

use crate::cms::CmsProtocol;
use crate::hcms::HcmsProtocol;
use ldp_core::cost::{
    frame_bytes, uvarint_len, CostBook, CostEstimate, CostModel, QueryShape, WorkloadSpec,
    STATE_OVERHEAD_BYTES,
};
use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp_core::{LdpError, Result};

/// Widest sketch the tuner will reach for when budgets allow.
const MAX_WIDTH: u64 = 4096;
/// Most hash rows the tuner will take.
const MAX_ROWS: u64 = 16;
/// Hash seed planned descriptors carry (any fixed value works; clients
/// and server must agree, which the descriptor guarantees).
const PLANNED_SKETCH_SEED: u64 = 0x00c0_ffee_5eed_u64;

/// Registers the Apple cost entries (CMS, HCMS) into `book`.
pub fn register_cost_models(book: &mut CostBook) {
    book.register(CmsCost);
    book.register(HcmsCost);
}

/// CMS payload bytes: row varint + width varint + `m` packed bits.
fn cms_payload(k: u64, m: u64) -> u64 {
    uvarint_len(k.saturating_sub(1)) + uvarint_len(m) + m.div_ceil(8)
}

/// HCMS payload bytes: row varint + column varint + sign byte.
fn hcms_payload(k: u64, m: u64) -> u64 {
    uvarint_len(k.saturating_sub(1)) + uvarint_len(m.saturating_sub(1)) + 1
}

/// Sketch state: `k·m` eight-byte counters plus per-row totals.
fn sketch_memory(k: u64, m: u64) -> u64 {
    k * m * 8 + k * 8 + STATE_OVERHEAD_BYTES
}

/// Shared `k×m` tuner: walks `m` down from [`MAX_WIDTH`] in powers of
/// two (accuracy prefers the widest sketch), then `k` down from
/// [`MAX_ROWS`], returning the first shape within every budget.
fn tune_sketch(
    spec: &WorkloadSpec,
    payload: impl Fn(u64, u64) -> u64,
    decode: impl Fn(u64, u64) -> u64,
) -> Option<(u32, u32)> {
    let mut m = MAX_WIDTH;
    while m >= 2 {
        let frame_ok = spec
            .report_budget
            .is_none_or(|b| frame_bytes(payload(MAX_ROWS, m)) <= b);
        if frame_ok {
            let mut k = MAX_ROWS;
            while k >= 1 {
                let mem_ok = spec.memory_budget.is_none_or(|b| sketch_memory(k, m) <= b);
                let dec_ok = spec.decode_budget.is_none_or(|b| decode(k, m) <= b);
                if mem_ok && dec_ok {
                    return Some((k as u32, m as u32));
                }
                k /= 2;
            }
        }
        m /= 2;
    }
    None
}

/// `⌈log2(m)⌉` for transform decode accounting.
fn log2_ceil(m: u64) -> u64 {
    64 - m.saturating_sub(1).leading_zeros() as u64
}

/// CMS decode: `k` hash evaluations per queried item.
fn cms_decode_ops(k: u64, spec: &WorkloadSpec) -> u64 {
    k.saturating_mul(spec.queried_items())
}

/// HCMS decode: one inverse FWHT per row (`k·m·log m`), then `k` reads
/// per queried item.
fn hcms_decode_ops(k: u64, m: u64, spec: &WorkloadSpec) -> u64 {
    k.saturating_mul(m)
        .saturating_mul(log2_ceil(m))
        .saturating_add(k.saturating_mul(spec.queried_items()))
}

struct CmsCost;

impl CostModel for CmsCost {
    fn kind(&self) -> MechanismKind {
        MechanismKind::AppleCms
    }

    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>> {
        spec.validate()?;
        if matches!(spec.query_shape, QueryShape::Mean { .. }) {
            return Ok(None);
        }
        let Some((k, m)) = tune_sketch(spec, cms_payload, |k, _m| cms_decode_ops(k, spec)) else {
            return Ok(None);
        };
        Ok(Some(
            ProtocolDescriptor::builder(MechanismKind::AppleCms)
                .domain_size(spec.domain_size)
                .epsilon(spec.epsilon)
                .sketch(k, m)
                .hash_seed(PLANNED_SKETCH_SEED)
                .build()?,
        ))
    }

    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate> {
        if desc.kind() != MechanismKind::AppleCms {
            return Err(LdpError::InvalidParameter(format!(
                "CMS cost entry asked to price a {} descriptor",
                desc.kind().name()
            )));
        }
        let (k, m) = (
            u64::from(desc.sketch_rows()),
            u64::from(desc.sketch_width()),
        );
        let proto = CmsProtocol::new(
            k as usize,
            m as usize,
            desc.epsilon_checked(),
            desc.hash_seed(),
        );
        let n = usize::try_from(spec.population).unwrap_or(usize::MAX);
        Ok(CostEstimate {
            variance: proto.approx_count_variance(n),
            memory_bytes: sketch_memory(k, m),
            bytes_per_report: frame_bytes(cms_payload(k, m)),
            decode_ops: cms_decode_ops(k, spec),
            subtractive: true,
            linear_memory: false,
        })
    }
}

struct HcmsCost;

impl CostModel for HcmsCost {
    fn kind(&self) -> MechanismKind {
        MechanismKind::AppleHcms
    }

    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>> {
        spec.validate()?;
        if matches!(spec.query_shape, QueryShape::Mean { .. }) {
            return Ok(None);
        }
        let Some((k, m)) = tune_sketch(spec, hcms_payload, |k, m| hcms_decode_ops(k, m, spec))
        else {
            return Ok(None);
        };
        Ok(Some(
            ProtocolDescriptor::builder(MechanismKind::AppleHcms)
                .domain_size(spec.domain_size)
                .epsilon(spec.epsilon)
                .sketch(k, m)
                .hash_seed(PLANNED_SKETCH_SEED)
                .build()?,
        ))
    }

    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate> {
        if desc.kind() != MechanismKind::AppleHcms {
            return Err(LdpError::InvalidParameter(format!(
                "HCMS cost entry asked to price a {} descriptor",
                desc.kind().name()
            )));
        }
        let (k, m) = (
            u64::from(desc.sketch_rows()),
            u64::from(desc.sketch_width()),
        );
        let proto = HcmsProtocol::new(
            k as usize,
            m as usize,
            desc.epsilon_checked(),
            desc.hash_seed(),
        );
        let n = usize::try_from(spec.population).unwrap_or(usize::MAX);
        Ok(CostEstimate {
            variance: proto.approx_count_variance(n),
            memory_bytes: sketch_memory(k, m),
            bytes_per_report: frame_bytes(hcms_payload(k, m)),
            decode_ops: hcms_decode_ops(k, m, spec),
            subtractive: true,
            linear_memory: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> CostBook {
        let mut b = CostBook::empty();
        register_cost_models(&mut b);
        b
    }

    #[test]
    fn registers_both_sketches() {
        let b = book();
        assert!(b.get(MechanismKind::AppleCms).is_some());
        assert!(b.get(MechanismKind::AppleHcms).is_some());
    }

    #[test]
    fn unconstrained_tune_takes_the_widest_sketch() {
        let b = book();
        let spec = WorkloadSpec::new(1024, 100_000, 2.0);
        for kind in [MechanismKind::AppleCms, MechanismKind::AppleHcms] {
            let desc = b.get(kind).unwrap().tune(&spec).unwrap().unwrap();
            assert_eq!(u64::from(desc.sketch_width()), MAX_WIDTH);
            assert_eq!(u64::from(desc.sketch_rows()), MAX_ROWS);
            assert!(desc.sketch_width().is_power_of_two());
        }
    }

    #[test]
    fn report_budget_narrows_cms_but_not_hcms() {
        let b = book();
        // 64 bytes per frame: CMS must shrink m (frames carry m bits);
        // HCMS frames are a few bytes at any width.
        let spec = WorkloadSpec::new(1024, 100_000, 2.0).with_report_budget(64);
        let cms = b
            .get(MechanismKind::AppleCms)
            .unwrap()
            .tune(&spec)
            .unwrap()
            .unwrap();
        assert!(u64::from(cms.sketch_width()) < MAX_WIDTH);
        let cms_cost = b
            .get(MechanismKind::AppleCms)
            .unwrap()
            .cost(&cms, &spec)
            .unwrap();
        assert!(cms_cost.bytes_per_report <= 64);
        let hcms = b
            .get(MechanismKind::AppleHcms)
            .unwrap()
            .tune(&spec)
            .unwrap()
            .unwrap();
        assert_eq!(u64::from(hcms.sketch_width()), MAX_WIDTH);
    }

    #[test]
    fn memory_budget_shrinks_the_sketch() {
        let b = book();
        let spec = WorkloadSpec::new(1024, 100_000, 2.0).with_memory_budget(16 * 1024);
        for kind in [MechanismKind::AppleCms, MechanismKind::AppleHcms] {
            let model = b.get(kind).unwrap();
            let desc = model.tune(&spec).unwrap().unwrap();
            let cost = model.cost(&desc, &spec).unwrap();
            assert!(cost.memory_bytes <= 16 * 1024);
        }
    }

    #[test]
    fn variance_delegates_to_protocol_formula() {
        let b = book();
        let spec = WorkloadSpec::new(256, 50_000, 1.5);
        let desc = b
            .get(MechanismKind::AppleCms)
            .unwrap()
            .tune(&spec)
            .unwrap()
            .unwrap();
        let cost = b
            .get(MechanismKind::AppleCms)
            .unwrap()
            .cost(&desc, &spec)
            .unwrap();
        let proto = CmsProtocol::new(
            desc.sketch_rows() as usize,
            desc.sketch_width() as usize,
            desc.epsilon_checked(),
            desc.hash_seed(),
        );
        assert_eq!(cost.variance, proto.approx_count_variance(50_000));
    }

    #[test]
    fn mean_queries_are_declined() {
        let b = book();
        let spec =
            WorkloadSpec::new(64, 1000, 1.0).with_query_shape(QueryShape::Mean { max_value: 5.0 });
        for kind in [MechanismKind::AppleCms, MechanismKind::AppleHcms] {
            assert!(b.get(kind).unwrap().tune(&spec).unwrap().is_none());
        }
    }
}
