//! Apple's Hadamard Count-Mean Sketch (HCMS): CMS accuracy from a single
//! transmitted bit.
//!
//! The CMS report is an `m`-length vector — hundreds of bytes. HCMS
//! observes that the server only needs the sketch rows *up to an invertible
//! linear transform*, so the client can transmit one uniformly sampled
//! coordinate of the **Hadamard transform** of its one-hot row:
//!
//! * client: sample row `j ~ U[k]` and coefficient `l ~ U[m]`, compute
//!   `w = H[l, h_j(value)] ∈ {±1}` (an O(1) popcount — the matrix is never
//!   materialized), flip `w` with probability `1/(e^ε+1)`, send
//!   `(j, l, w̃)`. Note the *full* ε: exactly one coordinate changes
//!   between any two inputs in the spectrum domain, vs two in CMS — the
//!   factor the white paper highlights.
//! * server: accumulate `S[j, l] += c'_ε·w̃` with `c'_ε = (e^ε+1)/(e^ε−1)`,
//!   and at query time invert each row with one FWHT, then apply the same
//!   collision debiasing as CMS.

use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::Epsilon;
use ldp_sketch::hadamard::{fwht, hadamard_entry};
use ldp_sketch::hash::PairwiseHash;
use rand::{Rng, RngCore};

/// One HCMS report: sampled row, sampled Hadamard coefficient index, and
/// the privatized ±1 coefficient value. Three numbers; the payload bit is
/// `sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcmsReport {
    /// Sampled sketch row `j ∈ [k]`.
    pub row: u32,
    /// Sampled Hadamard coefficient `l ∈ [m]`.
    pub coeff: u32,
    /// Privatized sign `±1`.
    pub sign: i8,
}

/// The HCMS protocol parameters shared by clients and server.
#[derive(Debug, Clone, PartialEq)]
pub struct HcmsProtocol {
    k: usize,
    m: usize,
    epsilon: Epsilon,
    flip_prob: f64,
    c_eps: f64,
    hashes: Vec<PairwiseHash>,
}

impl HcmsProtocol {
    /// Creates a protocol with `k` rows and width `m` (must be a power of
    /// two for the Hadamard transform).
    ///
    /// # Panics
    /// Panics if `k == 0`, `m < 2`, or `m` is not a power of two.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash row");
        assert!(
            m >= 2 && m.is_power_of_two(),
            "m must be a power of two >= 2, got {m}"
        );
        let e = epsilon.exp();
        let hashes = (0..k)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    m as u64,
                )
            })
            .collect();
        Self {
            k,
            m,
            epsilon,
            flip_prob: 1.0 / (e + 1.0),
            c_eps: (e + 1.0) / (e - 1.0),
            hashes,
        }
    }

    /// Sketch shape `(k, m)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.m)
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The bucket `h_j(value)`.
    pub fn bucket(&self, row: usize, value: u64) -> usize {
        self.hashes[row].hash(value) as usize
    }

    /// Client side: produce the one-bit report.
    pub fn randomize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> HcmsReport {
        let row = rng.gen_range(0..self.k);
        let coeff = rng.gen_range(0..self.m);
        let bucket = self.bucket(row, value);
        let mut sign = hadamard_entry(coeff as u64, bucket as u64);
        if rng.gen_bool(self.flip_prob) {
            sign = -sign;
        }
        HcmsReport {
            row: row as u32,
            coeff: coeff as u32,
            sign,
        }
    }

    /// Creates the matching server.
    pub fn new_server(&self) -> HcmsServer {
        HcmsServer {
            protocol: self.clone(),
            spectrum: vec![0; self.k * self.m],
            n: 0,
        }
    }

    /// Approximate variance of a count estimate over `n` reports: each
    /// report contributes `±c'_ε` to the queried (debiased, transformed)
    /// mean cell, plus the same `n/m` sketch-collision term as CMS.
    /// Empirically validated in `crates/apple/tests/batch_identity.rs`.
    ///
    /// This method is the formula's single home: the planner's cost
    /// model ([`crate::cost`]) prices HCMS plans by instantiating the
    /// protocol and delegating here rather than restating the algebra.
    pub fn approx_count_variance(&self, n: usize) -> f64 {
        let nf = n as f64;
        let m = self.m as f64;
        nf * self.c_eps * self.c_eps * (m / (m - 1.0)).powi(2) + nf / m
    }
}

/// Server-side HCMS state: the running spectrum as exact integer sign
/// sums, inverted lazily at query time.
///
/// Integer counters make every accumulation path exact: scalar
/// accumulation, the monomorphized batch path and sharded
/// [`merge`](Self::merge) land on identical state for identical reports —
/// the debias constant `c'_ε` is applied once, at query time.
#[derive(Debug, Clone)]
pub struct HcmsServer {
    protocol: HcmsProtocol,
    /// Accumulated sign sums: `S[j, l] = Σ w̃` over reports that sampled
    /// `(j, l)`; the debiased spectrum is `c'_ε · S`.
    spectrum: Vec<i64>,
    n: usize,
}

impl HcmsServer {
    /// Folds one report into the spectrum.
    ///
    /// # Panics
    /// Panics if the report indices exceed the protocol shape.
    pub fn accumulate(&mut self, report: &HcmsReport) {
        let (k, m) = self.protocol.shape();
        let (row, coeff) = (report.row as usize, report.coeff as usize);
        assert!(row < k && coeff < m, "report indices out of range");
        self.spectrum[row * m + coeff] += report.sign as i64;
        self.n += 1;
    }

    /// Merges another server's sign sums into this one. Exact (integer
    /// addition), so sharded collection is bit-identical to sequential.
    ///
    /// # Panics
    /// Panics if the two servers were built from different protocols.
    pub fn merge(&mut self, other: Self) {
        assert!(
            self.protocol == other.protocol,
            "merge: protocol mismatch (shape, budget or hash family)"
        );
        for (a, b) in self.spectrum.iter_mut().zip(&other.spectrum) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Subtracts another server's sign sums from this one — the exact
    /// inverse of [`merge`](Self::merge) for retiring a window delta
    /// from a running total (integer subtraction, so the result is
    /// bit-identical to never having merged `other`).
    ///
    /// # Errors
    /// [`ldp_core::LdpError::StateMismatch`] if the protocols differ or
    /// `other` holds more reports than this state (sign sums are signed,
    /// so the report count is the only underflow sentinel).
    pub fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.protocol != other.protocol {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: HCMS protocol mismatch".into(),
            ));
        }
        if self.n < other.n {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: HCMS subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        for (a, b) in self.spectrum.iter_mut().zip(&other.spectrum) {
            *a -= b;
        }
        self.n -= other.n;
        Ok(())
    }

    /// Number of reports accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Materializes the bucket-domain sketch matrix `M[j, bucket]`
    /// (`E[M[j, b]] =` number of users whose value hashes to `b` in row
    /// `j`): one FWHT per row, scaled by `k` (row sampling) — the `m` from
    /// coefficient sampling cancels against the `1/m` of the inverse
    /// transform.
    pub fn bucket_matrix(&self) -> Vec<f64> {
        let (k, m) = self.protocol.shape();
        let mut out = vec![0.0; k * m];
        let mut row_buf = vec![0.0; m];
        for j in 0..k {
            for (dst, &s) in row_buf.iter_mut().zip(&self.spectrum[j * m..(j + 1) * m]) {
                *dst = self.protocol.c_eps * s as f64;
            }
            fwht(&mut row_buf);
            for l in 0..m {
                // k (row sampling) * m (coeff sampling) / m (inverse FWHT).
                out[j * m + l] = k as f64 * row_buf[l];
            }
        }
        out
    }

    /// Unbiased count estimate for `value` — same collision debiasing as
    /// CMS applied to the transformed matrix.
    ///
    /// Runs the full `k`-row transform sweep for this one query; when
    /// answering more than one point query against the same state, call
    /// [`decode`](Self::decode) once and query the cached matrix.
    pub fn estimate(&self, value: u64) -> f64 {
        self.decode().estimate(value)
    }

    /// Estimates many items, amortizing the per-row transforms.
    pub fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        self.estimate_iter(items.iter().copied())
    }

    /// [`estimate_items`](Self::estimate_items) over any item iterator —
    /// full-domain sweeps pass `0..d` directly, with no scratch vector
    /// of item ids (one FWHT sweep either way).
    pub fn estimate_iter(&self, items: impl IntoIterator<Item = u64>) -> Vec<f64> {
        let decoded = self.decode();
        items.into_iter().map(|v| decoded.estimate(v)).collect()
    }

    /// Runs the spectrum inversion once — `k` tiled FWHTs — and returns
    /// a decoded view that answers any number of point queries at
    /// `O(k)` hash-and-gather each, with no further transforms.
    ///
    /// This is the decode-kernel restructure: the old API shape forced
    /// `k` full transforms per [`estimate`](Self::estimate) call, so a
    /// `q`-item query batch against the same frozen state cost
    /// `q·k·m·log m`. Decoding once drops that to `k·m·log m + q·k`, and
    /// every query is bit-identical to what the per-call path returns
    /// (the cached matrix *is* that path's matrix).
    pub fn decode(&self) -> HcmsDecoded<'_> {
        HcmsDecoded {
            protocol: &self.protocol,
            matrix: self.bucket_matrix(),
            n: self.n,
        }
    }

    /// The raw accumulated sign sums `S[j, l]` (row-major `k × m`):
    /// the undebiased spectrum, exposed for frozen-baseline harnesses.
    pub fn spectrum(&self) -> &[i64] {
        &self.spectrum
    }

    /// The query-time debias constant `c'_ε = (e^ε+1)/(e^ε−1)` applied
    /// to the sign sums before inversion.
    pub fn debias_constant(&self) -> f64 {
        self.protocol.c_eps
    }
}

/// A decoded HCMS state: the bucket-domain matrix materialized by one
/// transform sweep of [`HcmsServer::decode`], answering point queries
/// without re-running any FWHT.
///
/// Borrow-tied to the server it decoded (the hash family lives there);
/// reports accumulated after `decode()` are not reflected — decode
/// again for a fresh view.
#[derive(Debug, Clone)]
pub struct HcmsDecoded<'a> {
    protocol: &'a HcmsProtocol,
    matrix: Vec<f64>,
    n: usize,
}

impl HcmsDecoded<'_> {
    /// Unbiased count estimate for `value` from the cached matrix:
    /// `k` hash-and-gather probes, one debias — no transforms.
    pub fn estimate(&self, value: u64) -> f64 {
        let (k, m) = self.protocol.shape();
        let mf = m as f64;
        let mean_cell: f64 = (0..k)
            .map(|j| self.matrix[j * m + self.protocol.bucket(j, value)])
            .sum::<f64>()
            / k as f64;
        (mf / (mf - 1.0)) * (mean_cell - self.n as f64 / mf)
    }

    /// The cached bucket-domain matrix (row-major `k × m`), as produced
    /// by [`HcmsServer::bucket_matrix`].
    pub fn bucket_matrix(&self) -> &[f64] {
        &self.matrix
    }

    /// Number of reports the decoded state summarizes.
    pub fn reports(&self) -> usize {
        self.n
    }
}

impl ldp_core::snapshot::StateSnapshot for HcmsServer {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::APPLE_HCMS_SKETCH
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, self.protocol.k as u64);
        ldp_core::wire::put_uvarint(out, self.protocol.m as u64);
        ldp_core::wire::put_f64_le(out, self.protocol.epsilon.value());
        ldp_core::wire::put_u64_le(out, crate::cms::hashes_fingerprint(&self.protocol.hashes));
        ldp_core::snapshot::put_count(out, self.n);
        ldp_core::snapshot::put_signed_counts(out, &self.spectrum);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_u64(r, self.protocol.k as u64, "HCMS row count")?;
        ldp_core::snapshot::check_u64(r, self.protocol.m as u64, "HCMS width")?;
        ldp_core::snapshot::check_f64(r, self.protocol.epsilon.value(), "HCMS epsilon")?;
        ldp_core::snapshot::check_u64_le(
            r,
            crate::cms::hashes_fingerprint(&self.protocol.hashes),
            "HCMS hash family",
        )?;
        let n = ldp_core::snapshot::get_count(r)?;
        let spectrum =
            ldp_core::snapshot::get_signed_counts(r, self.spectrum.len(), "HCMS spectrum")?;
        self.n = n;
        self.spectrum = spectrum;
        Ok(())
    }
}

/// [`HcmsProtocol`] bound to an enumerable item domain `0..d`, exposing
/// the one-bit sketch as a [`FrequencyOracle`] so the sharded parallel
/// engine (`ldp_workloads::parallel`) can drive it like any other oracle.
///
/// The batch path has nothing to fuse away allocation-wise — an
/// [`HcmsReport`] is three machine words — so its win is purely the
/// monomorphized RNG draws (`R: RngCore` instead of `dyn RngCore` per
/// draw), shared sampling core with the scalar path by construction.
#[derive(Debug, Clone)]
pub struct HcmsOracle {
    protocol: HcmsProtocol,
    domain: u64,
}

impl HcmsOracle {
    /// Creates an HCMS oracle: `k` rows, power-of-two width `m`,
    /// deterministic hash seed, over items `0..domain`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m` is not a power of two ≥ 2, or
    /// `domain == 0`.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64, domain: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        Self {
            protocol: HcmsProtocol::new(k, m, epsilon, seed),
            domain,
        }
    }

    /// The underlying sketch protocol.
    pub fn protocol(&self) -> &HcmsProtocol {
        &self.protocol
    }
}

/// Aggregator for [`HcmsOracle`]: an [`HcmsServer`] plus the bound domain.
#[derive(Debug, Clone)]
pub struct HcmsAggregator {
    server: HcmsServer,
    domain: u64,
}

impl HcmsAggregator {
    /// The underlying sketch server (for point queries beyond `0..d`).
    pub fn server(&self) -> &HcmsServer {
        &self.server
    }
}

impl ldp_core::snapshot::StateSnapshot for HcmsAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::APPLE_HCMS
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, self.domain);
        self.server.snapshot_payload(out);
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        ldp_core::snapshot::check_u64(r, self.domain, "HCMS oracle domain")?;
        self.server.restore_payload(r)
    }
}

impl FoAggregator for HcmsAggregator {
    type Report = HcmsReport;

    fn accumulate(&mut self, report: &HcmsReport) {
        self.server.accumulate(report);
    }

    fn try_accumulate(&mut self, report: &HcmsReport) -> ldp_core::Result<()> {
        let (k, m) = self.server.protocol.shape();
        if report.row as usize >= k || report.coeff as usize >= m {
            return Err(ldp_core::LdpError::Malformed(format!(
                "HCMS report (row {}, coeff {}) does not fit the {k}x{m} sketch",
                report.row, report.coeff
            )));
        }
        if report.sign != 1 && report.sign != -1 {
            return Err(ldp_core::LdpError::Malformed(format!(
                "HCMS sign must be ±1, got {}",
                report.sign
            )));
        }
        self.server.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.server.reports()
    }

    fn estimate(&self) -> Vec<f64> {
        // One FWHT sweep amortized over the whole domain.
        self.server.estimate_iter(0..self.domain)
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        self.server.estimate_items(items)
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.domain, other.domain, "merge: domain mismatch");
        self.server.merge(other.server);
    }

    fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.domain != other.domain {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: HCMS oracle domain mismatch".into(),
            ));
        }
        self.server.try_subtract(&other.server)
    }
}

impl FrequencyOracle for HcmsOracle {
    type Report = HcmsReport;
    type Aggregator = HcmsAggregator;

    fn name(&self) -> &'static str {
        "HCMS"
    }

    fn domain_size(&self) -> u64 {
        self.domain
    }

    fn epsilon(&self) -> Epsilon {
        self.protocol.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> HcmsReport {
        assert!(value < self.domain, "value {value} outside domain");
        self.protocol.randomize(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(HcmsReport),
    {
        for &v in values {
            assert!(v < self.domain, "value {v} outside domain");
            sink(self.protocol.randomize(v, rng));
        }
    }

    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut HcmsAggregator,
    ) {
        assert!(
            agg.server.protocol == self.protocol && agg.domain == self.domain,
            "aggregator configured for a different HCMS oracle"
        );
        for &v in values {
            assert!(v < self.domain, "value {v} outside domain");
            agg.server.accumulate(&self.protocol.randomize(v, rng));
        }
    }

    fn new_aggregator(&self) -> HcmsAggregator {
        HcmsAggregator {
            server: self.protocol.new_server(),
            domain: self.domain,
        }
    }

    /// Sketch-noise approximation (`f`-independent), empirically
    /// validated in `crates/apple/tests/batch_identity.rs`.
    fn count_variance(&self, n: usize, _f: f64) -> f64 {
        self.protocol.approx_count_variance(n)
    }

    fn report_bits(&self) -> usize {
        // One payload bit plus the sampled (row, coefficient) indices.
        1 + ((self.protocol.k.max(2) as u64)
            .next_power_of_two()
            .trailing_zeros()
            + (self.protocol.m as u64).trailing_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_width_panics() {
        HcmsProtocol::new(4, 48, eps(1.0), 0);
    }

    #[test]
    fn bucket_matrix_unbiased_without_noise_channel() {
        // With a huge epsilon, flips are rare: bucket matrix ~ exact counts.
        let proto = HcmsProtocol::new(2, 16, eps(12.0), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut server = proto.new_server();
        let n = 50_000;
        for _ in 0..n {
            server.accumulate(&proto.randomize(5, &mut rng));
        }
        let matrix = server.bucket_matrix();
        for j in 0..2 {
            let b = proto.bucket(j, 5);
            let cell = matrix[j * 16 + b];
            assert!(
                (cell - n as f64).abs() < n as f64 * 0.1,
                "row {j}: cell={cell}"
            );
        }
    }

    #[test]
    fn estimates_unbiased() {
        let proto = HcmsProtocol::new(8, 256, eps(4.0), 21);
        let mut rng = StdRng::seed_from_u64(23);
        let mut server = proto.new_server();
        let n = 60_000;
        for u in 0..n {
            let v = if u % 4 == 0 {
                3u64
            } else {
                500 + (u as u64 % 3000)
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        let est = server.estimate(3);
        let truth = n as f64 / 4.0;
        assert!((est - truth).abs() < 4000.0, "est={est} truth={truth}");
    }

    #[test]
    fn estimate_average_unbiased_over_trials() {
        let proto = HcmsProtocol::new(4, 64, eps(3.0), 31);
        let truth = 1000usize;
        let n = 4000usize;
        let trials = 30;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(400 + t);
            let mut server = proto.new_server();
            for u in 0..n {
                let v = if u < truth { 9u64 } else { 77_000 + u as u64 };
                server.accumulate(&proto.randomize(v, &mut rng));
            }
            sum += server.estimate(9);
        }
        let avg = sum / trials as f64;
        assert!((avg - truth as f64).abs() < 200.0, "avg={avg}");
    }

    #[test]
    fn estimate_items_matches_single_estimates() {
        let proto = HcmsProtocol::new(4, 32, eps(2.0), 41);
        let mut rng = StdRng::seed_from_u64(43);
        let mut server = proto.new_server();
        for u in 0..3000u64 {
            server.accumulate(&proto.randomize(u % 7, &mut rng));
        }
        let items = [0u64, 3, 6, 100];
        let batch = server.estimate_items(&items);
        for (i, &v) in items.iter().enumerate() {
            assert!((batch[i] - server.estimate(v)).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_matches_sequential() {
        let proto = HcmsProtocol::new(4, 64, eps(2.0), 61);
        let mut rng = StdRng::seed_from_u64(67);
        let mut a = proto.new_server();
        for u in 0..500u64 {
            a.accumulate(&proto.randomize(u % 9, &mut rng));
        }
        let mut b = proto.new_server();
        for u in 0..700u64 {
            b.accumulate(&proto.randomize(u % 9, &mut rng));
        }

        // Same draws, same values, one server: replay both halves.
        let mut rng2 = StdRng::seed_from_u64(67);
        let mut seq = proto.new_server();
        for u in 0..500u64 {
            seq.accumulate(&proto.randomize(u % 9, &mut rng2));
        }
        for u in 0..700u64 {
            seq.accumulate(&proto.randomize(u % 9, &mut rng2));
        }

        a.merge(b);
        assert_eq!(a.spectrum, seq.spectrum);
        assert_eq!(a.reports(), seq.reports());
    }

    #[test]
    fn oracle_estimates_unbiased() {
        let oracle = HcmsOracle::new(8, 256, eps(4.0), 5, 16);
        let mut rng = StdRng::seed_from_u64(71);
        let values: Vec<u64> = (0..20_000).map(|i| i % 4).collect();
        let mut agg = oracle.new_aggregator();
        oracle.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        let est = agg.estimate();
        assert_eq!(est.len(), 16);
        let sd = oracle.count_variance(values.len(), 0.25).sqrt();
        for (v, &e) in est.iter().enumerate().take(4) {
            assert!((e - 5000.0).abs() < 5.0 * sd, "item {v}: {e} (sd={sd})");
        }
    }

    #[test]
    fn decoded_queries_bit_identical_to_per_call_estimates() {
        // The cached-matrix decode must reproduce the per-call estimate
        // path to the bit — same transform output, same debias ops.
        let proto = HcmsProtocol::new(8, 128, eps(2.0), 77);
        let mut rng = StdRng::seed_from_u64(79);
        let mut server = proto.new_server();
        for u in 0..10_000u64 {
            server.accumulate(&proto.randomize(u % 50, &mut rng));
        }
        let decoded = server.decode();
        assert_eq!(decoded.reports(), server.reports());
        assert_eq!(decoded.bucket_matrix(), server.bucket_matrix().as_slice());
        for v in (0..200u64).chain([5_000_000, u64::MAX]) {
            assert_eq!(
                decoded.estimate(v).to_bits(),
                server.estimate(v).to_bits(),
                "value {v}"
            );
        }
        // And the batch path is the same queries against the same cache.
        let items: Vec<u64> = (0..200).collect();
        let batch = server.estimate_items(&items);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), decoded.estimate(v).to_bits());
        }
    }

    #[test]
    fn spectrum_accessor_exposes_sign_sums() {
        let proto = HcmsProtocol::new(2, 16, eps(1.0), 1);
        let mut server = proto.new_server();
        server.accumulate(&HcmsReport {
            row: 1,
            coeff: 3,
            sign: -1,
        });
        assert_eq!(server.spectrum()[16 + 3], -1);
        assert_eq!(server.spectrum().iter().filter(|&&s| s != 0).count(), 1);
        let e = proto.epsilon().exp();
        assert!((server.debias_constant() - (e + 1.0) / (e - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn one_bit_payload() {
        // The transmitted payload is (row, coeff, sign): the sign is the
        // only data-dependent bit.
        let proto = HcmsProtocol::new(4, 64, eps(1.0), 51);
        let mut rng = StdRng::seed_from_u64(53);
        let r = proto.randomize(0, &mut rng);
        assert!(r.sign == 1 || r.sign == -1);
    }
}
