//! Apple's Hadamard Count-Mean Sketch (HCMS): CMS accuracy from a single
//! transmitted bit.
//!
//! The CMS report is an `m`-length vector — hundreds of bytes. HCMS
//! observes that the server only needs the sketch rows *up to an invertible
//! linear transform*, so the client can transmit one uniformly sampled
//! coordinate of the **Hadamard transform** of its one-hot row:
//!
//! * client: sample row `j ~ U[k]` and coefficient `l ~ U[m]`, compute
//!   `w = H[l, h_j(value)] ∈ {±1}` (an O(1) popcount — the matrix is never
//!   materialized), flip `w` with probability `1/(e^ε+1)`, send
//!   `(j, l, w̃)`. Note the *full* ε: exactly one coordinate changes
//!   between any two inputs in the spectrum domain, vs two in CMS — the
//!   factor the white paper highlights.
//! * server: accumulate `S[j, l] += c'_ε·w̃` with `c'_ε = (e^ε+1)/(e^ε−1)`,
//!   and at query time invert each row with one FWHT, then apply the same
//!   collision debiasing as CMS.

use ldp_core::Epsilon;
use ldp_sketch::hadamard::{fwht, hadamard_entry};
use ldp_sketch::hash::PairwiseHash;
use rand::Rng;

/// One HCMS report: sampled row, sampled Hadamard coefficient index, and
/// the privatized ±1 coefficient value. Three numbers; the payload bit is
/// `sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcmsReport {
    /// Sampled sketch row `j ∈ [k]`.
    pub row: u32,
    /// Sampled Hadamard coefficient `l ∈ [m]`.
    pub coeff: u32,
    /// Privatized sign `±1`.
    pub sign: i8,
}

/// The HCMS protocol parameters shared by clients and server.
#[derive(Debug, Clone)]
pub struct HcmsProtocol {
    k: usize,
    m: usize,
    epsilon: Epsilon,
    flip_prob: f64,
    c_eps: f64,
    hashes: Vec<PairwiseHash>,
}

impl HcmsProtocol {
    /// Creates a protocol with `k` rows and width `m` (must be a power of
    /// two for the Hadamard transform).
    ///
    /// # Panics
    /// Panics if `k == 0`, `m < 2`, or `m` is not a power of two.
    pub fn new(k: usize, m: usize, epsilon: Epsilon, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash row");
        assert!(
            m >= 2 && m.is_power_of_two(),
            "m must be a power of two >= 2, got {m}"
        );
        let e = epsilon.exp();
        let hashes = (0..k)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    m as u64,
                )
            })
            .collect();
        Self {
            k,
            m,
            epsilon,
            flip_prob: 1.0 / (e + 1.0),
            c_eps: (e + 1.0) / (e - 1.0),
            hashes,
        }
    }

    /// Sketch shape `(k, m)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.m)
    }

    /// Privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The bucket `h_j(value)`.
    pub fn bucket(&self, row: usize, value: u64) -> usize {
        self.hashes[row].hash(value) as usize
    }

    /// Client side: produce the one-bit report.
    pub fn randomize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> HcmsReport {
        let row = rng.gen_range(0..self.k);
        let coeff = rng.gen_range(0..self.m);
        let bucket = self.bucket(row, value);
        let mut sign = hadamard_entry(coeff as u64, bucket as u64);
        if rng.gen_bool(self.flip_prob) {
            sign = -sign;
        }
        HcmsReport {
            row: row as u32,
            coeff: coeff as u32,
            sign,
        }
    }

    /// Creates the matching server.
    pub fn new_server(&self) -> HcmsServer {
        HcmsServer {
            protocol: self.clone(),
            spectrum: vec![0.0; self.k * self.m],
            n: 0,
        }
    }
}

/// Server-side HCMS state: the running spectrum matrix, inverted lazily at
/// query time.
#[derive(Debug, Clone)]
pub struct HcmsServer {
    protocol: HcmsProtocol,
    /// Accumulated debiased spectrum: `S[j, l] = Σ c'_ε·w̃` over reports
    /// that sampled `(j, l)`.
    spectrum: Vec<f64>,
    n: usize,
}

impl HcmsServer {
    /// Folds one report into the spectrum.
    ///
    /// # Panics
    /// Panics if the report indices exceed the protocol shape.
    pub fn accumulate(&mut self, report: &HcmsReport) {
        let (k, m) = self.protocol.shape();
        let (row, coeff) = (report.row as usize, report.coeff as usize);
        assert!(row < k && coeff < m, "report indices out of range");
        self.spectrum[row * m + coeff] += self.protocol.c_eps * report.sign as f64;
        self.n += 1;
    }

    /// Number of reports accumulated.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Materializes the bucket-domain sketch matrix `M[j, bucket]`
    /// (`E[M[j, b]] =` number of users whose value hashes to `b` in row
    /// `j`): one FWHT per row, scaled by `k` (row sampling) — the `m` from
    /// coefficient sampling cancels against the `1/m` of the inverse
    /// transform.
    pub fn bucket_matrix(&self) -> Vec<f64> {
        let (k, m) = self.protocol.shape();
        let mut out = vec![0.0; k * m];
        let mut row_buf = vec![0.0; m];
        for j in 0..k {
            row_buf.copy_from_slice(&self.spectrum[j * m..(j + 1) * m]);
            fwht(&mut row_buf);
            for l in 0..m {
                // k (row sampling) * m (coeff sampling) / m (inverse FWHT).
                out[j * m + l] = k as f64 * row_buf[l];
            }
        }
        out
    }

    /// Unbiased count estimate for `value` — same collision debiasing as
    /// CMS applied to the transformed matrix.
    pub fn estimate(&self, value: u64) -> f64 {
        let (k, m) = self.protocol.shape();
        let matrix = self.bucket_matrix();
        let mf = m as f64;
        let mean_cell: f64 = (0..k)
            .map(|j| matrix[j * m + self.protocol.bucket(j, value)])
            .sum::<f64>()
            / k as f64;
        (mf / (mf - 1.0)) * (mean_cell - self.n as f64 / mf)
    }

    /// Estimates many items, amortizing the per-row transforms.
    pub fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        let (k, m) = self.protocol.shape();
        let matrix = self.bucket_matrix();
        let mf = m as f64;
        items
            .iter()
            .map(|&v| {
                let mean_cell: f64 = (0..k)
                    .map(|j| matrix[j * m + self.protocol.bucket(j, v)])
                    .sum::<f64>()
                    / k as f64;
                (mf / (mf - 1.0)) * (mean_cell - self.n as f64 / mf)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_width_panics() {
        HcmsProtocol::new(4, 48, eps(1.0), 0);
    }

    #[test]
    fn bucket_matrix_unbiased_without_noise_channel() {
        // With a huge epsilon, flips are rare: bucket matrix ~ exact counts.
        let proto = HcmsProtocol::new(2, 16, eps(12.0), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut server = proto.new_server();
        let n = 50_000;
        for _ in 0..n {
            server.accumulate(&proto.randomize(5, &mut rng));
        }
        let matrix = server.bucket_matrix();
        for j in 0..2 {
            let b = proto.bucket(j, 5);
            let cell = matrix[j * 16 + b];
            assert!(
                (cell - n as f64).abs() < n as f64 * 0.1,
                "row {j}: cell={cell}"
            );
        }
    }

    #[test]
    fn estimates_unbiased() {
        let proto = HcmsProtocol::new(8, 256, eps(4.0), 21);
        let mut rng = StdRng::seed_from_u64(23);
        let mut server = proto.new_server();
        let n = 60_000;
        for u in 0..n {
            let v = if u % 4 == 0 {
                3u64
            } else {
                500 + (u as u64 % 3000)
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        let est = server.estimate(3);
        let truth = n as f64 / 4.0;
        assert!((est - truth).abs() < 4000.0, "est={est} truth={truth}");
    }

    #[test]
    fn estimate_average_unbiased_over_trials() {
        let proto = HcmsProtocol::new(4, 64, eps(3.0), 31);
        let truth = 1000usize;
        let n = 4000usize;
        let trials = 30;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(400 + t);
            let mut server = proto.new_server();
            for u in 0..n {
                let v = if u < truth { 9u64 } else { 77_000 + u as u64 };
                server.accumulate(&proto.randomize(v, &mut rng));
            }
            sum += server.estimate(9);
        }
        let avg = sum / trials as f64;
        assert!((avg - truth as f64).abs() < 200.0, "avg={avg}");
    }

    #[test]
    fn estimate_items_matches_single_estimates() {
        let proto = HcmsProtocol::new(4, 32, eps(2.0), 41);
        let mut rng = StdRng::seed_from_u64(43);
        let mut server = proto.new_server();
        for u in 0..3000u64 {
            server.accumulate(&proto.randomize(u % 7, &mut rng));
        }
        let items = [0u64, 3, 6, 100];
        let batch = server.estimate_items(&items);
        for (i, &v) in items.iter().enumerate() {
            assert!((batch[i] - server.estimate(v)).abs() < 1e-9);
        }
    }

    #[test]
    fn one_bit_payload() {
        // The transmitted payload is (row, coeff, sign): the sign is the
        // only data-dependent bit.
        let proto = HcmsProtocol::new(4, 64, eps(1.0), 51);
        let mut rng = StdRng::seed_from_u64(53);
        let r = proto.randomize(0, &mut rng);
        assert!(r.sign == 1 || r.sign == -1);
    }
}
