//! The cross-crate batch-engine contract for Apple's mechanisms,
//! mirroring `crates/core/tests/batch_oracles.rs`: for a given RNG seed,
//! the fused batch paths must produce **bit-identical** aggregator/sketch
//! state to the scalar randomize+accumulate loop, sharded-parallel
//! collection must equal sequential, and the estimators must stay
//! unbiased (5σ tolerances, the PR 1 convention) with variance matching
//! the documented approximations.

use ldp_apple::cms::{CmsOracle, CmsProtocol, CmsReport};
use ldp_apple::hcms::{HcmsOracle, HcmsProtocol};
use ldp_apple::sfp::{SfpConfig, SfpDiscovery};
use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::Epsilon;
use ldp_workloads::parallel::{accumulate_sharded, accumulate_sharded_sequential};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).expect("valid eps")
}

/// Builds the aggregator three ways over the same sharded population —
/// scalar loop, report-batch, fused batch — and asserts every estimate is
/// bit-identical across the three (the core-harness check, applied to the
/// cross-crate oracles).
fn check_batch_matches_scalar<O: FrequencyOracle>(oracle: &O, values: &[u64], seed: u64) {
    let split = values.len() / 3;
    let shards = [&values[..split], &values[split..]];

    let mut scalar_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        for &v in *shard {
            scalar_agg.accumulate(&oracle.randomize(v, &mut rng));
        }
    }

    let mut batch_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        oracle.randomize_batch(shard, &mut rng, |r| batch_agg.accumulate(&r));
    }

    let mut fused_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        oracle.randomize_accumulate_batch(shard, &mut rng, &mut fused_agg);
    }

    assert_eq!(scalar_agg.reports(), values.len());
    assert_eq!(batch_agg.reports(), values.len());
    assert_eq!(fused_agg.reports(), values.len());

    let scalar = scalar_agg.estimate();
    let batch = batch_agg.estimate();
    let fused = fused_agg.estimate();
    for (i, ((s, b), f)) in scalar.iter().zip(&batch).zip(&fused).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{} item {i}: batch {b} != scalar {s}",
            oracle.name()
        );
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{} item {i}: fused {f} != scalar {s}",
            oracle.name()
        );
    }
}

/// Sharded-parallel collection must be bit-identical to the sequential
/// reference for the newly wired oracles, across shard counts.
fn check_parallel_matches_sequential<O>(oracle: &O, values: &[u64])
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    for &shards in &[1usize, 3, 16] {
        let par = accumulate_sharded(oracle, values, 42, shards).estimate();
        let seq = accumulate_sharded_sequential(oracle, values, 42, shards).estimate();
        assert_eq!(par.len(), seq.len());
        for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} shards={shards} item {i}: {a} != {b}",
                oracle.name()
            );
        }
    }
}

fn population(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cms_batch_bit_identical(e in 0.5f64..6.0, k in 2usize..12, seed in 0u64..1000) {
        let d = 24u64;
        let oracle = CmsOracle::new(k, 64, eps(e), seed.wrapping_add(1), d);
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn hcms_batch_bit_identical(e in 0.5f64..6.0, k in 2usize..12, seed in 0u64..1000) {
        let d = 24u64;
        let oracle = HcmsOracle::new(k, 64, eps(e), seed.wrapping_add(1), d);
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn cms_parallel_matches_sequential(e in 0.5f64..4.0, seed in 0u64..100) {
        let oracle = CmsOracle::new(4, 32, eps(e), seed, 16);
        check_parallel_matches_sequential(&oracle, &population(2_000, 16));
    }

    #[test]
    fn hcms_parallel_matches_sequential(e in 0.5f64..4.0, seed in 0u64..100) {
        let oracle = HcmsOracle::new(4, 32, eps(e), seed, 16);
        check_parallel_matches_sequential(&oracle, &population(2_000, 16));
    }
}

/// The SFP client stage: the fused collection loop must land on exactly
/// the sketch state of the scalar per-user randomize+accumulate
/// reference, and sharded collection + merge must equal sequential.
#[test]
fn sfp_collect_bit_identical_and_mergeable() {
    let config = SfpConfig {
        word_len: 4,
        fragment_len: 2,
        epsilon: eps(6.0),
        sketch_rows: 8,
        sketch_width: 1024,
        fragments_per_position: 6,
    };
    let sfp = SfpDiscovery::new(config, 7).expect("valid config");
    let words: Vec<&[u8]> = (0..9_000)
        .map(|i| -> &[u8] {
            match i % 3 {
                0 => b"face",
                1 => b"time",
                _ => b"book",
            }
        })
        .collect();

    // Fused collection.
    let mut fused = sfp.new_collectors();
    let mut rng = StdRng::seed_from_u64(11);
    sfp.collect(&words, &mut rng, &mut fused);

    // Sharded + merged collection: same per-shard streams as two fused
    // calls — exercising SfpCollectors::merge against one sequential run
    // over the re-seeded halves.
    let mut left = sfp.new_collectors();
    let mut right = sfp.new_collectors();
    let mut rng_l = StdRng::seed_from_u64(21);
    let mut rng_r = StdRng::seed_from_u64(22);
    sfp.collect(&words[..4500], &mut rng_l, &mut left);
    sfp.collect(&words[4500..], &mut rng_r, &mut right);
    left.merge(right);

    let mut seq = sfp.new_collectors();
    let mut rng_l2 = StdRng::seed_from_u64(21);
    let mut rng_r2 = StdRng::seed_from_u64(22);
    sfp.collect(&words[..4500], &mut rng_l2, &mut seq);
    sfp.collect(&words[4500..], &mut rng_r2, &mut seq);

    assert_eq!(left.reports(), seq.reports());
    for (a, b) in left
        .fragment_servers()
        .iter()
        .zip(seq.fragment_servers())
        .chain(std::iter::once((left.word_server(), seq.word_server())))
    {
        // Sketch state compared through estimates over a probe set.
        for probe in 0..64u64 {
            assert_eq!(
                a.estimate(probe).to_bits(),
                b.estimate(probe).to_bits(),
                "probe {probe}"
            );
        }
    }

    // And the fused round still discovers the planted words.
    let found = sfp.decode(&fused);
    assert!(
        found
            .iter()
            .any(|w| w.word == "face" || w.word == "time" || w.word == "book"),
        "found: {found:?}"
    );
}

/// Scalar reference for the SFP fused loop: per-user randomize +
/// accumulate through materialized reports must give identical sketch
/// state (bit-identity across the report boundary, not just shards).
#[test]
fn sfp_fused_matches_scalar_reference() {
    let config = SfpConfig {
        word_len: 4,
        fragment_len: 2,
        epsilon: eps(4.0),
        sketch_rows: 4,
        sketch_width: 64,
        fragments_per_position: 4,
    };
    let sfp = SfpDiscovery::new(config.clone(), 13).expect("valid config");
    let words: Vec<&[u8]> = (0..600)
        .map(|i| -> &[u8] {
            if i % 2 == 0 {
                b"emoj"
            } else {
                b"word"
            }
        })
        .collect();

    let mut fused = sfp.new_collectors();
    let mut rng = StdRng::seed_from_u64(31);
    sfp.collect(&words, &mut rng, &mut fused);

    // The scalar reference reimplements the collection loop with
    // materialized CMS reports, consuming the same RNG stream.
    let positions = config.word_len / config.fragment_len;
    let half_eps = config.epsilon.split(2);
    let frag_protos: Vec<CmsProtocol> = (0..positions)
        .map(|p| {
            CmsProtocol::new(
                config.sketch_rows,
                config.sketch_width,
                half_eps,
                13u64.wrapping_add(1 + p as u64),
            )
        })
        .collect();
    let word_proto = CmsProtocol::new(config.sketch_rows, config.sketch_width, half_eps, 13);
    let mut frag_servers: Vec<_> = frag_protos.iter().map(|p| p.new_server()).collect();
    let mut word_server = word_proto.new_server();
    let mut rng2 = StdRng::seed_from_u64(31);
    let mut report = CmsReport::empty();
    for raw in &words {
        // Re-derive the submission values exactly as the client does.
        let word: Vec<u64> = raw
            .iter()
            .map(|&b| match b {
                b'a'..=b'z' => (b - b'a') as u64,
                b'0'..=b'9' => 26 + (b - b'0') as u64,
                b'.' => 36,
                b'_' => 38,
                _ => 37,
            })
            .collect();
        let bytes: Vec<u8> = word.iter().map(|&s| s as u8).collect();
        let hash = ldp_sketch_hash(&bytes);
        let puzzle = hash & 0xff;
        let pos = rng2.gen_range(0..positions);
        let frag = word[pos * config.fragment_len..(pos + 1) * config.fragment_len]
            .iter()
            .fold(0u64, |acc, &s| acc * 40 + s);
        let frag_value = frag * 256 + puzzle;
        frag_protos[pos].report_into(frag_value, &mut rng2, &mut report);
        frag_servers[pos].accumulate(&report);
        word_proto.report_into(hash, &mut rng2, &mut report);
        word_server.accumulate(&report);
    }

    for probe in 0..128u64 {
        assert_eq!(
            fused.word_server().estimate(probe).to_bits(),
            word_server.estimate(probe).to_bits(),
            "word sketch diverged at probe {probe}"
        );
    }
    for (pos, (a, b)) in fused
        .fragment_servers()
        .iter()
        .zip(&frag_servers)
        .enumerate()
    {
        for probe in 0..128u64 {
            assert_eq!(
                a.estimate(probe).to_bits(),
                b.estimate(probe).to_bits(),
                "fragment sketch {pos} diverged at probe {probe}"
            );
        }
    }
}

fn ldp_sketch_hash(bytes: &[u8]) -> u64 {
    ldp_sketch::hash::hash_bytes64(bytes)
}

/// Statistical satellite (PR 1 convention: 5σ band on the mean of
/// independent trials): the CMS estimator must be unbiased, with the
/// documented approximate variance as the yardstick.
#[test]
fn cms_estimator_unbiased_5_sigma() {
    let oracle = CmsOracle::new(8, 256, eps(2.0), 17, 32);
    let n = 4_000usize;
    let truth = 1_000usize;
    let trials = 30;
    let mut sum = 0.0;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(500 + t);
        let values: Vec<u64> = (0..n)
            .map(|u| if u < truth { 5u64 } else { 6 + (u as u64 % 20) })
            .collect();
        let mut agg = oracle.new_aggregator();
        oracle.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        sum += agg.estimate()[5];
    }
    let avg = sum / trials as f64;
    // sd of the mean of `trials` i.i.d. estimates, from the documented
    // approximate per-trial variance.
    let sd_of_mean = (oracle.count_variance(n, 0.25) / trials as f64).sqrt();
    assert!(
        (avg - truth as f64).abs() < 5.0 * sd_of_mean,
        "avg={avg} truth={truth} sd_of_mean={sd_of_mean}"
    );
}

/// Same 5σ contract for HCMS.
#[test]
fn hcms_estimator_unbiased_5_sigma() {
    let oracle = HcmsOracle::new(8, 256, eps(3.0), 19, 32);
    let n = 4_000usize;
    let truth = 1_000usize;
    let trials = 30;
    let mut sum = 0.0;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(900 + t);
        let values: Vec<u64> = (0..n)
            .map(|u| {
                if u < truth {
                    9u64
                } else {
                    10 + (u as u64 % 20)
                }
            })
            .collect();
        let mut agg = oracle.new_aggregator();
        oracle.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        sum += agg.estimate()[9];
    }
    let avg = sum / trials as f64;
    let sd_of_mean = (oracle.count_variance(n, 0.25) / trials as f64).sqrt();
    assert!(
        (avg - truth as f64).abs() < 5.0 * sd_of_mean,
        "avg={avg} truth={truth} sd_of_mean={sd_of_mean}"
    );
}

/// The documented CMS variance approximation must match the empirical
/// spread of independent estimates (it is the yardstick of the 5σ test
/// above, so an off-by-10× formula would silently weaken it).
#[test]
fn cms_variance_formula_matches_empirical() {
    let proto = CmsProtocol::new(4, 128, eps(2.0), 41);
    let n = 2_000usize;
    let trials = 300;
    let mut ests = Vec::with_capacity(trials);
    for t in 0..trials as u64 {
        let mut rng = StdRng::seed_from_u64(7000 + t);
        let mut server = proto.new_server();
        for u in 0..n {
            let v = if u % 4 == 0 {
                3u64
            } else {
                100 + u as u64 % 50
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        ests.push(server.estimate(3));
    }
    let mean = ests.iter().sum::<f64>() / trials as f64;
    let var = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
    let predicted = proto.approx_count_variance(n);
    let ratio = var / predicted;
    assert!(
        (0.5..2.0).contains(&ratio),
        "empirical var {var} vs predicted {predicted} (ratio {ratio})"
    );
}

/// The documented HCMS variance approximation must match the empirical
/// spread of independent estimates (it is the yardstick of the 5σ tests
/// above, so an off-by-10× formula would silently weaken them).
#[test]
fn hcms_variance_formula_matches_empirical() {
    let proto = HcmsProtocol::new(4, 128, eps(2.0), 23);
    let n = 2_000usize;
    let trials = 300;
    let mut ests = Vec::with_capacity(trials);
    for t in 0..trials as u64 {
        let mut rng = StdRng::seed_from_u64(3000 + t);
        let mut server = proto.new_server();
        for u in 0..n {
            // Item 3 at frequency 1/4; the rest spread thin.
            let v = if u % 4 == 0 {
                3u64
            } else {
                100 + u as u64 % 50
            };
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        ests.push(server.estimate(3));
    }
    let mean = ests.iter().sum::<f64>() / trials as f64;
    let var = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
    let predicted = proto.approx_count_variance(n);
    let ratio = var / predicted;
    assert!(
        (0.5..2.0).contains(&ratio),
        "empirical var {var} vs predicted {predicted} (ratio {ratio})"
    );
}
