//! Snapshot contract for the Apple aggregators: CMS and HCMS sketch
//! servers (through their oracle adapters) and the SFP collector set.
//! `merge(restore(snapshot(a)), b) == merge(a, b)` bit for bit, and
//! adversarial BLOBs decode to typed errors, never panics.

use ldp_apple::cms::CmsOracle;
use ldp_apple::hcms::HcmsOracle;
use ldp_apple::sfp::{SfpConfig, SfpDiscovery};
use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::snapshot::{restore_from, snapshot_vec, StateSnapshot, SNAPSHOT_VERSION};
use ldp_core::{Epsilon, LdpError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn filled<O: FrequencyOracle>(oracle: &O, n: usize, rng: &mut StdRng) -> O::Aggregator {
    let d = oracle.domain_size();
    let mut agg = oracle.new_aggregator();
    for i in 0..n {
        let r = oracle.randomize((i as u64 * i as u64) % d, rng);
        agg.accumulate(&r);
    }
    agg
}

fn check_snapshot_contract<O>(oracle: &O, n_a: usize, n_b: usize, seed: u64)
where
    O: FrequencyOracle,
    O::Aggregator: Clone,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let a = filled(oracle, n_a, &mut rng);
    let b = filled(oracle, n_b, &mut rng);

    let blob = snapshot_vec(&a);
    let mut restored = oracle.new_aggregator();
    restore_from(&mut restored, &blob).expect("well-formed snapshot restores");
    assert_eq!(snapshot_vec(&restored), blob, "restore is lossless");

    let mut via_bytes = restored;
    via_bytes.merge(b.clone());
    let mut in_process = a;
    in_process.merge(b);
    assert_eq!(snapshot_vec(&via_bytes), snapshot_vec(&in_process));
    assert_eq!(via_bytes.reports(), in_process.reports());
    for (x, y) in via_bytes
        .estimate()
        .iter()
        .zip(in_process.estimate().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "estimates must be bit-identical");
    }

    let mut fresh = oracle.new_aggregator();
    check_adversarial(&mut fresh, &blob);
}

fn check_adversarial<S: StateSnapshot>(agg: &mut S, blob: &[u8]) {
    for cut in 0..blob.len() {
        assert!(
            restore_from(agg, &blob[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }

    let mut bad = blob.to_vec();
    bad[0] = SNAPSHOT_VERSION.wrapping_add(1);
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::VersionMismatch { .. })
    ));

    let mut bad = blob.to_vec();
    bad[1] = 0xEE; // unassigned tag
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::ReportTypeMismatch { .. })
    ));

    for i in 0..blob.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = blob.to_vec();
            bad[i] ^= flip;
            let _ = restore_from(agg, &bad); // must not panic
        }
    }
}

fn sfp() -> SfpDiscovery {
    let config = SfpConfig {
        word_len: 4,
        fragment_len: 2,
        epsilon: eps(2.0),
        sketch_rows: 4,
        sketch_width: 64,
        fragments_per_position: 4,
    };
    SfpDiscovery::new(config, 7).expect("valid config")
}

const WORDS: &[&[u8]] = &[b"face", b"time", b"book", b"chat", b"maps"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cms_snapshot_contract(seed in any::<u64>(), k in 2usize..5, domain in 8u64..64) {
        let oracle = CmsOracle::new(k, 32, eps(2.0), 7, domain);
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn hcms_snapshot_contract(seed in any::<u64>(), k in 2usize..5, domain in 8u64..64) {
        let oracle = HcmsOracle::new(k, 32, eps(2.0), 7, domain);
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn sfp_snapshot_contract(seed in any::<u64>()) {
        let discovery = sfp();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = discovery.new_collectors();
        discovery.collect(WORDS, &mut rng, &mut a);
        let mut b = discovery.new_collectors();
        discovery.collect(&WORDS[..3], &mut rng, &mut b);

        let blob = snapshot_vec(&a);
        let mut restored = discovery.new_collectors();
        restore_from(&mut restored, &blob).expect("well-formed snapshot restores");
        prop_assert_eq!(snapshot_vec(&restored), blob.clone());

        let mut via_bytes = restored;
        via_bytes.merge(b.clone());
        let mut in_process = a;
        in_process.merge(b);
        prop_assert_eq!(snapshot_vec(&via_bytes), snapshot_vec(&in_process));
        prop_assert_eq!(via_bytes.reports(), in_process.reports());

        let mut fresh = discovery.new_collectors();
        check_adversarial(&mut fresh, &blob);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut cms = CmsOracle::new(2, 32, eps(2.0), 7, 16).new_aggregator();
        let _ = restore_from(&mut cms, &bytes);
        let mut hcms = HcmsOracle::new(2, 32, eps(2.0), 7, 16).new_aggregator();
        let _ = restore_from(&mut hcms, &bytes);
        let mut collectors = sfp().new_collectors();
        let _ = restore_from(&mut collectors, &bytes);
    }
}

/// Snapshots are pinned to the sketch configuration: shape, budget, hash
/// family (via fingerprint), and bound domain all have to match.
#[test]
fn cross_configuration_snapshots_are_rejected() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = filled(&CmsOracle::new(3, 32, eps(2.0), 7, 32), 100, &mut rng);
    let blob = snapshot_vec(&a);

    let mut other_seed = CmsOracle::new(3, 32, eps(2.0), 8, 32).new_aggregator();
    assert!(matches!(
        restore_from(&mut other_seed, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut other_width = CmsOracle::new(3, 64, eps(2.0), 7, 32).new_aggregator();
    assert!(matches!(
        restore_from(&mut other_width, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut other_domain = CmsOracle::new(3, 32, eps(2.0), 7, 64).new_aggregator();
    assert!(matches!(
        restore_from(&mut other_domain, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut other_eps = CmsOracle::new(3, 32, eps(1.0), 7, 32).new_aggregator();
    assert!(matches!(
        restore_from(&mut other_eps, &blob),
        Err(LdpError::StateMismatch(_))
    ));

    // A CMS aggregator BLOB is not an HCMS aggregator BLOB: the kind tag
    // is checked before any payload parsing.
    let mut hcms = HcmsOracle::new(3, 32, eps(2.0), 7, 32).new_aggregator();
    assert!(matches!(
        restore_from(&mut hcms, &blob),
        Err(LdpError::ReportTypeMismatch { .. })
    ));
}
