//! Wire round-trip and adversarial-decode properties for the Apple
//! report types, plus real randomized traffic (the distribution the
//! deployment actually emits).

use ldp_apple::cms::{CmsProtocol, CmsReport};
use ldp_apple::hcms::{HcmsProtocol, HcmsReport};
use ldp_core::wire::{decode_report, encode_report_vec, WIRE_VERSION};
use ldp_core::{Epsilon, LdpError};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_roundtrip<R>(report: &R)
where
    R: ldp_core::wire::WireReport + PartialEq + std::fmt::Debug,
{
    let frame = encode_report_vec(report);
    let back: R = decode_report(&frame).expect("well-formed frame decodes");
    assert_eq!(&back, report);
    for cut in 0..frame.len() {
        assert!(decode_report::<R>(&frame[..cut]).is_err());
    }
    let mut bad = frame.clone();
    bad[0] = WIRE_VERSION.wrapping_add(1);
    assert!(matches!(
        decode_report::<R>(&bad),
        Err(LdpError::VersionMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cms_report_roundtrips(row in 0u32..64, flips in vec(any::<bool>(), 1..128)) {
        let report = CmsReport {
            row,
            bits: flips.iter().map(|&b| if b { 1i8 } else { -1 }).collect(),
        };
        check_roundtrip(&report);
    }

    #[test]
    fn hcms_report_roundtrips(row in any::<u32>(), coeff in any::<u32>(), flip in any::<bool>()) {
        let report = HcmsReport { row, coeff, sign: if flip { 1 } else { -1 } };
        check_roundtrip(&report);
    }

    #[test]
    fn randomized_cms_traffic_roundtrips(seed in 0u64..1000, value in 0u64..256) {
        let proto = CmsProtocol::new(8, 64, Epsilon::new(2.0).expect("eps"), 7);
        let mut rng = StdRng::seed_from_u64(seed);
        check_roundtrip(&proto.randomize(value, &mut rng));
    }

    #[test]
    fn randomized_hcms_traffic_roundtrips(seed in 0u64..1000, value in 0u64..256) {
        let proto = HcmsProtocol::new(8, 64, Epsilon::new(2.0).expect("eps"), 7);
        let mut rng = StdRng::seed_from_u64(seed);
        check_roundtrip(&proto.randomize(value, &mut rng));
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let _ = decode_report::<CmsReport>(&bytes);
        let _ = decode_report::<HcmsReport>(&bytes);
    }
}
