//! Subtract-inverts-merge contract for Apple's sketch aggregators:
//! `try_subtract(merge(a, b), b)` must land on state bit-identical to
//! `a` (snapshot BLOB comparison) for the CMS and HCMS servers and the
//! composite SFP collector set, while shape/hash-family mismatches and
//! oversubtraction refuse atomically. This is what lets a sliding
//! window retire an Apple sketch delta exactly.

use ldp_apple::{CmsProtocol, HcmsProtocol, SfpConfig, SfpDiscovery};
use ldp_core::snapshot::snapshot_vec;
use ldp_core::{Epsilon, LdpError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).expect("valid eps")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cms_subtract_inverts_merge(
        e in 0.5f64..5.0, seed in 0u64..1000, n in 20usize..150, cut in 0usize..150,
    ) {
        let proto = CmsProtocol::new(8, 64, eps(e), seed ^ 0xA5);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_a = cut.min(n);
        let mut a = proto.new_server();
        let mut b = proto.new_server();
        let mut merged = proto.new_server();
        for i in 0..n {
            let report = proto.randomize(i as u64 % 32, &mut rng);
            if i < n_a { a.accumulate(&report) } else { b.accumulate(&report) }
            merged.accumulate(&report);
        }

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a);

        // Oversubtraction and a foreign hash family both refuse with the
        // minuend untouched.
        let before = snapshot_vec(&merged);
        if n_a < n {
            let mut whole = proto.new_server();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..n {
                whole.accumulate(&proto.randomize(i as u64 % 32, &mut rng));
            }
            prop_assert!(matches!(
                merged.try_subtract(&whole),
                Err(LdpError::StateMismatch(_))
            ));
        }
        let foreign = CmsProtocol::new(8, 64, eps(e), seed ^ 0x5A).new_server();
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }

    #[test]
    fn hcms_subtract_inverts_merge(
        e in 0.5f64..5.0, seed in 0u64..1000, n in 20usize..150, cut in 0usize..150,
    ) {
        let proto = HcmsProtocol::new(8, 64, eps(e), seed ^ 0xC3);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_a = cut.min(n);
        let mut a = proto.new_server();
        let mut b = proto.new_server();
        let mut merged = proto.new_server();
        for i in 0..n {
            let report = proto.randomize(i as u64 % 32, &mut rng);
            if i < n_a { a.accumulate(&report) } else { b.accumulate(&report) }
            merged.accumulate(&report);
        }

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a);

        let before = snapshot_vec(&merged);
        let foreign = HcmsProtocol::new(8, 64, eps(e), seed ^ 0x3C).new_server();
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }

    #[test]
    fn sfp_collectors_subtract_inverts_merge(seed in 0u64..500, cut in 1usize..9) {
        let config = SfpConfig {
            word_len: 4,
            fragment_len: 2,
            epsilon: eps(4.0),
            sketch_rows: 4,
            sketch_width: 128,
            fragments_per_position: 4,
        };
        let sfp = SfpDiscovery::new(config.clone(), seed ^ 0x51).unwrap();
        let words: Vec<&[u8]> = vec![
            b"tea", b"teal", b"t0-1", b"x9.z", b"cafe", b"tea", b"cafe", b"door", b"wall", b"tea",
        ];
        let (first, rest) = words.split_at(cut.min(words.len()));

        // One RNG stream across both shards, mirrored into the merged
        // run, so merged == merge(a, b) exactly.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = sfp.new_collectors();
        sfp.collect(first, &mut rng, &mut a);
        let mut b = sfp.new_collectors();
        sfp.collect(rest, &mut rng, &mut b);
        let mut merged = a.clone();
        merged.merge(b.clone());

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), first.len());

        // A mismatched subtrahend (different sketch seed) refuses with
        // every fragment sketch and the word sketch untouched.
        let before = snapshot_vec(&merged);
        let foreign = SfpDiscovery::new(config, seed ^ 0x15).unwrap().new_collectors();
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }
}
