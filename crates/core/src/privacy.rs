//! The ε-LDP privacy model as types: validated privacy parameters and
//! budget accounting under sequential composition.
//!
//! The tutorial's §1.1 introduces local differential privacy as the special
//! case of differential privacy where each user's randomizer must satisfy
//! the `e^ε` likelihood-ratio bound *on its own*, with no trusted curator.
//! Two practical consequences drive the API here:
//!
//! 1. **ε is a resource.** Deployed systems (Apple most visibly) meter a
//!    per-user, per-period budget and split it across collections.
//!    [`PrivacyBudget`] makes the split explicit and refuses overdrafts.
//! 2. **Composition is sequential and additive.** If a user answers two
//!    queries with ε₁- and ε₂-LDP randomizers over the same datum, the pair
//!    is (ε₁+ε₂)-LDP. That is the only composition rule this crate relies
//!    on; fancier accounting (Rényi etc.) is out of scope for the tutorial.

use crate::Error;

/// A validated privacy parameter: positive and finite.
///
/// Wrapping ε in a type kills the most common LDP implementation bug —
/// passing a probability, a half-budget, or a zero where ε was expected —
/// at construction time rather than in a statistics anomaly weeks later.
///
/// # Examples
/// ```
/// use ldp_core::Epsilon;
/// let eps = Epsilon::new(std::f64::consts::LN_2).unwrap();
/// assert!((eps.exp() - 2.0).abs() < 1e-12); // e^ε = 2
/// assert!(Epsilon::new(0.0).is_err());
/// assert!(Epsilon::new(f64::INFINITY).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps an ε value.
    ///
    /// # Errors
    /// Returns [`Error::InvalidEpsilon`] unless `0 < value < ∞`.
    pub fn new(value: f64) -> Result<Self, Error> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(Error::InvalidEpsilon(value))
        }
    }

    /// The raw ε.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// `e^ε`, the likelihood-ratio bound.
    #[inline]
    pub fn exp(&self) -> f64 {
        self.0.exp()
    }

    /// Splits the budget into `parts` equal shares (for protocols that
    /// spend ε across several sub-reports, like SUE's per-bit flips or
    /// multi-round protocols).
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn split(&self, parts: u32) -> Epsilon {
        assert!(parts > 0, "cannot split into zero parts");
        Epsilon(self.0 / parts as f64)
    }

    /// Scales the budget by `fraction` ∈ (0, 1].
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if the fraction is outside (0, 1].
    pub fn fraction(&self, fraction: f64) -> Result<Epsilon, Error> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "fraction must be in (0, 1], got {fraction}"
            )));
        }
        Ok(Epsilon(self.0 * fraction))
    }

    /// Sequential composition: the budget consumed by running this
    /// mechanism and then `other` on the same datum.
    pub fn compose(&self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// A per-user privacy budget metered under sequential composition.
///
/// Mirrors how deployed systems account for privacy loss: a total per-period
/// allowance from which each collection event draws. Draws that would
/// overdraw fail loudly instead of silently degrading the guarantee.
///
/// # Examples
/// ```
/// use ldp_core::{Epsilon, PrivacyBudget};
/// let mut budget = PrivacyBudget::new(Epsilon::new(4.0).unwrap());
/// let e1 = budget.draw(1.5).unwrap();
/// let e2 = budget.draw(1.5).unwrap();
/// assert!(budget.draw(1.5).is_err());        // only 1.0 left
/// assert_eq!(budget.spent(), e1.value() + e2.value());
/// ```
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget with the given total allowance.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
        }
    }

    /// Attempts to draw `amount` of ε from the budget.
    ///
    /// # Errors
    /// [`Error::InvalidEpsilon`] if `amount` is not positive/finite;
    /// [`Error::BudgetExhausted`] if the remaining budget is insufficient
    /// (within a 1e-9 tolerance for floating-point splits).
    pub fn draw(&mut self, amount: f64) -> Result<Epsilon, Error> {
        let eps = Epsilon::new(amount)?;
        let remaining = self.remaining();
        if amount > remaining + 1e-9 {
            return Err(Error::BudgetExhausted {
                requested: amount,
                remaining,
            });
        }
        self.spent += amount;
        Ok(eps)
    }

    /// Draws an equal share of the *remaining* budget for each of `parts`
    /// future collections.
    ///
    /// # Errors
    /// Propagates [`Error::BudgetExhausted`] / [`Error::InvalidEpsilon`] from
    /// the underlying draw (e.g. if the budget is already fully spent).
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn draw_share(&mut self, parts: u32) -> Result<Epsilon, Error> {
        assert!(parts > 0, "cannot draw a zero-way share");
        let share = self.remaining() / parts as f64;
        self.draw(share)
    }

    /// Returns `amount` of previously drawn ε to the budget — the
    /// accounting inverse of [`draw`](Self::draw), for *rolling-horizon*
    /// composition: when privacy loss is accounted over a sliding period
    /// (Apple's per-day budget, the windowed longitudinal ledger in
    /// `ldp_workloads::window`), a charge whose collection event has
    /// aged out of the period stops counting against the allowance.
    ///
    /// This changes bookkeeping only — it does not, and cannot, undo the
    /// disclosure itself. Releasing is sound exactly when the guarantee
    /// being enforced is "at most ε_total spent within any one period",
    /// which is the contract of every deployed per-period budget.
    ///
    /// # Errors
    /// [`Error::InvalidEpsilon`] if `amount` is not positive/finite;
    /// [`Error::InvalidParameter`] if `amount` exceeds what was actually
    /// drawn (within the same 1e-9 tolerance as [`draw`](Self::draw)) —
    /// the budget is unchanged on error.
    pub fn release(&mut self, amount: f64) -> Result<(), Error> {
        Epsilon::new(amount)?;
        if amount > self.spent + 1e-9 {
            return Err(Error::InvalidParameter(format!(
                "release of {amount} exceeds spent budget {}",
                self.spent
            )));
        }
        self.spent = (self.spent - amount).max(0.0);
        Ok(())
    }

    /// Total allowance.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// True if at least `amount` remains.
    pub fn can_afford(&self, amount: f64) -> bool {
        amount <= self.remaining() + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_rejects_bad_values() {
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(1e-9).is_ok());
        assert!(Epsilon::new(20.0).is_ok());
    }

    #[test]
    fn split_and_compose_are_inverse() {
        let eps = Epsilon::new(2.0).unwrap();
        let half = eps.split(2);
        assert!((half.value() - 1.0).abs() < 1e-12);
        let back = half.compose(half);
        assert!((back.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_validates() {
        let eps = Epsilon::new(2.0).unwrap();
        assert!(eps.fraction(0.0).is_err());
        assert!(eps.fraction(1.1).is_err());
        assert!((eps.fraction(0.25).unwrap().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn budget_accounting() {
        let mut b = PrivacyBudget::new(Epsilon::new(1.0).unwrap());
        assert!(b.can_afford(1.0));
        b.draw(0.4).unwrap();
        assert!((b.remaining() - 0.6).abs() < 1e-12);
        assert!(!b.can_afford(0.7));
        let err = b.draw(0.7).unwrap_err();
        match err {
            Error::BudgetExhausted {
                requested,
                remaining,
            } => {
                assert!((requested - 0.7).abs() < 1e-12);
                assert!((remaining - 0.6).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Failed draws must not consume budget.
        assert!((b.remaining() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn draw_share_divides_remaining() {
        let mut b = PrivacyBudget::new(Epsilon::new(3.0).unwrap());
        b.draw(1.0).unwrap();
        let share = b.draw_share(2).unwrap();
        assert!((share.value() - 1.0).abs() < 1e-12);
        assert!((b.remaining() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn release_is_draw_inverse_and_bounded() {
        let mut b = PrivacyBudget::new(Epsilon::new(2.0).unwrap());
        b.draw(1.5).unwrap();
        b.release(0.5).unwrap();
        assert!((b.spent() - 1.0).abs() < 1e-12);
        assert!((b.remaining() - 1.0).abs() < 1e-12);
        // Cannot hand back more than was drawn.
        assert!(b.release(1.5).is_err());
        assert!((b.spent() - 1.0).abs() < 1e-12);
        // A released share is drawable again.
        b.draw(1.0).unwrap();
        assert!(b.draw(0.1).is_err());
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut b = PrivacyBudget::new(Epsilon::new(1.0).unwrap());
        b.draw(0.5).unwrap();
        b.draw(0.5).unwrap();
        assert!(b.remaining() < 1e-12);
        assert!(b.draw(0.01).is_err());
    }
}
