//! Randomized response: the fifty-year-old idea the tutorial opens with.
//!
//! Warner (JASA 1965) proposed masking a sensitive yes/no answer by tossing
//! a biased coin: answer truthfully with probability `p`, lie with
//! probability `1−p`. With `p = e^ε/(e^ε+1)` this is exactly ε-LDP, and the
//! aggregator can invert the known bias to recover the population
//! proportion — unbiased, with variance `p(1−p)/(n(2p−1)²)`.
//!
//! [`BinaryRandomizedResponse`] is the single-bit mechanism;
//! [`KaryRandomizedResponse`] is the k-ary generalization (a.k.a. direct
//! encoding / generalized randomized response), which keeps the true value
//! with probability `e^ε/(e^ε+k−1)` and otherwise reports a uniformly
//! random *other* value.

use crate::privacy::Epsilon;
use crate::{Error, Result};
use rand::Rng;

/// Warner's randomized response over a single bit.
///
/// # Examples
/// ```
/// use ldp_core::rr::BinaryRandomizedResponse;
/// use ldp_core::Epsilon;
/// use rand::SeedableRng;
///
/// let rr = BinaryRandomizedResponse::new(Epsilon::new(1.0).unwrap());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// // 10k users, 30% of whom hold `true`.
/// let reports: Vec<bool> =
///     (0..10_000).map(|i| rr.randomize(i % 10 < 3, &mut rng)).collect();
/// let ones = reports.iter().filter(|&&b| b).count();
/// let est = rr.estimate_proportion(ones, reports.len());
/// assert!((est - 0.3).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BinaryRandomizedResponse {
    epsilon: Epsilon,
    /// Probability of answering truthfully: `e^ε/(e^ε+1)`.
    p_truth: f64,
}

impl BinaryRandomizedResponse {
    /// Creates the mechanism with truth probability `e^ε/(e^ε+1)`.
    pub fn new(epsilon: Epsilon) -> Self {
        let e = epsilon.exp();
        Self {
            epsilon,
            p_truth: e / (e + 1.0),
        }
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Probability of reporting the true bit.
    pub fn p_truth(&self) -> f64 {
        self.p_truth
    }

    /// Client side: perturbs one bit.
    pub fn randomize<R: Rng + ?Sized>(&self, value: bool, rng: &mut R) -> bool {
        if rng.gen_bool(self.p_truth) {
            value
        } else {
            !value
        }
    }

    /// Server side: unbiased estimate of the true proportion of `true`
    /// from the observed count of `true` reports.
    ///
    /// `π̂ = (observed/n − (1−p)) / (2p − 1)`; the estimate may fall outside
    /// `[0,1]` for small `n` — by design, since clamping would bias it.
    ///
    /// # Panics
    /// Panics if `n == 0` or `ones > n`.
    pub fn estimate_proportion(&self, ones: usize, n: usize) -> f64 {
        assert!(n > 0, "cannot estimate from zero reports");
        assert!(ones <= n, "ones={ones} exceeds n={n}");
        let p = self.p_truth;
        (ones as f64 / n as f64 - (1.0 - p)) / (2.0 * p - 1.0)
    }

    /// Warner's variance of
    /// [`estimate_proportion`](Self::estimate_proportion) when the true
    /// proportion is `pi`: `Var = λ(1−λ) / (n(2p−1)²)` with
    /// `λ = pi(2p−1) + 1 − p` the probability a report reads `true`.
    ///
    /// This is the *survey-sampling* variance: it treats each respondent's
    /// true bit as itself drawn Bernoulli(`pi`). For a **fixed** population
    /// (the usual LDP deployment view), use
    /// [`conditional_variance`](Self::conditional_variance), which is
    /// smaller by exactly the population-sampling term `pi(1−pi)/n`.
    pub fn estimator_variance(&self, pi: f64, n: usize) -> f64 {
        let p = self.p_truth;
        let lambda = pi * (2.0 * p - 1.0) + (1.0 - p);
        lambda * (1.0 - lambda) / (n as f64 * (2.0 * p - 1.0).powi(2))
    }

    /// Variance of the proportion estimate *conditioned on a fixed
    /// population*: each report is Bernoulli with success probability `p`
    /// or `1−p`, and `p(1−p)` is the same for both, so
    /// `Var = p(1−p)/(n(2p−1)²)` — independent of the true proportion.
    pub fn conditional_variance(&self, n: usize) -> f64 {
        let p = self.p_truth;
        p * (1.0 - p) / (n as f64 * (2.0 * p - 1.0).powi(2))
    }

    /// Worst-case (pi = ½) standard deviation of the proportion estimate —
    /// the `(e^ε+1)/(e^ε−1) · 1/(2√n)` rule of thumb the tutorial derives.
    pub fn worst_case_std(&self, n: usize) -> f64 {
        self.estimator_variance(0.5, n).sqrt()
    }
}

/// K-ary (generalized) randomized response / direct encoding.
///
/// Keeps the true value with `p = e^ε/(e^ε+k−1)` and otherwise reports one
/// of the `k−1` other values uniformly (`q = 1/(e^ε+k−1)` each). The
/// likelihood ratio of any output under any two inputs is exactly
/// `p/q = e^ε`.
#[derive(Debug, Clone, Copy)]
pub struct KaryRandomizedResponse {
    k: u64,
    epsilon: Epsilon,
    p: f64,
    q: f64,
}

impl KaryRandomizedResponse {
    /// Creates the mechanism over a domain `{0, …, k−1}`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `k < 2`.
    pub fn new(k: u64, epsilon: Epsilon) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidDomain(format!(
                "k-ary randomized response needs k >= 2, got {k}"
            )));
        }
        let e = epsilon.exp();
        Ok(Self {
            k,
            epsilon,
            p: e / (e + k as f64 - 1.0),
            q: 1.0 / (e + k as f64 - 1.0),
        })
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any particular *other* value.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Client side: perturbs a value in `{0, …, k−1}`.
    ///
    /// # Panics
    /// Panics if `value >= k`.
    pub fn randomize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> u64 {
        assert!(
            value < self.k,
            "value {value} outside domain of size {}",
            self.k
        );
        if rng.gen_bool(self.p) {
            value
        } else {
            // Uniform over the other k-1 values: draw from [0, k-1) and
            // shift past the true value.
            let r = rng.gen_range(0..self.k - 1);
            if r >= value {
                r + 1
            } else {
                r
            }
        }
    }

    /// Server side: unbiased count estimate for value `v` from the observed
    /// report histogram.
    ///
    /// `ĉ_v = (obs_v − n·q) / (p − q)`.
    ///
    /// # Panics
    /// Panics if `observed.len() != k`.
    pub fn estimate_counts(&self, observed: &[u64]) -> Vec<f64> {
        assert_eq!(observed.len() as u64, self.k, "histogram length mismatch");
        let n: u64 = observed.iter().sum();
        observed
            .iter()
            .map(|&o| (o as f64 - n as f64 * self.q) / (self.p - self.q))
            .collect()
    }

    /// Closed-form variance of the count estimate for an item with true
    /// frequency `f` (fraction of `n`): Wang et al.'s
    /// `n·q(1−q)/(p−q)² + n·f·(1−p−q)/(p−q)`.
    pub fn count_variance(&self, n: usize, f: f64) -> f64 {
        let (p, q) = (self.p, self.q);
        n as f64 * q * (1.0 - q) / (p - q).powi(2) + n as f64 * f * (1.0 - p - q) / (p - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn binary_truth_probability_matches_ldp() {
        let rr = BinaryRandomizedResponse::new(eps(std::f64::consts::LN_2));
        // e^eps = 2 -> p = 2/3
        assert!((rr.p_truth() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binary_estimate_unbiased() {
        let rr = BinaryRandomizedResponse::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let true_pi = 0.2;
        let mut avg = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let ones = (0..n)
                .filter(|&i| rr.randomize((i as f64 / n as f64) < true_pi, &mut rng))
                .count();
            avg += rr.estimate_proportion(ones, n);
        }
        avg /= trials as f64;
        assert!((avg - true_pi).abs() < 0.01, "avg={avg}");
    }

    #[test]
    fn binary_empirical_variance_matches_formula() {
        let rr = BinaryRandomizedResponse::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(13);
        let n = 2_000;
        let pi = 0.3;
        let trials = 3_000;
        let ests: Vec<f64> = (0..trials)
            .map(|_| {
                let ones = (0..n)
                    .filter(|&i| rr.randomize((i as f64) < pi * n as f64, &mut rng))
                    .count();
                rr.estimate_proportion(ones, n)
            })
            .collect();
        let mean: f64 = ests.iter().sum::<f64>() / trials as f64;
        let var: f64 = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / trials as f64;
        // Fixed population -> conditional variance applies.
        let predicted = rr.conditional_variance(n);
        assert!(
            (var - predicted).abs() / predicted < 0.15,
            "var={var} predicted={predicted}"
        );
        // And Warner's unconditional variance upper-bounds it.
        assert!(rr.estimator_variance(pi, n) >= predicted);
    }

    #[test]
    fn binary_likelihood_ratio_bounded() {
        // Empirically: Pr[report=1 | true] / Pr[report=1 | false] <= e^eps.
        let e = 0.8;
        let rr = BinaryRandomizedResponse::new(eps(e));
        let mut rng = StdRng::seed_from_u64(17);
        let n = 400_000;
        let ones_given_true =
            (0..n).filter(|_| rr.randomize(true, &mut rng)).count() as f64 / n as f64;
        let ones_given_false =
            (0..n).filter(|_| rr.randomize(false, &mut rng)).count() as f64 / n as f64;
        let ratio = ones_given_true / ones_given_false;
        assert!(ratio <= e.exp() * 1.05, "ratio={ratio}");
        assert!(
            ratio >= e.exp() * 0.95,
            "RR should saturate the bound: {ratio}"
        );
    }

    #[test]
    fn kary_rejects_tiny_domain() {
        assert!(KaryRandomizedResponse::new(1, eps(1.0)).is_err());
        assert!(KaryRandomizedResponse::new(2, eps(1.0)).is_ok());
    }

    #[test]
    fn kary_p_over_q_is_exp_eps() {
        for &k in &[2u64, 5, 100] {
            for &e in &[0.5, 1.0, 3.0] {
                let m = KaryRandomizedResponse::new(k, eps(e)).unwrap();
                assert!((m.p() / m.q() - e.exp()).abs() < 1e-9);
                // p + (k-1) q = 1: it's a distribution.
                assert!((m.p() + (k - 1) as f64 * m.q() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kary_estimates_unbiased() {
        let k = 8u64;
        let m = KaryRandomizedResponse::new(k, eps(1.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 80_000usize;
        // True distribution: item i has weight proportional to i+1.
        let total_w: u64 = (1..=k).sum();
        let mut observed = vec![0u64; k as usize];
        for u in 0..n {
            // Deterministic assignment matching the weights.
            let mut v = 0u64;
            let mut acc = 0u64;
            let target = (u as u64 * total_w / n as u64).min(total_w - 1);
            for i in 0..k {
                acc += i + 1;
                if target < acc {
                    v = i;
                    break;
                }
            }
            observed[m.randomize(v, &mut rng) as usize] += 1;
        }
        let est = m.estimate_counts(&observed);
        for (i, &e) in est.iter().enumerate().take(k as usize) {
            let truth = n as f64 * (i + 1) as f64 / total_w as f64;
            let sd = m.count_variance(n, truth / n as f64).sqrt();
            assert!(
                (e - truth).abs() < 5.0 * sd,
                "item {i}: est={e} truth={truth} sd={sd}"
            );
        }
    }

    #[test]
    fn kary_randomize_covers_domain() {
        let m = KaryRandomizedResponse::new(4, eps(0.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[m.randomize(0, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "low eps should cover all outputs");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn kary_out_of_domain_panics() {
        let m = KaryRandomizedResponse::new(4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        m.randomize(4, &mut rng);
    }

    #[test]
    fn worst_case_std_shrinks_with_n() {
        let rr = BinaryRandomizedResponse::new(eps(1.0));
        assert!(rr.worst_case_std(10_000) < rr.worst_case_std(100));
        // ~ 1/sqrt(n) scaling
        let ratio = rr.worst_case_std(100) / rr.worst_case_std(10_000);
        assert!((ratio - 10.0).abs() < 0.5);
    }
}
