//! Noise primitives: Laplace and two-sided (discrete) geometric samplers.
//!
//! The Laplace distribution is the workhorse of both central DP (§1.5 of the
//! tutorial) and of histogram-encoding frequency oracles (SHE/THE), where
//! each client adds `Lap(2/ε)` to every coordinate of a one-hot vector. The
//! two-sided geometric distribution is its integer analogue, used when
//! reports must be integral.

use rand::Rng;

/// Samples `Lap(0, scale)` — density `f(x) = exp(−|x|/scale) / (2·scale)`.
///
/// Uses inverse-CDF sampling: with `u ~ Uniform(−½, ½)`,
/// `x = −scale · sgn(u) · ln(1 − 2|u|)`.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = ldp_core::noise::sample_laplace(1.0, &mut rng);
/// assert!(x.is_finite());
/// ```
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be positive, got {scale}"
    );
    // u in (-0.5, 0.5]; gen::<f64>() is in [0, 1).
    let u: f64 = 0.5 - rng.gen::<f64>();
    let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln() * scale;
    if u >= 0.0 {
        magnitude
    } else {
        -magnitude
    }
}

/// Samples the two-sided geometric distribution with parameter
/// `alpha = exp(−1/scale)`:
/// `Pr[X = k] = (1−α)/(1+α) · α^{|k|}` for integer `k`.
///
/// This is the discrete analogue of `Lap(scale)`; adding it to integer
/// counts with sensitivity 1 gives `(1/scale)`-DP in the central model.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> i64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be positive, got {scale}"
    );
    let alpha = (-1.0 / scale).exp();
    // Sample sign and magnitude: magnitude ~ Geometric over {0,1,2,...}
    // conditioned appropriately. Direct inverse-CDF on the two-sided CDF:
    let u: f64 = rng.gen::<f64>(); // [0,1)
                                   // CDF for k >= 0: F(k) = 1 - alpha^{k+1}/(1+alpha)
                                   // and for k < 0:  F(k) = alpha^{-k}/(1+alpha)
    let p_neg = alpha / (1.0 + alpha); // Pr[X < 0] = alpha/(1+alpha)
    if u < p_neg {
        // negative side: find smallest m >= 1 with alpha^m/(1+alpha) <= u
        // alpha^m <= u (1+alpha)  =>  m >= ln(u(1+alpha))/ln(alpha)
        let m = (u * (1.0 + alpha)).ln() / alpha.ln();
        -(m.floor() as i64).max(1)
    } else {
        // nonnegative side: 1 - alpha^{k+1}/(1+alpha) >= u
        // alpha^{k+1} <= (1-u)(1+alpha) => k+1 >= ln((1-u)(1+alpha))/ln(alpha)
        let k1 = ((1.0 - u).max(f64::MIN_POSITIVE) * (1.0 + alpha)).ln() / alpha.ln();
        (k1.ceil() as i64 - 1).max(0)
    }
}

/// The variance of `Lap(scale)`: `2·scale²`.
#[inline]
pub fn laplace_variance(scale: f64) -> f64 {
    2.0 * scale * scale
}

/// The variance of the two-sided geometric with parameter
/// `alpha = exp(−1/scale)`: `2α/(1−α)²`.
#[inline]
pub fn two_sided_geometric_variance(scale: f64) -> f64 {
    let alpha = (-1.0 / scale).exp();
    2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let scale = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(scale, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        let expected = laplace_variance(scale);
        assert!((var - expected).abs() / expected < 0.05, "var={var}");
    }

    #[test]
    fn laplace_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let pos = (0..100_000)
            .filter(|_| sample_laplace(1.0, &mut rng) > 0.0)
            .count();
        assert!((pos as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn geometric_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 200_000;
        let scale = 1.5;
        let samples: Vec<i64> = (0..n)
            .map(|_| sample_two_sided_geometric(scale, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        let expected = two_sided_geometric_variance(scale);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "var={var} vs {expected}"
        );
    }

    #[test]
    fn geometric_pmf_shape() {
        // Pr[X=0] should be the mode and ≈ (1-α)/(1+α).
        let mut rng = StdRng::seed_from_u64(7);
        let scale = 1.0;
        let alpha = (-1.0f64 / scale).exp();
        let n = 100_000;
        let zeros = (0..n)
            .filter(|_| sample_two_sided_geometric(scale, &mut rng) == 0)
            .count();
        let expected = (1.0 - alpha) / (1.0 + alpha);
        let got = zeros as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "got={got} expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn laplace_rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_laplace(0.0, &mut rng);
    }
}
