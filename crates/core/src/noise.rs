//! Noise primitives: Laplace and two-sided (discrete) geometric samplers.
//!
//! The Laplace distribution is the workhorse of both central DP (§1.5 of the
//! tutorial) and of histogram-encoding frequency oracles (SHE/THE), where
//! each client adds `Lap(2/ε)` to every coordinate of a one-hot vector. The
//! two-sided geometric distribution is its integer analogue, used when
//! reports must be integral.

use rand::Rng;

/// Samples `Lap(0, scale)` — density `f(x) = exp(−|x|/scale) / (2·scale)`.
///
/// Uses inverse-CDF sampling: with `u ~ Uniform(−½, ½)`,
/// `x = −scale · sgn(u) · ln(1 − 2|u|)`.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = ldp_core::noise::sample_laplace(1.0, &mut rng);
/// assert!(x.is_finite());
/// ```
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be positive, got {scale}"
    );
    // u in (-0.5, 0.5]; gen::<f64>() is in [0, 1).
    let u: f64 = 0.5 - rng.gen::<f64>();
    let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln() * scale;
    if u >= 0.0 {
        magnitude
    } else {
        -magnitude
    }
}

/// Samples the two-sided geometric distribution with parameter
/// `alpha = exp(−1/scale)`:
/// `Pr[X = k] = (1−α)/(1+α) · α^{|k|}` for integer `k`.
///
/// This is the discrete analogue of `Lap(scale)`; adding it to integer
/// counts with sensitivity 1 gives `(1/scale)`-DP in the central model.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> i64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be positive, got {scale}"
    );
    let alpha = (-1.0 / scale).exp();
    // Sample sign and magnitude: magnitude ~ Geometric over {0,1,2,...}
    // conditioned appropriately. Direct inverse-CDF on the two-sided CDF:
    let u: f64 = rng.gen::<f64>(); // [0,1)
                                   // CDF for k >= 0: F(k) = 1 - alpha^{k+1}/(1+alpha)
                                   // and for k < 0:  F(k) = alpha^{-k}/(1+alpha)
    let p_neg = alpha / (1.0 + alpha); // Pr[X < 0] = alpha/(1+alpha)
    if u < p_neg {
        // negative side: find smallest m >= 1 with alpha^m/(1+alpha) <= u
        // alpha^m <= u (1+alpha)  =>  m >= ln(u(1+alpha))/ln(alpha)
        let m = (u * (1.0 + alpha)).ln() / alpha.ln();
        -(m.floor() as i64).max(1)
    } else {
        // nonnegative side: 1 - alpha^{k+1}/(1+alpha) >= u
        // alpha^{k+1} <= (1-u)(1+alpha) => k+1 >= ln((1-u)(1+alpha))/ln(alpha)
        let k1 = ((1.0 - u).max(f64::MIN_POSITIVE) * (1.0 + alpha)).ln() / alpha.ln();
        (k1.ceil() as i64 - 1).max(0)
    }
}

/// Fills `out` with independent `Lap(0, scale)` samples in two passes:
/// one sequential uniform block (the only RNG-serialized part), then a
/// branchless inverse-CDF transform over the whole block.
///
/// The scalar [`sample_laplace`] interleaves an RNG call, an `abs`/sign
/// branch, and a libm `ln` per draw — `d` serial round trips per SHE
/// report. Here the transform pass has no cross-iteration dependence and
/// no branches (sign via `copysign`, the log via [`fast_ln`], a
/// branch-free polynomial), so the compiler can unroll and vectorize it.
///
/// Distribution-equivalent to [`sample_laplace`] (same inverse-CDF map;
/// `fast_ln` agrees with libm `ln` to ~1 ulp·10², far below the noise),
/// but not bit-identical to it — callers that freeze streams get their
/// guarantee from every *path* sharing this one kernel.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut noise = [0.0; 64];
/// ldp_core::noise::fill_laplace(1.0, &mut rng, &mut noise);
/// assert!(noise.iter().all(|x| x.is_finite()));
/// ```
pub fn fill_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R, out: &mut [f64]) {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be positive, got {scale}"
    );
    // Pass 1: the uniform block — inherently sequential in the RNG.
    for slot in out.iter_mut() {
        *slot = rng.gen::<f64>();
    }
    // Pass 2: branchless transform, independent per element.
    for slot in out.iter_mut() {
        *slot = laplace_from_unit(scale, *slot);
    }
}

/// The branchless inverse-CDF map from one uniform `v ∈ [0, 1)` to one
/// `Lap(0, scale)` sample: `u = ½ − v`, `x = −scale·sgn(u)·ln(1 − 2|u|)`.
///
/// Shared by [`fill_laplace`] and every SHE randomize path so that all
/// of them produce bit-identical streams from the same seed.
#[inline]
pub fn laplace_from_unit(scale: f64, v: f64) -> f64 {
    let u = 0.5 - v;
    let t = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    let magnitude = -fast_ln(t) * scale;
    magnitude.copysign(u)
}

/// Branch-free natural log for positive normal `x`, accurate to ~1e-13
/// relative: exponent/mantissa split by bit twiddling, mantissa
/// range-reduced to `[√½, √2)`, then `ln(m) = 2·atanh((m−1)/(m+1))`
/// evaluated as a 7-term Horner polynomial in `s²`.
///
/// Exists because libm `ln` is the per-sample bottleneck of Laplace
/// inverse-CDF sampling and (as an opaque call) blocks vectorization of
/// the transform loop. Not a general `ln`: callers must pass a normal
/// positive finite `x` (as [`laplace_from_unit`]'s clamp guarantees).
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    debug_assert!(x >= f64::MIN_POSITIVE && x.is_finite());
    const LN_2: f64 = std::f64::consts::LN_2;
    const SQRT_2: f64 = std::f64::consts::SQRT_2;
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Mantissa in [1, 2).
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Fold into [√½, √2) so s = (m−1)/(m+1) stays small (|s| ≤ 0.1716).
    let fold = m > SQRT_2;
    let m = if fold { 0.5 * m } else { m };
    let e = (exp + i64::from(fold)) as f64;
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // atanh(s) = s·(1 + s²/3 + s⁴/5 + …); truncation error ≤ s¹⁴/15 ≈ 3e-13.
    let poly = 1.0
        + s2 * (1.0 / 3.0
            + s2 * (1.0 / 5.0
                + s2 * (1.0 / 7.0 + s2 * (1.0 / 9.0 + s2 * (1.0 / 11.0 + s2 * (1.0 / 13.0))))));
    e * LN_2 + 2.0 * s * poly
}

/// The variance of `Lap(scale)`: `2·scale²`.
#[inline]
pub fn laplace_variance(scale: f64) -> f64 {
    2.0 * scale * scale
}

/// The variance of the two-sided geometric with parameter
/// `alpha = exp(−1/scale)`: `2α/(1−α)²`.
#[inline]
pub fn two_sided_geometric_variance(scale: f64) -> f64 {
    let alpha = (-1.0 / scale).exp();
    2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let scale = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(scale, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        let expected = laplace_variance(scale);
        assert!((var - expected).abs() / expected < 0.05, "var={var}");
    }

    #[test]
    fn laplace_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let pos = (0..100_000)
            .filter(|_| sample_laplace(1.0, &mut rng) > 0.0)
            .count();
        assert!((pos as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn geometric_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 200_000;
        let scale = 1.5;
        let samples: Vec<i64> = (0..n)
            .map(|_| sample_two_sided_geometric(scale, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        let expected = two_sided_geometric_variance(scale);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "var={var} vs {expected}"
        );
    }

    #[test]
    fn geometric_pmf_shape() {
        // Pr[X=0] should be the mode and ≈ (1-α)/(1+α).
        let mut rng = StdRng::seed_from_u64(7);
        let scale = 1.0;
        let alpha = (-1.0f64 / scale).exp();
        let n = 100_000;
        let zeros = (0..n)
            .filter(|_| sample_two_sided_geometric(scale, &mut rng) == 0)
            .count();
        let expected = (1.0 - alpha) / (1.0 + alpha);
        let got = zeros as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "got={got} expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn laplace_rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_laplace(0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn fill_laplace_rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        fill_laplace(f64::NAN, &mut rng, &mut [0.0; 4]);
    }

    #[test]
    fn fast_ln_tracks_libm_ln() {
        // Sweep mantissas and exponents, including the clamp floor.
        let mut worst = 0.0f64;
        for e in [-300, -60, -8, -1, 0, 1, 8, 60, 300] {
            for i in 0..1000 {
                let x = (1.0 + i as f64 / 1000.0) * 2.0f64.powi(e);
                let got = fast_ln(x);
                let want = x.ln();
                let err = if want.abs() > 1.0 {
                    ((got - want) / want).abs()
                } else {
                    (got - want).abs()
                };
                worst = worst.max(err);
            }
        }
        let floor = fast_ln(f64::MIN_POSITIVE);
        assert!((floor - f64::MIN_POSITIVE.ln()).abs() / floor.abs() < 1e-12);
        assert!(worst < 1e-12, "worst fast_ln error {worst}");
    }

    #[test]
    fn laplace_from_unit_matches_scalar_formula() {
        // Same inverse-CDF map as sample_laplace, up to fast_ln vs libm
        // ln: the transforms must agree to ~1e-12 relative on a fine
        // uniform grid (including the extremes of both tails).
        for i in 0..=10_000 {
            let v = i as f64 / 10_001.0;
            let got = laplace_from_unit(2.0, v);
            let u = 0.5 - v;
            let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln() * 2.0;
            let want = if u >= 0.0 { magnitude } else { -magnitude };
            assert!(
                (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                "v={v}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn fill_laplace_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(17);
        let scale = 2.0;
        let mut samples = vec![0.0; 200_000];
        fill_laplace(scale, &mut rng, &mut samples);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean={mean}");
        let expected = laplace_variance(scale);
        assert!((var - expected).abs() / expected < 0.05, "var={var}");
    }

    #[test]
    fn fill_laplace_block_matches_per_unit_transform() {
        // The block fill is exactly "draw d uniforms, then map each":
        // reproducing it by hand from the same seed must match bitwise.
        let mut rng = StdRng::seed_from_u64(23);
        let mut block = vec![0.0; 257];
        fill_laplace(1.5, &mut rng, &mut block);
        let mut rng2 = StdRng::seed_from_u64(23);
        for (i, &b) in block.iter().enumerate() {
            let v: f64 = rand::Rng::gen(&mut rng2);
            assert_eq!(b.to_bits(), laplace_from_unit(1.5, v).to_bits(), "idx {i}");
        }
    }
}
