//! # Cost model — the analytic book the mechanism planner optimizes over
//!
//! The tutorial's mechanisms trade accuracy, server memory, report size,
//! and decode latency against each other as `(d, n, ε)` move. Every
//! formula the planner needs already lives next to the mechanism that
//! owns it — [`FrequencyOracle::count_variance`] implementations, the
//! CMS/HCMS `approx_count_variance` approximations, the dBitFlip bucket
//! variance — and the aggregation-complexity table in `DESIGN.md`
//! documents the memory/estimate costs. This module gives all of that
//! one seam: a [`CostModel`] trait (one entry per [`MechanismKind`]) and
//! a [`CostBook`] registry mirroring [`crate::Registry`], so each crate
//! contributes its own analytic entry exactly the way it contributes its
//! wire factory:
//!
//! * [`CostBook::core`] registers the ten `ldp-core` oracles
//!   (GRR, SUE, OUE, SHE, THE, BLH, OLH, OLH-C, HR, SS);
//! * `ldp_apple::register_cost_models` adds CMS and HCMS;
//! * `ldp_microsoft::register_cost_models` adds dBitFlip and 1BitMean.
//!
//! **Single source of truth:** a [`CostModel`] never restates a variance
//! formula. It *instantiates* the mechanism its descriptor describes and
//! delegates to the mechanism's own published method
//! ([`FrequencyOracle::noise_floor_variance`] here; the sketch crates
//! delegate to their `approx_count_variance`/`count_variance`). Editing a
//! mechanism's formula automatically moves the planner.
//!
//! The planner itself — knob tuning across mechanisms, budget filtering,
//! registry validation, ranking — lives in the `ldp-planner` crate; this
//! module only defines the vocabulary ([`WorkloadSpec`], [`CostEstimate`])
//! and the per-mechanism entries.

use crate::fo::{
    BinaryLocalHashing, CohortLocalHashing, DirectEncoding, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use crate::protocol::{MechanismKind, ProtocolDescriptor};
use crate::{Epsilon, LdpError, Result};
use std::collections::BTreeMap;

/// What the collector will be asked at estimation time. The shape moves
/// the predicted decode cost (full sweeps pay `O(d)`-and-up; point
/// queries pay per-item) and gates which mechanisms apply at all (only
/// 1BitMean answers [`QueryShape::Mean`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// Estimate every count in `[0, d)` (histograms, heavy-hitter scans).
    FullDomain,
    /// Estimate `k` known items (dashboards, candidate re-scoring).
    TopK {
        /// Number of point queries per estimation round.
        k: u64,
    },
    /// Estimate the population mean of a bounded real input — the
    /// Microsoft telemetry shape, answered by 1BitMean only.
    Mean {
        /// Inputs live in `[0, max_value]`.
        max_value: f64,
    },
}

/// The workload a deployment needs served: domain, population, privacy
/// level, resource budgets, and structural requirements. This is the
/// planner's input; `None` budgets mean unconstrained.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Domain size `d` (bucket count for dBitFlip).
    pub domain_size: u64,
    /// Expected number of reports per collection round (`n`).
    pub population: u64,
    /// Per-report privacy budget ε.
    pub epsilon: f64,
    /// Server-side aggregator state budget, in bytes.
    pub memory_budget: Option<u64>,
    /// Per-report wire-frame budget, in bytes (upper bound per report).
    pub report_budget: Option<u64>,
    /// Estimation latency budget as an abstract operation count (the
    /// unit of the DESIGN.md aggregation table: counter touches /
    /// transform butterflies per estimation round).
    pub decode_budget: Option<u64>,
    /// What estimation will be asked for.
    pub query_shape: QueryShape,
    /// Require exact subtractive retirement (`FoAggregator::try_subtract`)
    /// — windowed/longitudinal deployments set this so SHE and raw
    /// local hashing are excluded.
    pub require_subtractive: bool,
    /// Opt in to `O(n)`-memory raw BLH/OLH plans (ablations only). The
    /// planner never emits a linear-memory plan without this, mirroring
    /// the registry's `allow_linear_memory` steering gate.
    pub allow_linear_memory: bool,
}

impl WorkloadSpec {
    /// A frequency workload over `[0, d)` with `n` reports at ε, no
    /// budgets, full-domain estimation, no structural requirements.
    #[must_use]
    pub fn new(domain_size: u64, population: u64, epsilon: f64) -> Self {
        Self {
            domain_size,
            population,
            epsilon,
            memory_budget: None,
            report_budget: None,
            decode_budget: None,
            query_shape: QueryShape::FullDomain,
            require_subtractive: false,
            allow_linear_memory: false,
        }
    }

    /// Caps server aggregator state at `bytes`.
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Caps every wire frame at `bytes`.
    #[must_use]
    pub fn with_report_budget(mut self, bytes: u64) -> Self {
        self.report_budget = Some(bytes);
        self
    }

    /// Caps estimation at `ops` abstract operations per round.
    #[must_use]
    pub fn with_decode_budget(mut self, ops: u64) -> Self {
        self.decode_budget = Some(ops);
        self
    }

    /// Sets the estimation shape (default [`QueryShape::FullDomain`]).
    #[must_use]
    pub fn with_query_shape(mut self, shape: QueryShape) -> Self {
        self.query_shape = shape;
        self
    }

    /// Requires exact subtractive retirement (windowed telemetry).
    #[must_use]
    pub fn with_subtractive(mut self) -> Self {
        self.require_subtractive = true;
        self
    }

    /// Opts in to `O(n)`-memory raw local-hashing plans.
    #[must_use]
    pub fn with_linear_memory(mut self) -> Self {
        self.allow_linear_memory = true;
        self
    }

    /// Validates the spec itself (before any mechanism is consulted).
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] / [`LdpError::InvalidDomain`] /
    /// [`LdpError::InvalidParameter`] on an unusable spec.
    pub fn validate(&self) -> Result<()> {
        Epsilon::new(self.epsilon)?;
        if self.domain_size < 2 {
            return Err(LdpError::InvalidDomain(format!(
                "workload domain must have at least 2 items, got {}",
                self.domain_size
            )));
        }
        if self.population == 0 {
            return Err(LdpError::InvalidParameter(
                "workload population must be at least 1".into(),
            ));
        }
        match self.query_shape {
            QueryShape::TopK { k } => {
                if k == 0 {
                    return Err(LdpError::InvalidParameter(
                        "TopK query shape needs k >= 1".into(),
                    ));
                }
            }
            QueryShape::Mean { max_value } => {
                if !(max_value.is_finite() && max_value > 0.0) {
                    return Err(LdpError::InvalidParameter(format!(
                        "Mean query shape needs a positive, finite bound, got {max_value}"
                    )));
                }
            }
            QueryShape::FullDomain => {}
        }
        Ok(())
    }

    /// Number of point estimates one estimation round performs under
    /// this spec's query shape (`d` for full-domain, `min(k, d)` for
    /// top-k, 1 for a mean).
    #[must_use]
    pub fn queried_items(&self) -> u64 {
        match self.query_shape {
            QueryShape::FullDomain => self.domain_size,
            QueryShape::TopK { k } => k.min(self.domain_size),
            QueryShape::Mean { .. } => 1,
        }
    }

    /// The checked ε (valid after [`WorkloadSpec::validate`]).
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] when ε is not positive and finite.
    pub fn epsilon_checked(&self) -> Result<Epsilon> {
        Epsilon::new(self.epsilon)
    }
}

/// A mechanism's predicted resource/accuracy profile for one
/// [`WorkloadSpec`] — the planner's ranking currency.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Predicted variance of one debiased estimate: σ² of a rare item's
    /// count ([`FrequencyOracle::noise_floor_variance`]) for frequency
    /// workloads, σ² of the mean estimate for [`QueryShape::Mean`].
    pub variance: f64,
    /// Predicted server aggregator state, in bytes.
    pub memory_bytes: u64,
    /// Upper bound on one encoded wire frame, in bytes (header +
    /// length varint + payload; see `ldp_core::wire`).
    pub bytes_per_report: u64,
    /// Predicted abstract operations per estimation round under the
    /// spec's [`QueryShape`].
    pub decode_ops: u64,
    /// Whether the aggregator supports exact subtractive retirement.
    pub subtractive: bool,
    /// Whether the aggregator's memory grows with `n` (raw BLH/OLH).
    pub linear_memory: bool,
}

impl CostEstimate {
    /// Whether this estimate respects every budget and structural
    /// requirement in `spec`.
    #[must_use]
    pub fn fits(&self, spec: &WorkloadSpec) -> bool {
        if !self.variance.is_finite() {
            return false;
        }
        if let Some(b) = spec.memory_budget {
            if self.memory_bytes > b {
                return false;
            }
        }
        if let Some(b) = spec.report_budget {
            if self.bytes_per_report > b {
                return false;
            }
        }
        if let Some(b) = spec.decode_budget {
            if self.decode_ops > b {
                return false;
            }
        }
        if spec.require_subtractive && !self.subtractive {
            return false;
        }
        if self.linear_memory && !spec.allow_linear_memory {
            return false;
        }
        true
    }
}

/// One mechanism's analytic cost entry: knob tuning plus descriptor
/// costing. Implementations delegate every accuracy number to the
/// mechanism's own published variance method — the entry is a seam, not
/// a second copy of the math.
pub trait CostModel: Send + Sync {
    /// The mechanism this entry describes.
    fn kind(&self) -> MechanismKind;

    /// Tunes this mechanism's integer knobs (cohorts `C`, sketch `k×m`,
    /// bits-per-device `b`, …) for `spec` by analytic minimization under
    /// the spec's budgets, returning the best candidate descriptor —
    /// or `Ok(None)` when the mechanism cannot serve the spec at all
    /// (wrong query shape, domain out of range, no knob setting fits).
    ///
    /// # Errors
    /// Any [`LdpError`] from descriptor validation (a returned
    /// descriptor has always passed `ProtocolDescriptorBuilder::build`).
    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>>;

    /// Prices `desc` under `spec` — predicted σ², memory, frame bytes,
    /// and decode operations.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `desc` is not this entry's
    /// kind; any construction error from the underlying mechanism.
    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate>;
}

/// Maps [`MechanismKind`]s to [`CostModel`] entries — the analytic
/// mirror of [`crate::Registry`]. Crates register their entries with
/// [`CostBook::register`] exactly as they register wire factories.
pub struct CostBook {
    models: BTreeMap<u8, Box<dyn CostModel>>,
}

impl std::fmt::Debug for CostBook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostBook")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for CostBook {
    fn default() -> Self {
        Self::core()
    }
}

impl CostBook {
    /// An empty book (register everything yourself).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            models: BTreeMap::new(),
        }
    }

    /// A book with every `ldp-core` frequency oracle priced: GRR, SUE,
    /// OUE, SHE, THE, BLH, OLH, OLH-C, HR, SS.
    #[must_use]
    pub fn core() -> Self {
        let mut book = Self::empty();
        for kind in [
            MechanismKind::DirectEncoding,
            MechanismKind::SymmetricUnary,
            MechanismKind::OptimizedUnary,
            MechanismKind::SummationHistogram,
            MechanismKind::ThresholdHistogram,
            MechanismKind::BinaryLocalHashing,
            MechanismKind::OptimizedLocalHashing,
            MechanismKind::CohortLocalHashing,
            MechanismKind::HadamardResponse,
            MechanismKind::SubsetSelection,
        ] {
            book.register(CoreOracleCost { kind });
        }
        book
    }

    /// Registers (or replaces) the entry for `model.kind()`.
    pub fn register<M: CostModel + 'static>(&mut self, model: M) {
        self.models.insert(model.kind().code(), Box::new(model));
    }

    /// The entry for `kind`, if registered.
    #[must_use]
    pub fn get(&self, kind: MechanismKind) -> Option<&dyn CostModel> {
        self.models.get(&kind.code()).map(AsRef::as_ref)
    }

    /// The registered kinds, in code order.
    #[must_use]
    pub fn kinds(&self) -> Vec<MechanismKind> {
        self.models
            .keys()
            .map(|&c| MechanismKind::from_code(c).expect("registered codes are valid"))
            .collect()
    }

    /// Iterates the registered entries in code order.
    pub fn models(&self) -> impl Iterator<Item = &dyn CostModel> {
        self.models.values().map(AsRef::as_ref)
    }
}

/// Encoded length of a LEB128 unsigned varint (see `ldp_core::wire`).
#[must_use]
pub fn uvarint_len(v: u64) -> u64 {
    (64 - v.leading_zeros() as u64).div_ceil(7).max(1)
}

/// Upper bound on a full wire frame around a `payload`-byte report:
/// version byte + tag byte + length varint + payload.
#[must_use]
pub fn frame_bytes(payload: u64) -> u64 {
    2 + uvarint_len(payload) + payload
}

/// Fixed per-aggregator struct overhead charged on every memory
/// prediction (probabilities, seeds, counters' vec headers).
pub const STATE_OVERHEAD_BYTES: u64 = 64;

/// Bytes charged per retained raw report in the linear-memory BLH/OLH
/// aggregator (per-user seed + bucket).
pub const RAW_REPORT_STATE_BYTES: u64 = 24;

/// The `ldp-core` oracle entries: one instance per core
/// [`MechanismKind`], delegating variance to the oracle's own
/// [`FrequencyOracle::noise_floor_variance`].
struct CoreOracleCost {
    kind: MechanismKind,
}

/// `⌈log2(m)⌉` as a u64 (decode-op accounting for transforms).
fn log2_ceil(m: u64) -> u64 {
    64 - m.saturating_sub(1).leading_zeros() as u64
}

impl CoreOracleCost {
    /// Largest cohort count whose `C·g` count matrix fits the memory
    /// budget — variance falls monotonically in `C`, so take every
    /// cohort the budget allows, capped by the population (cohorts with
    /// no users stop helping) and by 64× the default.
    fn tune_cohorts(spec: &WorkloadSpec, g: u64) -> Option<u32> {
        let cap = spec
            .population
            .max(1)
            .min(u64::from(crate::fo::hashing::DEFAULT_COHORTS) * 64);
        let c = match spec.memory_budget {
            None => u64::from(crate::fo::hashing::DEFAULT_COHORTS).min(cap),
            Some(budget) => {
                let fit = budget.saturating_sub(STATE_OVERHEAD_BYTES) / (g * 8).max(1);
                if fit == 0 {
                    return None;
                }
                fit.min(cap)
            }
        };
        Some(u32::try_from(c).unwrap_or(u32::MAX))
    }
}

impl CostModel for CoreOracleCost {
    fn kind(&self) -> MechanismKind {
        self.kind
    }

    fn tune(&self, spec: &WorkloadSpec) -> Result<Option<ProtocolDescriptor>> {
        spec.validate()?;
        if matches!(spec.query_shape, QueryShape::Mean { .. }) {
            return Ok(None); // frequency oracles do not answer mean queries
        }
        let kind = self.kind;
        // Structural exclusions the planner must never override: SHE's
        // float sums and the raw-report list have no exact merge inverse,
        // and raw BLH/OLH memory grows with n.
        if spec.require_subtractive
            && matches!(
                kind,
                MechanismKind::SummationHistogram
                    | MechanismKind::BinaryLocalHashing
                    | MechanismKind::OptimizedLocalHashing
            )
        {
            return Ok(None);
        }
        let linear = matches!(
            kind,
            MechanismKind::BinaryLocalHashing | MechanismKind::OptimizedLocalHashing
        );
        if linear && !spec.allow_linear_memory {
            return Ok(None);
        }
        let mut builder = ProtocolDescriptor::builder(kind)
            .domain_size(spec.domain_size)
            .epsilon(spec.epsilon);
        if linear {
            builder = builder.allow_linear_memory();
        }
        if kind == MechanismKind::CohortLocalHashing {
            let eps = spec.epsilon_checked()?;
            let g = CohortLocalHashing::optimized(spec.domain_size, 1, eps).g();
            let Some(cohorts) = Self::tune_cohorts(spec, g) else {
                return Ok(None);
            };
            builder = builder
                .cohorts(cohorts)
                .hash_seed(crate::fo::hashing::DEFAULT_COHORT_SEED_BASE);
        }
        Ok(Some(builder.build()?))
    }

    fn cost(&self, desc: &ProtocolDescriptor, spec: &WorkloadSpec) -> Result<CostEstimate> {
        if desc.kind() != self.kind {
            return Err(LdpError::InvalidParameter(format!(
                "cost entry for {} asked to price a {} descriptor",
                self.kind.name(),
                desc.kind().name()
            )));
        }
        let d = desc.domain_size();
        let n = spec.population;
        let nq = spec.queried_items();
        let eps = desc.epsilon_checked();
        let n_usize = usize::try_from(n).unwrap_or(usize::MAX);
        // Delegate σ² to the oracle's own formula; per-kind resource rows
        // follow the DESIGN.md aggregation table.
        let (variance, payload, memory, decode, subtractive, linear_memory) = match self.kind {
            MechanismKind::DirectEncoding => {
                let m = DirectEncoding::new(d, eps)?;
                let var = m.noise_floor_variance(n_usize);
                (var, uvarint_len(d - 1), d * 8, nq, true, false)
            }
            MechanismKind::SymmetricUnary => {
                let m = SymmetricUnaryEncoding::new(d, eps)?;
                let var = m.noise_floor_variance(n_usize);
                let payload = uvarint_len(d) + d.div_ceil(8);
                (var, payload, d * 8, nq, true, false)
            }
            MechanismKind::OptimizedUnary => {
                let m = OptimizedUnaryEncoding::new(d, eps)?;
                let var = m.noise_floor_variance(n_usize);
                let payload = uvarint_len(d) + d.div_ceil(8);
                (var, payload, d * 8, nq, true, false)
            }
            MechanismKind::SummationHistogram => {
                let m = SummationHistogramEncoding::new(d, eps)?;
                let var = m.noise_floor_variance(n_usize);
                // f64 noise sums: payload is 8 bytes per item, and the
                // float state has no exact merge inverse.
                (var, uvarint_len(d) + d * 8, d * 8, nq, false, false)
            }
            MechanismKind::ThresholdHistogram => {
                let m = ThresholdHistogramEncoding::new(d, eps)?;
                let var = m.noise_floor_variance(n_usize);
                let payload = uvarint_len(d) + d.div_ceil(8);
                (var, payload, d * 8, nq, true, false)
            }
            MechanismKind::BinaryLocalHashing => {
                let m = BinaryLocalHashing::new(d, eps);
                let var = m.noise_floor_variance(n_usize);
                // Raw report list: seed + bucket per user; estimates
                // rescan every report per queried item.
                let memory = n.saturating_mul(RAW_REPORT_STATE_BYTES);
                (var, 8 + 1, memory, n.saturating_mul(nq), false, true)
            }
            MechanismKind::OptimizedLocalHashing => {
                let m = OptimizedLocalHashing::new(d, eps);
                let var = m.noise_floor_variance(n_usize);
                let payload = 8 + uvarint_len(m.g() - 1);
                let memory = n.saturating_mul(RAW_REPORT_STATE_BYTES);
                (var, payload, memory, n.saturating_mul(nq), false, true)
            }
            MechanismKind::CohortLocalHashing => {
                let m = CohortLocalHashing::optimized_with_seed(
                    d,
                    desc.cohorts(),
                    desc.hash_seed(),
                    eps,
                );
                let var = m.noise_floor_variance(n_usize);
                let c = u64::from(desc.cohorts());
                let payload = uvarint_len(c.saturating_sub(1)) + uvarint_len(m.g() - 1);
                (
                    var,
                    payload,
                    c * m.g() * 8,
                    c.saturating_mul(nq),
                    true,
                    false,
                )
            }
            MechanismKind::HadamardResponse => {
                let m = HadamardResponse::new(d, eps);
                let var = m.noise_floor_variance(n_usize);
                let sm = m.spectrum_size();
                let payload = uvarint_len(sm - 1) + 1;
                // One inverse FWHT (m·log m) then per-item reads.
                let decode = sm.saturating_mul(log2_ceil(sm)).saturating_add(nq);
                (var, payload, sm * 8, decode, true, false)
            }
            MechanismKind::SubsetSelection => {
                let m = SubsetSelection::new(d, eps);
                let var = m.noise_floor_variance(n_usize);
                let payload = uvarint_len(m.k()) + m.k() * uvarint_len(d - 1);
                (var, payload, d * 8, nq, true, false)
            }
            other => {
                return Err(LdpError::UnsupportedMechanism(format!(
                    "no core cost entry for {}",
                    other.name()
                )))
            }
        };
        Ok(CostEstimate {
            variance,
            memory_bytes: memory.saturating_add(STATE_OVERHEAD_BYTES),
            bytes_per_report: frame_bytes(payload),
            decode_ops: decode,
            subtractive,
            linear_memory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(d: u64, n: u64, eps: f64) -> WorkloadSpec {
        WorkloadSpec::new(d, n, eps)
    }

    #[test]
    fn core_book_covers_all_core_oracles() {
        let book = CostBook::core();
        assert_eq!(book.kinds().len(), 10);
        for kind in book.kinds() {
            assert!(book.get(kind).is_some());
        }
    }

    #[test]
    fn tuned_descriptors_build_and_price() {
        let book = CostBook::core();
        let s = spec(256, 50_000, 1.0);
        for model in book.models() {
            if let Some(desc) = model.tune(&s).unwrap() {
                assert_eq!(desc.kind(), model.kind());
                let cost = model.cost(&desc, &s).unwrap();
                assert!(cost.variance.is_finite() && cost.variance > 0.0);
                assert!(cost.memory_bytes > 0);
                assert!(cost.bytes_per_report >= 3);
                assert!(cost.decode_ops >= 1);
            }
        }
    }

    #[test]
    fn raw_hashing_requires_linear_memory_opt_in() {
        let book = CostBook::core();
        for kind in [
            MechanismKind::BinaryLocalHashing,
            MechanismKind::OptimizedLocalHashing,
        ] {
            let model = book.get(kind).unwrap();
            assert!(model.tune(&spec(64, 1000, 1.0)).unwrap().is_none());
            let desc = model
                .tune(&spec(64, 1000, 1.0).with_linear_memory())
                .unwrap()
                .expect("opt-in enables raw hashing");
            assert!(desc.linear_memory_allowed());
            let cost = model
                .cost(&desc, &spec(64, 1000, 1.0).with_linear_memory())
                .unwrap();
            assert!(cost.linear_memory);
            assert!(!cost.subtractive);
        }
    }

    #[test]
    fn subtractive_requirement_excludes_float_and_raw_state() {
        let book = CostBook::core();
        let s = spec(64, 1000, 1.0).with_subtractive().with_linear_memory();
        for kind in [
            MechanismKind::SummationHistogram,
            MechanismKind::BinaryLocalHashing,
            MechanismKind::OptimizedLocalHashing,
        ] {
            assert!(book.get(kind).unwrap().tune(&s).unwrap().is_none());
        }
        // The count-state oracles still serve it.
        assert!(book
            .get(MechanismKind::OptimizedUnary)
            .unwrap()
            .tune(&s)
            .unwrap()
            .is_some());
    }

    #[test]
    fn cohort_tuning_respects_memory_budget() {
        let book = CostBook::core();
        let model = book.get(MechanismKind::CohortLocalHashing).unwrap();
        let tight = spec(1024, 1_000_000, 1.0).with_memory_budget(16 * 1024);
        let desc = model.tune(&tight).unwrap().expect("a small C still fits");
        let cost = model.cost(&desc, &tight).unwrap();
        assert!(
            cost.memory_bytes <= 16 * 1024,
            "memory {}",
            cost.memory_bytes
        );
        // With a roomy budget the planner takes more cohorts (lower
        // collision variance), never exceeding the budget.
        let roomy = spec(1024, 1_000_000, 1.0).with_memory_budget(4 * 1024 * 1024);
        let desc2 = model.tune(&roomy).unwrap().unwrap();
        assert!(desc2.cohorts() > desc.cohorts());
        let cost2 = model.cost(&desc2, &roomy).unwrap();
        assert!(cost2.memory_bytes <= 4 * 1024 * 1024);
        assert!(cost2.variance < cost.variance);
    }

    #[test]
    fn mean_shape_excludes_frequency_oracles() {
        let book = CostBook::core();
        let s = spec(64, 1000, 1.0).with_query_shape(QueryShape::Mean { max_value: 10.0 });
        for model in book.models() {
            assert!(model.tune(&s).unwrap().is_none());
        }
    }

    #[test]
    fn topk_shape_shrinks_decode_cost() {
        let book = CostBook::core();
        let model = book.get(MechanismKind::CohortLocalHashing).unwrap();
        let full = spec(4096, 100_000, 1.0);
        let topk = spec(4096, 100_000, 1.0).with_query_shape(QueryShape::TopK { k: 8 });
        let desc = model.tune(&full).unwrap().unwrap();
        let c_full = model.cost(&desc, &full).unwrap();
        let c_topk = model.cost(&desc, &topk).unwrap();
        assert!(c_topk.decode_ops < c_full.decode_ops);
    }

    #[test]
    fn frame_bound_matches_wire_arithmetic() {
        assert_eq!(uvarint_len(0), 1);
        assert_eq!(uvarint_len(127), 1);
        assert_eq!(uvarint_len(128), 2);
        assert_eq!(uvarint_len(u64::MAX), 10);
        assert_eq!(frame_bytes(5), 2 + 1 + 5);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(spec(1, 10, 1.0).validate().is_err());
        assert!(spec(10, 0, 1.0).validate().is_err());
        assert!(spec(10, 10, 0.0).validate().is_err());
        assert!(spec(10, 10, 1.0)
            .with_query_shape(QueryShape::TopK { k: 0 })
            .validate()
            .is_err());
        assert!(spec(10, 10, 1.0)
            .with_query_shape(QueryShape::Mean { max_value: -1.0 })
            .validate()
            .is_err());
        assert!(spec(10, 10, 1.0).validate().is_ok());
    }
}
