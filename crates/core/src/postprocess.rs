//! Consistency post-processing for frequency estimates.
//!
//! Debiased LDP estimates are unbiased but *inconsistent*: counts go
//! negative and rarely sum to `n`. Post-processing — any transformation
//! of the released estimates — is free under DP (it touches no raw data),
//! and the right projection provably reduces error. Three standard
//! options, in increasing sophistication:
//!
//! * [`clamp_nonnegative`] — truncate negatives to zero. Simple, but
//!   biases the total upward.
//! * [`normalize_to_total`] — rescale non-negative estimates to sum to
//!   `n`. Good when most mass is on a few items.
//! * [`norm_sub`] — the Norm-Sub projection (Wang et al., "Locally
//!   Differentially Private Frequency Estimation with Consistency",
//!   NDSS 2020 — the consistency fix the tutorial's authors later
//!   standardized): find the additive shift `δ` such that clamping
//!   `est_i + δ` at zero makes the total exactly `n`. This is the
//!   L2 projection onto the simplex `{x ≥ 0, Σx = n}` restricted to the
//!   support, and dominates the naive fixes on skewed data.

/// Truncates negative estimates to zero (biased but simple).
pub fn clamp_nonnegative(estimates: &[f64]) -> Vec<f64> {
    estimates.iter().map(|&x| x.max(0.0)).collect()
}

/// Clamps negatives to zero, then rescales so the total is `target_total`.
///
/// Returns the all-zero vector if nothing is positive.
pub fn normalize_to_total(estimates: &[f64], target_total: f64) -> Vec<f64> {
    let clamped = clamp_nonnegative(estimates);
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        return clamped;
    }
    clamped.iter().map(|&x| x * target_total / total).collect()
}

/// Norm-Sub: finds `δ` such that `Σ max(0, est_i + δ) = target_total` and
/// returns the clamped, shifted estimates. The exact projection is found
/// by sorting once and scanning the breakpoints — `O(d log d)`.
pub fn norm_sub(estimates: &[f64], target_total: f64) -> Vec<f64> {
    assert!(target_total >= 0.0, "target total must be non-negative");
    if estimates.is_empty() {
        return Vec::new();
    }
    // For a candidate support S (items that stay positive), delta solves
    // sum_{i in S}(est_i + delta) = T  =>  delta = (T - sum_S est)/|S|.
    // The correct S is a suffix of the sort-descending order. Scan from
    // the full set downwards until consistency holds.
    let mut sorted: Vec<f64> = estimates.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut prefix_sum = 0.0;
    let mut best_delta = target_total / estimates.len() as f64 - mean(estimates);
    for (k, &v) in sorted.iter().enumerate() {
        prefix_sum += v;
        let delta = (target_total - prefix_sum) / (k + 1) as f64;
        // Consistent iff every kept item stays >= 0 after the shift and
        // every dropped item would go <= 0.
        let kept_ok = v + delta >= -1e-9;
        let dropped_ok = k + 1 == sorted.len() || sorted[k + 1] + delta <= 1e-9;
        if kept_ok && dropped_ok {
            best_delta = delta;
            break;
        }
    }
    estimates
        .iter()
        .map(|&x| (x + best_delta).max(0.0))
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_kills_negatives_only() {
        let got = clamp_nonnegative(&[5.0, -2.0, 0.0, 3.0]);
        assert_eq!(got, vec![5.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn normalize_hits_total() {
        let got = normalize_to_total(&[3.0, -1.0, 1.0], 100.0);
        let total: f64 = got.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(got.iter().all(|&x| x >= 0.0));
        assert!((got[0] / got[2] - 3.0).abs() < 1e-9, "ratios preserved");
    }

    #[test]
    fn normalize_all_negative_returns_zeros() {
        let got = normalize_to_total(&[-3.0, -1.0], 10.0);
        assert_eq!(got, vec![0.0, 0.0]);
    }

    #[test]
    fn norm_sub_exact_total_and_nonnegative() {
        let est = [120.0, 40.0, -30.0, -10.0, 5.0];
        let got = norm_sub(&est, 100.0);
        let total: f64 = got.iter().sum();
        assert!((total - 100.0).abs() < 1e-6, "total={total}");
        assert!(got.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn norm_sub_no_negatives_is_pure_shift() {
        let est = [60.0, 30.0, 10.0];
        let got = norm_sub(&est, 130.0);
        // All stay positive: uniform shift of +10.
        assert!((got[0] - 70.0).abs() < 1e-9);
        assert!((got[1] - 40.0).abs() < 1e-9);
        assert!((got[2] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn norm_sub_preserves_order() {
        let est = [50.0, -20.0, 30.0, 5.0];
        let got = norm_sub(&est, 80.0);
        assert!(got[0] >= got[2] && got[2] >= got[3] && got[3] >= got[1]);
    }

    #[test]
    fn norm_sub_reduces_l2_error_on_sparse_truth() {
        // Truth is sparse; raw estimates have symmetric noise; Norm-Sub
        // should reduce squared error.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let d = 200;
        let n = 1000.0;
        let mut truth = vec![0.0; d];
        truth[0] = 600.0;
        truth[1] = 300.0;
        truth[2] = 100.0;
        let mut raw_se = 0.0;
        let mut post_se = 0.0;
        for _ in 0..50 {
            let est: Vec<f64> = truth
                .iter()
                .map(|&t| t + rng.gen_range(-50.0..50.0))
                .collect();
            let post = norm_sub(&est, n);
            raw_se += est
                .iter()
                .zip(&truth)
                .map(|(e, t)| (e - t).powi(2))
                .sum::<f64>();
            post_se += post
                .iter()
                .zip(&truth)
                .map(|(e, t)| (e - t).powi(2))
                .sum::<f64>();
        }
        assert!(post_se < raw_se, "post {post_se} vs raw {raw_se}");
    }

    #[test]
    fn empty_input() {
        assert!(norm_sub(&[], 10.0).is_empty());
    }
}
