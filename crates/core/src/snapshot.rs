//! Durable aggregator snapshots: versioned, tagged, mergeable state BLOBs.
//!
//! PR 5 made *reports* durable bytes; this module does the same for
//! aggregator *state*, following the Apache DataSketches idiom of
//! sketches as compact serialized BLOBs that can be "stored and shared
//! across different systems, processes, and environments without loss of
//! fidelity". Every workspace aggregator implements [`StateSnapshot`]
//! (it is a supertrait of [`crate::fo::FoAggregator`], so the capability
//! is compile-enforced), which gives it a canonical byte form:
//!
//! ```text
//! [version: u8] [state tag: u8] [uvarint payload_len] [payload bytes]
//! ```
//!
//! The same envelope as a wire report frame, with a separate tag space
//! ([`state_tag`]) so an aggregator snapshot can never be confused with
//! a report frame of the same mechanism. Payloads start with the
//! aggregator's *configuration fields* (domain size, channel
//! probabilities, hash-family fingerprints, ...) followed by its
//! *counters*; [`restore_from`] validates every configuration field
//! against the live aggregator before committing any counter, so a
//! snapshot can only land in an aggregator built for the same protocol.
//!
//! Contracts, proptested in every mechanism crate's
//! `tests/snapshot_roundtrip.rs`:
//!
//! * **Bit-identity** — `merge(restore(snapshot(a)), b) == merge(a, b)`:
//!   round-tripping state through bytes never perturbs a counter, so
//!   merge trees over snapshots reproduce in-process collection exactly.
//! * **Panic-free decoding** — truncation, corruption, a foreign version
//!   byte, or a wrong-kind tag come back as typed [`LdpError`]s; a
//!   failed restore leaves the aggregator unchanged (all payload parsing
//!   happens into temporaries that are committed last).

use crate::wire::{put_f64_le, put_uvarint, WireReader};
use crate::{LdpError, Result};

/// The snapshot BLOB format version this build reads and writes.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Registry of state tags — one per aggregator state layout, in the
/// same banded layout as `crate::wire::tag` (core 1..=15, Apple 16..=23,
/// Microsoft 24..=31, RAPPOR 32..=39, service layer 48+). A tag is the
/// *state layout's* identity: two mechanisms sharing counters (SUE/OUE,
/// OLH/BLH) share a tag.
pub mod state_tag {
    /// Direct-encoding (GRR) histogram counters.
    pub const DIRECT: u8 = 1;
    /// Unary-encoding per-bit 1-counts (SUE and OUE).
    pub const UNARY: u8 = 2;
    /// Summation-histogram real-valued sums.
    pub const SHE: u8 = 3;
    /// Thresholded-histogram per-bit 1-counts.
    pub const THE: u8 = 4;
    /// Raw local-hashing report list (BLH and OLH).
    pub const LOCAL_HASH: u8 = 5;
    /// Cohort local-hashing (OLH-C) count matrix.
    pub const COHORT_HASH: u8 = 6;
    /// Hadamard-response spectrum sums.
    pub const HADAMARD: u8 = 7;
    /// Subset-selection inclusion counters.
    pub const SUBSET: u8 = 8;
    /// Apple CMS sketch-server counters (also each SFP collector).
    pub const APPLE_CMS_SKETCH: u8 = 16;
    /// Apple CMS oracle aggregator (sketch server + bound domain).
    pub const APPLE_CMS: u8 = 17;
    /// Apple HCMS sketch-server spectrum.
    pub const APPLE_HCMS_SKETCH: u8 = 18;
    /// Apple HCMS oracle aggregator (sketch server + bound domain).
    pub const APPLE_HCMS: u8 = 19;
    /// Apple SFP per-position fragment sketches + whole-word sketch.
    pub const APPLE_SFP: u8 = 20;
    /// Microsoft dBitFlip bucket counters.
    pub const MS_DBIT: u8 = 24;
    /// Microsoft 1BitMean bit count.
    pub const MS_ONE_BIT_MEAN: u8 = 25;
    /// Microsoft telemetry round (mean + histogram halves).
    pub const MS_TELEMETRY: u8 = 26;
    /// RAPPOR per-cohort bit counts.
    pub const RAPPOR: u8 = 32;
    /// A `CollectorService` checkpoint (descriptor + aggregator BLOB).
    pub const SERVICE_CHECKPOINT: u8 = 48;
    /// A whole sliding-window ring (`ldp_workloads::window::WindowRing`):
    /// ring configuration plus one embedded service checkpoint per live
    /// window and one for the running total.
    pub const WINDOW_RING: u8 = 49;
}

/// The durable-state capability: an aggregator that can serialize its
/// full state to a versioned BLOB and restore it, panic-free.
///
/// Object-safe, so the erased service layer
/// (`crate::wire::ErasedAggregator`) can forward it without knowing the
/// concrete aggregator type. Implementations serialize configuration
/// fields before counters and must make [`restore_payload`] all-or-
/// nothing: parse into temporaries, validate, and only then commit, so a
/// failed restore leaves the aggregator exactly as it was.
///
/// [`restore_payload`]: StateSnapshot::restore_payload
pub trait StateSnapshot {
    /// This aggregator's state-layout tag (a [`state_tag`] constant).
    fn state_tag(&self) -> u8;

    /// Appends the payload bytes (configuration fields, then counters)
    /// to `out`. Infallible: every aggregator state has a byte form.
    fn snapshot_payload(&self, out: &mut Vec<u8>);

    /// Parses one payload from `r`, validates its configuration fields
    /// against `self`, and replaces `self`'s counters with the decoded
    /// ones.
    ///
    /// # Errors
    /// Any [`LdpError`] for truncated or corrupt bytes, or
    /// [`LdpError::StateMismatch`] when the snapshot was taken from an
    /// aggregator with different configuration; `self` is unchanged on
    /// error.
    fn restore_payload(&mut self, r: &mut WireReader<'_>) -> Result<()>;
}

/// Serializes `agg`'s state as one framed snapshot BLOB appended to
/// `out`: `[SNAPSHOT_VERSION][state tag][uvarint len][payload]`.
pub fn snapshot_to<S: StateSnapshot + ?Sized>(agg: &S, out: &mut Vec<u8>) {
    out.push(SNAPSHOT_VERSION);
    out.push(agg.state_tag());
    // Reserve one byte for the length varint; payloads under 128 bytes
    // (most of them) need no splice.
    let len_pos = out.len();
    out.push(0);
    agg.snapshot_payload(out);
    let payload_len = out.len() - len_pos - 1;
    if payload_len < 0x80 {
        out[len_pos] = payload_len as u8;
    } else {
        let mut varint = Vec::with_capacity(10);
        put_uvarint(&mut varint, payload_len as u64);
        out.splice(len_pos..=len_pos, varint);
    }
}

/// [`snapshot_to`] into a fresh vector.
#[must_use]
pub fn snapshot_vec<S: StateSnapshot + ?Sized>(agg: &S) -> Vec<u8> {
    let mut out = Vec::new();
    snapshot_to(agg, &mut out);
    out
}

/// Restores `agg`'s state from one snapshot BLOB (and nothing else:
/// trailing bytes are an error).
///
/// # Errors
/// [`LdpError::VersionMismatch`] for a foreign version byte,
/// [`LdpError::ReportTypeMismatch`] when the tag is not `agg`'s state
/// tag, [`LdpError::StateMismatch`] when the payload's configuration
/// disagrees with `agg`, and [`LdpError::Truncated`] /
/// [`LdpError::Malformed`] for byte-level damage. `agg` is unchanged on
/// error.
pub fn restore_from<S: StateSnapshot + ?Sized>(agg: &mut S, bytes: &[u8]) -> Result<()> {
    let mut r = WireReader::new(bytes);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(LdpError::VersionMismatch {
            got: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let tag = r.u8()?;
    if tag != agg.state_tag() {
        return Err(LdpError::ReportTypeMismatch {
            got: tag,
            expected: agg.state_tag(),
        });
    }
    let len = r.uvarint()?;
    let len = usize::try_from(len)
        .map_err(|_| LdpError::Malformed(format!("snapshot payload length {len} overflows")))?;
    let payload = r.bytes(len)?;
    r.finish()?;
    let mut pr = WireReader::new(payload);
    agg.restore_payload(&mut pr)?;
    pr.finish()
}

// ---------------------------------------------------------------------
// Payload codec helpers shared by every implementation.
// ---------------------------------------------------------------------

/// ZigZag-encodes a signed value so small magnitudes stay small varints.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a ZigZag varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Reads a ZigZag varint.
///
/// # Errors
/// Propagates varint decode failures.
pub fn get_ivarint(r: &mut WireReader<'_>) -> Result<i64> {
    Ok(unzigzag(r.uvarint()?))
}

/// Appends a `usize` counter (report counts, vector lengths) as a varint.
pub fn put_count(out: &mut Vec<u8>, v: usize) {
    put_uvarint(out, v as u64);
}

/// Reads a `usize` counter.
///
/// # Errors
/// [`LdpError::Malformed`] when the value overflows `usize`.
pub fn get_count(r: &mut WireReader<'_>) -> Result<usize> {
    let v = r.uvarint()?;
    usize::try_from(v).map_err(|_| LdpError::Malformed(format!("count {v} overflows usize")))
}

/// Appends a length-prefixed vector of unsigned counters.
pub fn put_counts(out: &mut Vec<u8>, counts: &[u64]) {
    put_uvarint(out, counts.len() as u64);
    for &c in counts {
        put_uvarint(out, c);
    }
}

/// Reads a length-prefixed counter vector whose length must be
/// `expected` (the live aggregator's shape — a configuration check).
///
/// # Errors
/// [`LdpError::StateMismatch`] on a length disagreement;
/// [`LdpError::Truncated`] when the declared length cannot fit in the
/// remaining bytes (allocation bound: each varint is ≥ 1 byte).
pub fn get_counts(r: &mut WireReader<'_>, expected: usize, what: &str) -> Result<Vec<u64>> {
    let len = get_count(r)?;
    if len != expected {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot has {len} entries, aggregator has {expected}"
        )));
    }
    if r.remaining() < len {
        return Err(LdpError::Truncated {
            needed: len,
            available: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.uvarint()?);
    }
    Ok(out)
}

/// Appends a length-prefixed vector of signed counters (ZigZag varints).
pub fn put_signed_counts(out: &mut Vec<u8>, counts: &[i64]) {
    put_uvarint(out, counts.len() as u64);
    for &c in counts {
        put_ivarint(out, c);
    }
}

/// Reads a length-prefixed signed counter vector of exactly `expected`
/// entries.
///
/// # Errors
/// Same contract as [`get_counts`].
pub fn get_signed_counts(r: &mut WireReader<'_>, expected: usize, what: &str) -> Result<Vec<i64>> {
    let len = get_count(r)?;
    if len != expected {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot has {len} entries, aggregator has {expected}"
        )));
    }
    if r.remaining() < len {
        return Err(LdpError::Truncated {
            needed: len,
            available: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_ivarint(r)?);
    }
    Ok(out)
}

/// Appends a length-prefixed vector of reals (8-byte LE each).
pub fn put_reals(out: &mut Vec<u8>, reals: &[f64]) {
    put_uvarint(out, reals.len() as u64);
    for &x in reals {
        put_f64_le(out, x);
    }
}

/// Reads a length-prefixed real vector of exactly `expected` entries,
/// rejecting non-finite values (no aggregator produces them, so they
/// can only mean corruption).
///
/// # Errors
/// Same contract as [`get_counts`], plus [`LdpError::Malformed`] for
/// NaN/infinite entries.
pub fn get_reals(r: &mut WireReader<'_>, expected: usize, what: &str) -> Result<Vec<f64>> {
    let len = get_count(r)?;
    if len != expected {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot has {len} entries, aggregator has {expected}"
        )));
    }
    if r.remaining() < len.saturating_mul(8) {
        return Err(LdpError::Truncated {
            needed: len * 8,
            available: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let x = r.f64_le()?;
        if !x.is_finite() {
            return Err(LdpError::Malformed(format!(
                "{what}: non-finite entry {x} in snapshot"
            )));
        }
        out.push(x);
    }
    Ok(out)
}

/// Reads a varint configuration field and checks it against the live
/// aggregator's value.
///
/// # Errors
/// [`LdpError::StateMismatch`] on disagreement.
pub fn check_u64(r: &mut WireReader<'_>, expected: u64, what: &str) -> Result<()> {
    let got = r.uvarint()?;
    if got != expected {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot says {got}, aggregator says {expected}"
        )));
    }
    Ok(())
}

/// Reads an 8-byte LE configuration field (u64) and checks it against
/// the live aggregator's value — used for hash-family fingerprints.
///
/// # Errors
/// [`LdpError::StateMismatch`] on disagreement.
pub fn check_u64_le(r: &mut WireReader<'_>, expected: u64, what: &str) -> Result<()> {
    let got = r.u64_le()?;
    if got != expected {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot fingerprint {got:#018x} does not match aggregator {expected:#018x}"
        )));
    }
    Ok(())
}

/// Reads an 8-byte LE real configuration field and checks it bit-for-bit
/// (`to_bits` equality: channel probabilities are derived
/// deterministically, so equal configurations are bit-equal).
///
/// # Errors
/// [`LdpError::StateMismatch`] on disagreement.
pub fn check_f64(r: &mut WireReader<'_>, expected: f64, what: &str) -> Result<()> {
    let got = r.f64_le()?;
    if got.to_bits() != expected.to_bits() {
        return Err(LdpError::StateMismatch(format!(
            "{what}: snapshot says {got}, aggregator says {expected}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy aggregator exercising the framing layer in isolation.
    struct Toy {
        shape: u64,
        counts: Vec<u64>,
    }

    impl StateSnapshot for Toy {
        fn state_tag(&self) -> u8 {
            state_tag::DIRECT
        }

        fn snapshot_payload(&self, out: &mut Vec<u8>) {
            put_uvarint(out, self.shape);
            put_counts(out, &self.counts);
        }

        fn restore_payload(&mut self, r: &mut WireReader<'_>) -> Result<()> {
            check_u64(r, self.shape, "toy shape")?;
            self.counts = get_counts(r, self.counts.len(), "toy counts")?;
            Ok(())
        }
    }

    #[test]
    fn round_trip_preserves_state() {
        let a = Toy {
            shape: 7,
            counts: vec![1, u64::MAX, 0, 300],
        };
        let blob = snapshot_vec(&a);
        let mut b = Toy {
            shape: 7,
            counts: vec![0; 4],
        };
        restore_from(&mut b, &blob).unwrap();
        assert_eq!(b.counts, a.counts);
    }

    #[test]
    fn long_payload_length_splice() {
        let a = Toy {
            shape: 1,
            counts: vec![u64::MAX; 40], // > 127 payload bytes
        };
        let blob = snapshot_vec(&a);
        assert!(blob.len() > 0x80);
        let mut b = Toy {
            shape: 1,
            counts: vec![0; 40],
        };
        restore_from(&mut b, &blob).unwrap();
        assert_eq!(b.counts, a.counts);
    }

    #[test]
    fn version_tag_and_shape_guards() {
        let a = Toy {
            shape: 3,
            counts: vec![5; 3],
        };
        let blob = snapshot_vec(&a);

        let mut bad = blob.clone();
        bad[0] = SNAPSHOT_VERSION + 1;
        let mut b = Toy {
            shape: 3,
            counts: vec![0; 3],
        };
        assert!(matches!(
            restore_from(&mut b, &bad),
            Err(LdpError::VersionMismatch { .. })
        ));

        let mut bad = blob.clone();
        bad[1] = state_tag::SUBSET;
        assert!(matches!(
            restore_from(&mut b, &bad),
            Err(LdpError::ReportTypeMismatch { .. })
        ));

        let mut wrong_shape = Toy {
            shape: 4,
            counts: vec![0; 3],
        };
        assert!(matches!(
            restore_from(&mut wrong_shape, &blob),
            Err(LdpError::StateMismatch(_))
        ));
        assert_eq!(wrong_shape.counts, vec![0; 3], "failed restore is a no-op");

        // Truncations never panic.
        for cut in 0..blob.len() {
            assert!(restore_from(&mut b, &blob[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected.
        let mut long = blob.clone();
        long.push(0);
        assert!(restore_from(&mut b, &long).is_err());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4242, -4242] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(get_ivarint(&mut r).unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn reals_reject_non_finite() {
        let mut buf = Vec::new();
        put_reals(&mut buf, &[1.0, f64::NAN]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            get_reals(&mut r, 2, "sums"),
            Err(LdpError::Malformed(_))
        ));
    }
}
