//! # `ldp-core` — the mechanisms of local differential privacy
//!
//! This crate implements §1.1 ("Introduction and Preliminaries") and the
//! frequency-oracle layer of §1.2 of the SIGMOD 2018 tutorial *"Privacy at
//! Scale: Local Differential Privacy in Practice"*:
//!
//! * [`privacy`] — the ε-LDP definition as a type ([`Epsilon`]), budget
//!   accounting and sequential composition ([`privacy::PrivacyBudget`]).
//! * [`rr`] — randomized response, from Warner's 1965 single-bit coin toss
//!   to the k-ary generalization that underlies direct encoding.
//! * [`fo`] — the frequency-oracle family of Wang et al. (USENIX Security
//!   2017): direct encoding (GRR), symmetric/optimized unary encoding
//!   (SUE = basic RAPPOR, OUE), summation/thresholding with histogram
//!   encoding (SHE, THE), binary/optimized local hashing (BLH, OLH), and
//!   Hadamard response — all behind one [`fo::FrequencyOracle`] trait.
//! * [`mean`] — numeric mechanisms: Duchi et al.'s minimax ±c mechanism,
//!   the Laplace mechanism, stochastic rounding, and the piecewise
//!   mechanism.
//! * [`mech`] — the cross-crate [`BatchMechanism`] abstraction: the
//!   batch-fused, mergeable collection contract shared by the frequency
//!   oracles and the non-oracle industrial mechanisms (`ldp-apple`,
//!   `ldp-microsoft`), which is what the sharded parallel engine in
//!   `ldp-workloads` drives.
//! * [`noise`] — Laplace / discrete-geometric samplers shared by the
//!   mechanisms and by central-DP baselines.
//! * [`estimate`] — the statistical toolkit the tutorial teaches:
//!   debiasing, closed-form variances, and confidence tail bounds.
//!
//! ## The model
//!
//! A randomized client-side algorithm `M` is ε-LDP iff for all inputs
//! `v, v'` and all outputs `y`: `Pr[M(v) = y] ≤ e^ε · Pr[M(v') = y]`.
//! Every mechanism in this crate documents its `(p, q)` perturbation
//! probabilities and carries the proof obligation in tests: empirical
//! likelihood ratios never exceed `e^ε` (see `tests/` and each module's
//! property tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod estimate;
pub mod fo;
pub mod mean;
pub mod mech;
pub mod noise;
pub mod postprocess;
pub mod privacy;
pub mod rr;

pub use mech::BatchMechanism;
pub use privacy::{Epsilon, PrivacyBudget};

/// Errors surfaced by `ldp-core` constructors and estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The privacy parameter was not a positive, finite number.
    InvalidEpsilon(f64),
    /// A domain size was zero or otherwise unusable for the mechanism.
    InvalidDomain(String),
    /// A mechanism parameter was out of range.
    InvalidParameter(String),
    /// The privacy budget has been exhausted.
    BudgetExhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidEpsilon(e) => write!(f, "epsilon must be positive and finite, got {e}"),
            Error::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::BudgetExhausted {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "privacy budget exhausted: requested {requested}, remaining {remaining}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
