//! # `ldp-core` — the mechanisms of local differential privacy
//!
//! This crate implements §1.1 ("Introduction and Preliminaries") and the
//! frequency-oracle layer of §1.2 of the SIGMOD 2018 tutorial *"Privacy at
//! Scale: Local Differential Privacy in Practice"*:
//!
//! * [`privacy`] — the ε-LDP definition as a type ([`Epsilon`]), budget
//!   accounting and sequential composition ([`privacy::PrivacyBudget`]).
//! * [`rr`] — randomized response, from Warner's 1965 single-bit coin toss
//!   to the k-ary generalization that underlies direct encoding.
//! * [`fo`] — the frequency-oracle family of Wang et al. (USENIX Security
//!   2017): direct encoding (GRR), symmetric/optimized unary encoding
//!   (SUE = basic RAPPOR, OUE), summation/thresholding with histogram
//!   encoding (SHE, THE), binary/optimized local hashing (BLH, OLH), and
//!   Hadamard response — all behind one [`fo::FrequencyOracle`] trait.
//! * [`mean`] — numeric mechanisms: Duchi et al.'s minimax ±c mechanism,
//!   the Laplace mechanism, stochastic rounding, and the piecewise
//!   mechanism.
//! * [`mech`] — the cross-crate [`BatchMechanism`] abstraction: the
//!   batch-fused, mergeable collection contract shared by the frequency
//!   oracles and the non-oracle industrial mechanisms (`ldp-apple`,
//!   `ldp-microsoft`), which is what the sharded parallel engine in
//!   `ldp-workloads` drives.
//! * [`noise`] — Laplace / discrete-geometric samplers shared by the
//!   mechanisms and by central-DP baselines.
//! * [`estimate`] — the statistical toolkit the tutorial teaches:
//!   debiasing, closed-form variances, and confidence tail bounds.
//! * [`protocol`] — the deployment seam: a serializable
//!   [`ProtocolDescriptor`] (mechanism kind + parameters + version) with
//!   builder-side validation, and a [`Registry`] that instantiates any
//!   registered mechanism from a descriptor at runtime.
//! * [`wire`] — the compact binary report format every mechanism's
//!   reports encode to, and the object-safe [`wire::ErasedMechanism`]
//!   bridge that lets one collector service ingest `&[u8]` frames for
//!   any mechanism behind dynamic dispatch.
//!
//! ## The model
//!
//! A randomized client-side algorithm `M` is ε-LDP iff for all inputs
//! `v, v'` and all outputs `y`: `Pr[M(v) = y] ≤ e^ε · Pr[M(v') = y]`.
//! Every mechanism in this crate documents its `(p, q)` perturbation
//! probabilities and carries the proof obligation in tests: empirical
//! likelihood ratios never exceed `e^ε` (see `tests/` and each module's
//! property tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod estimate;
pub mod fo;
pub mod mean;
pub mod mech;
pub mod noise;
pub mod postprocess;
pub mod privacy;
pub mod protocol;
pub mod rr;
pub mod snapshot;
pub mod wire;

pub use mech::BatchMechanism;
pub use privacy::{Epsilon, PrivacyBudget};
pub use protocol::{MechanismKind, ProtocolDescriptor, Registry};

/// Errors surfaced on every public fallible path of the workspace:
/// mechanism construction, protocol-descriptor validation, registry
/// dispatch, and the wire format.
///
/// The descriptor/registry/wire layer ([`protocol`], [`wire`], and the
/// collector service built on them) is the *panic-free boundary* of the
/// workspace: everything reachable from serialized bytes — descriptors
/// and report frames — reports problems through this enum. The typed
/// constructors underneath keep their documented `assert!`s for
/// programmer errors (those are unreachable once a descriptor has
/// validated), and the hot randomize/accumulate loops stay assertion-thin.
#[derive(Debug, Clone, PartialEq)]
pub enum LdpError {
    /// The privacy parameter was not a positive, finite number.
    InvalidEpsilon(f64),
    /// A domain size was zero or otherwise unusable for the mechanism.
    InvalidDomain(String),
    /// A mechanism parameter was out of range.
    InvalidParameter(String),
    /// The privacy budget has been exhausted.
    BudgetExhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
    /// A [`ProtocolDescriptor`] failed validation (missing or
    /// inconsistent fields for its mechanism kind).
    InvalidDescriptor(String),
    /// The registry has no factory for the requested mechanism kind, or
    /// refuses to build it (see the raw local-hashing steering note on
    /// [`Registry::build`]).
    UnsupportedMechanism(String),
    /// A wire frame (or serialized descriptor) declared a format version
    /// this build does not speak.
    VersionMismatch {
        /// Version found in the frame.
        got: u8,
        /// Version this build encodes.
        expected: u8,
    },
    /// A wire frame carried a different report type than the mechanism
    /// it was fed to expects.
    ReportTypeMismatch {
        /// Report tag found in the frame.
        got: u8,
        /// Report tag the consuming mechanism expects.
        expected: u8,
    },
    /// A wire frame ended before its declared payload did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A wire frame or report payload was structurally invalid (bad
    /// varint, trailing garbage, out-of-range field, width mismatch).
    Malformed(String),
    /// A state snapshot was structurally valid but taken from an
    /// aggregator with different configuration (shape, channel
    /// probabilities, or hash family) than the one restoring it.
    StateMismatch(String),
    /// The aggregator was asked to [`fo::FoAggregator::try_subtract`]
    /// but its state has no exact merge inverse (floating-point sums
    /// that reassociate, or a raw report list with no window identity) —
    /// callers fall back to rebuilding the total from live deltas.
    NotSubtractive(String),
}

/// Pre-PR-5 name of [`LdpError`], kept so existing `ldp_core::Error`
/// call sites keep compiling.
pub type Error = LdpError;

impl std::fmt::Display for LdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdpError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            LdpError::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            LdpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            LdpError::BudgetExhausted {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "privacy budget exhausted: requested {requested}, remaining {remaining}"
                )
            }
            LdpError::InvalidDescriptor(msg) => write!(f, "invalid protocol descriptor: {msg}"),
            LdpError::UnsupportedMechanism(msg) => write!(f, "unsupported mechanism: {msg}"),
            LdpError::VersionMismatch { got, expected } => {
                write!(
                    f,
                    "wire version mismatch: frame says {got}, expected {expected}"
                )
            }
            LdpError::ReportTypeMismatch { got, expected } => {
                write!(
                    f,
                    "report type mismatch: frame tag {got}, expected {expected}"
                )
            }
            LdpError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, had {available}"
                )
            }
            LdpError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            LdpError::StateMismatch(msg) => write!(f, "snapshot state mismatch: {msg}"),
            LdpError::NotSubtractive(msg) => {
                write!(f, "aggregator state is not subtractive: {msg}")
            }
        }
    }
}

impl std::error::Error for LdpError {}

impl From<ldp_sketch::FwhtSizeError> for LdpError {
    /// A non-power-of-two Walsh–Hadamard length is a domain-shape
    /// problem: Hadamard-based mechanisms size their message space as
    /// `2^k`, so a buffer that violates that is an invalid domain.
    fn from(e: ldp_sketch::FwhtSizeError) -> Self {
        LdpError::InvalidDomain(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LdpError>;
