//! Unary-encoding frequency oracles: SUE (basic RAPPOR) and OUE.
//!
//! The client one-hot encodes its value into `d` bits and perturbs each bit
//! independently: a 1-bit survives as 1 with probability `p`, a 0-bit flips
//! to 1 with probability `q`. Privacy comes from the *pair* of flips that
//! distinguish two inputs: the likelihood ratio is
//! `(p/q)·((1−q)/(1−p)) ≤ e^ε`.
//!
//! * **SUE** (symmetric, `p + q = 1`, `p = e^{ε/2}/(e^{ε/2}+1)`) is exactly
//!   the perturbation inside Google's basic one-time RAPPOR.
//! * **OUE** (optimized: `p = ½`, `q = 1/(e^ε+1)`) spends the budget
//!   asymmetrically on protecting 0-bits — for large sparse domains almost
//!   all bits are 0, and Wang et al. showed this choice minimizes the
//!   noise floor, reaching `4e^ε/(e^ε−1)²` per user.
//!
//! Both encodings sample their set bits with geometric skipping
//! ([`crate::fo::batch`]): the one-hot position costs one Bernoulli(`p`)
//! draw, and the `d−1` zero positions cost one draw per *flipped* bit
//! instead of one per bit — `2 + (d−1)·q` expected draws per report. The
//! scalar [`FrequencyOracle::randomize`] and the fused
//! [`FrequencyOracle::randomize_accumulate_batch`] share this sampler, so
//! both paths consume identical RNG streams for a given seed.

use super::{batch, FoAggregator, FrequencyOracle, SetBitSampler};
use crate::estimate::debiased_count_variance;
use crate::privacy::Epsilon;
use crate::{Error, Result};
use ldp_sketch::BitVec;
use rand::{Rng, RngCore};

/// Shared implementation for unary encodings parameterized by `(p, q)`.
#[derive(Debug, Clone, Copy)]
struct UnaryCore {
    d: u64,
    epsilon: Epsilon,
    p: f64,
    q: f64,
    /// Geometric-skip sampler for the zero-position flip rate `q`,
    /// precomputed once per oracle (CDF boundary table).
    skip: batch::GeometricSkip,
}

impl UnaryCore {
    fn new(d: u64, epsilon: Epsilon, p: f64, q: f64) -> Self {
        Self {
            d,
            epsilon,
            p,
            q,
            skip: batch::GeometricSkip::new(q),
        }
    }

    /// Samples the set-bit positions of one perturbed report, invoking
    /// `on_one` for each: one Bernoulli(`p`) draw for the one-hot
    /// position, then geometric-skip sampling at rate `q` over the `d−1`
    /// remaining positions. The single sampling core behind both the
    /// scalar and the fused batch paths — which is what makes them
    /// RNG-stream-identical.
    #[inline]
    fn sample_ones<R: RngCore + ?Sized>(
        &self,
        value: u64,
        rng: &mut R,
        mut on_one: impl FnMut(usize),
    ) {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        if rng.gen_bool(self.p) {
            on_one(value as usize);
        }
        self.skip.sample_into(self.d - 1, rng, |k| {
            // Map the k-th zero-position slot past the one-hot position
            // (branchless: k is geometrically random, so a compare-jump
            // here would mispredict constantly).
            let pos = k + u64::from(k >= value);
            on_one(pos as usize);
        });
    }

    fn randomize<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> BitVec {
        let mut bits = BitVec::zeros(self.d as usize);
        self.sample_ones(value, rng, |i| bits.set(i, true));
        bits
    }
}

/// Symmetric unary encoding (SUE) — the perturbation of basic RAPPOR.
///
/// # Examples
/// ```
/// use ldp_core::fo::{FrequencyOracle, FoAggregator, SymmetricUnaryEncoding};
/// use ldp_core::Epsilon;
/// use rand::SeedableRng;
/// let sue = SymmetricUnaryEncoding::new(8, Epsilon::new(1.0).unwrap()).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut agg = sue.new_aggregator();
/// for _ in 0..2000 {
///     agg.accumulate(&sue.randomize(3, &mut rng));
/// }
/// let est = agg.estimate();
/// assert!(est[3] > 1500.0); // everyone holds item 3
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SymmetricUnaryEncoding {
    core: UnaryCore,
}

impl SymmetricUnaryEncoding {
    /// Creates SUE over a domain of `d ≥ 2` items.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!(
                "unary encoding needs d >= 2, got {d}"
            )));
        }
        let half = (epsilon.value() / 2.0).exp();
        Ok(Self {
            core: UnaryCore::new(d, epsilon, half / (half + 1.0), 1.0 / (half + 1.0)),
        })
    }

    /// `(p, q)` bit-keep probabilities.
    pub fn probabilities(&self) -> (f64, f64) {
        (self.core.p, self.core.q)
    }
}

/// Optimized unary encoding (OUE): `p = ½`, `q = 1/(e^ε+1)`.
#[derive(Debug, Clone, Copy)]
pub struct OptimizedUnaryEncoding {
    core: UnaryCore,
}

impl OptimizedUnaryEncoding {
    /// Creates OUE over a domain of `d ≥ 2` items.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!(
                "unary encoding needs d >= 2, got {d}"
            )));
        }
        Ok(Self {
            core: UnaryCore::new(d, epsilon, 0.5, 1.0 / (epsilon.exp() + 1.0)),
        })
    }

    /// `(p, q)` bit-keep probabilities.
    pub fn probabilities(&self) -> (f64, f64) {
        (self.core.p, self.core.q)
    }
}

macro_rules! impl_unary_oracle {
    ($ty:ty, $name:literal) => {
        impl FrequencyOracle for $ty {
            type Report = BitVec;
            type Aggregator = UnaryAggregator;

            fn name(&self) -> &'static str {
                $name
            }

            fn domain_size(&self) -> u64 {
                self.core.d
            }

            fn epsilon(&self) -> Epsilon {
                self.core.epsilon
            }

            fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> BitVec {
                self.core.randomize(value, rng)
            }

            fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
            where
                R: RngCore,
                F: FnMut(BitVec),
            {
                for &v in values {
                    sink(self.core.randomize(v, rng));
                }
            }

            /// Reusable-buffer batch path: one `BitVec` is cleared and
            /// re-filled per report, so a serializing consumer allocates
            /// nothing per report. Draws the same RNG stream as the
            /// owned-report path, so the emitted bits are identical.
            fn randomize_batch_ref<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
            where
                R: RngCore,
                F: FnMut(&BitVec),
            {
                let mut bits = BitVec::zeros(self.core.d as usize);
                for &v in values {
                    bits.clear();
                    self.core.sample_ones(v, rng, |i| bits.set(i, true));
                    sink(&bits);
                }
            }

            /// Fused batch path: adds each geometric-skip-sampled set bit
            /// directly into the aggregator's per-position counters — no
            /// `BitVec` is materialized, no per-report allocation happens.
            fn randomize_accumulate_batch<R: RngCore>(
                &self,
                values: &[u64],
                rng: &mut R,
                agg: &mut UnaryAggregator,
            ) {
                assert_eq!(
                    agg.ones.len(),
                    self.core.d as usize,
                    "aggregator width mismatch"
                );
                assert!(
                    agg.p == self.core.p && agg.q == self.core.q,
                    "aggregator channel mismatch"
                );
                for &v in values {
                    let ones = &mut agg.ones;
                    self.core.sample_ones(v, rng, |i| ones[i] += 1);
                    agg.n += 1;
                }
            }

            fn new_aggregator(&self) -> UnaryAggregator {
                UnaryAggregator {
                    ones: vec![0; self.core.d as usize],
                    n: 0,
                    p: self.core.p,
                    q: self.core.q,
                }
            }

            fn count_variance(&self, n: usize, f: f64) -> f64 {
                debiased_count_variance(n, f * n as f64, self.core.p, self.core.q)
            }

            fn report_bits(&self) -> usize {
                self.core.d as usize
            }
        }
    };
}

impl_unary_oracle!(SymmetricUnaryEncoding, "SUE");
impl_unary_oracle!(OptimizedUnaryEncoding, "OUE");

macro_rules! impl_set_bit_sampler {
    ($ty:ty) => {
        impl SetBitSampler for $ty {
            fn sample_ones<R: RngCore + ?Sized>(
                &self,
                value: u64,
                rng: &mut R,
                on_one: impl FnMut(usize),
            ) {
                self.core.sample_ones(value, rng, on_one);
            }
        }
    };
}

impl_set_bit_sampler!(SymmetricUnaryEncoding);
impl_set_bit_sampler!(OptimizedUnaryEncoding);

/// Aggregator for unary encodings: per-position 1-counts plus debiasing.
#[derive(Debug, Clone)]
pub struct UnaryAggregator {
    ones: Vec<u64>,
    n: usize,
    p: f64,
    q: f64,
}

impl crate::snapshot::StateSnapshot for UnaryAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::UNARY
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_counts(out, &self.ones);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_f64(r, self.p, "unary p")?;
        crate::snapshot::check_f64(r, self.q, "unary q")?;
        let n = crate::snapshot::get_count(r)?;
        let ones = crate::snapshot::get_counts(r, self.ones.len(), "unary ones")?;
        self.n = n;
        self.ones = ones;
        Ok(())
    }
}

impl FoAggregator for UnaryAggregator {
    type Report = BitVec;

    fn accumulate(&mut self, report: &BitVec) {
        assert_eq!(report.len(), self.ones.len(), "report width mismatch");
        report.accumulate_into(&mut self.ones);
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &BitVec) -> crate::Result<()> {
        if report.len() != self.ones.len() {
            return Err(crate::LdpError::Malformed(format!(
                "unary report width {} != domain size {}",
                report.len(),
                self.ones.len()
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn try_accumulate_packed_bits(
        &mut self,
        bytes: &[u8],
        bits: usize,
    ) -> Option<crate::Result<()>> {
        let res = super::accumulate_packed_ones(&mut self.ones, bytes, bits);
        if res.is_ok() {
            self.n += 1;
        }
        Some(res)
    }

    fn try_accumulate_packed_bits_batch(
        &mut self,
        payloads: &[(&[u8], usize)],
    ) -> Option<(usize, crate::Result<()>)> {
        let (applied, res) = super::accumulate_packed_ones_batch(&mut self.ones, payloads);
        self.n += applied;
        Some((applied, res))
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.ones
            .iter()
            .map(|&o| (o as f64 - n * self.q) / (self.p - self.q))
            .collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.ones.len(), other.ones.len(), "merge: domain mismatch");
        assert!(
            self.p == other.p && self.q == other.q,
            "merge: channel probability mismatch"
        );
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.ones.len() != other.ones.len() || self.p != other.p || self.q != other.q {
            return Err(crate::LdpError::StateMismatch(
                "subtract: unary configuration mismatch".into(),
            ));
        }
        if self.n < other.n || !super::counts_fit(&self.ones, &other.ones) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: unary subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        super::subtract_counts(&mut self.ones, &other.ones);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn sue_probabilities_satisfy_ldp() {
        let sue = SymmetricUnaryEncoding::new(16, eps(1.0)).unwrap();
        let (p, q) = sue.probabilities();
        // p + q = 1 (symmetric) and (p/q)((1-q)/(1-p)) = e^eps.
        assert!((p + q - 1.0).abs() < 1e-12);
        let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
        assert!((ratio - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn oue_probabilities_satisfy_ldp() {
        let oue = OptimizedUnaryEncoding::new(16, eps(1.0)).unwrap();
        let (p, q) = oue.probabilities();
        assert_eq!(p, 0.5);
        let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
        assert!((ratio - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn oue_noise_floor_formula() {
        // Var* = n 4 e^eps / (e^eps - 1)^2.
        let e = 1.3f64;
        let oue = OptimizedUnaryEncoding::new(32, eps(e)).unwrap();
        let n = 1000;
        let expected = n as f64 * 4.0 * e.exp() / (e.exp() - 1.0).powi(2);
        let got = oue.noise_floor_variance(n);
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn oue_beats_sue_everywhere() {
        for &e in &[0.5, 1.0, 2.0, 4.0] {
            let oue = OptimizedUnaryEncoding::new(64, eps(e)).unwrap();
            let sue = SymmetricUnaryEncoding::new(64, eps(e)).unwrap();
            assert!(
                oue.noise_floor_variance(100) <= sue.noise_floor_variance(100) * 1.0001,
                "eps={e}"
            );
        }
    }

    #[test]
    fn estimates_unbiased_over_trials() {
        let oue = OptimizedUnaryEncoding::new(8, eps(0.8)).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let n = 4000;
        let trials = 30;
        let mut sum0 = 0.0;
        for _ in 0..trials {
            let mut agg = oue.new_aggregator();
            for u in 0..n {
                // item 0 has frequency 1/4
                let v = if u % 4 == 0 { 0 } else { 1 + (u % 7) as u64 };
                agg.accumulate(&oue.randomize(v, &mut rng));
            }
            sum0 += agg.estimate()[0];
        }
        let avg0 = sum0 / trials as f64;
        let truth = n as f64 / 4.0;
        // Tolerance rationale: each trial's estimate has sd at least
        // sqrt(noise_floor_variance(n)) ≈ 154 here, so the mean of 30
        // i.i.d. trials has sd ≈ 28. A 5-sigma band keeps the false-alarm
        // rate around 1e-6 while still catching any real debiasing error
        // (which would shift the mean by O(truth), not O(sd)).
        let sd_of_mean = (oue.noise_floor_variance(n) / trials as f64).sqrt();
        assert!(
            (avg0 - truth).abs() < 5.0 * sd_of_mean,
            "avg={avg0} truth={truth} sd_of_mean={sd_of_mean}"
        );
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let oue = OptimizedUnaryEncoding::new(4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(37);
        let n = 1000;
        let trials = 2000;
        let f0 = 0.25;
        let ests: Vec<f64> = (0..trials)
            .map(|_| {
                let mut agg = oue.new_aggregator();
                for u in 0..n {
                    let v = if u % 4 == 0 { 0u64 } else { (u % 3 + 1) as u64 };
                    agg.accumulate(&oue.randomize(v, &mut rng));
                }
                agg.estimate()[0]
            })
            .collect();
        let var = crate::estimate::variance(&ests);
        let predicted = oue.count_variance(n, f0);
        assert!(
            (var - predicted).abs() / predicted < 0.15,
            "var={var} predicted={predicted}"
        );
    }

    /// The per-bit marginals of the geometric-skip sampler: the one-hot
    /// bit survives at rate `p`, every other bit flips on at rate `q`.
    #[test]
    fn geometric_skip_flips_match_bernoulli_marginals() {
        let oue = OptimizedUnaryEncoding::new(48, eps(1.0)).unwrap();
        let (p, q) = oue.probabilities();
        let mut rng = StdRng::seed_from_u64(41);
        let n = 60_000u64;
        let value = 17u64;
        let mut counts = vec![0u64; 48];
        for _ in 0..n {
            oue.core.sample_ones(value, &mut rng, |i| counts[i] += 1);
        }
        let sd_q = (q * (1.0 - q) / n as f64).sqrt();
        let sd_p = (p * (1.0 - p) / n as f64).sqrt();
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            let (expected, sd) = if i as u64 == value {
                (p, sd_p)
            } else {
                (q, sd_q)
            };
            assert!(
                (rate - expected).abs() < 5.0 * sd,
                "bit {i}: rate={rate} expected={expected}"
            );
        }
    }

    /// Batch and fused paths replay the scalar RNG stream exactly: same
    /// seed ⇒ identical reports and bit-identical aggregator estimates.
    #[test]
    fn batch_paths_bit_identical_to_scalar() {
        let sue = SymmetricUnaryEncoding::new(37, eps(0.7)).unwrap();
        let values: Vec<u64> = (0..500).map(|i| i % 37).collect();

        let mut scalar_rng = StdRng::seed_from_u64(77);
        let mut scalar_agg = sue.new_aggregator();
        let scalar_reports: Vec<BitVec> = values
            .iter()
            .map(|&v| sue.randomize(v, &mut scalar_rng))
            .collect();
        for r in &scalar_reports {
            scalar_agg.accumulate(r);
        }

        let mut batch_rng = StdRng::seed_from_u64(77);
        let mut batch_reports = Vec::new();
        sue.randomize_batch(&values, &mut batch_rng, |r| batch_reports.push(r));
        assert_eq!(batch_reports, scalar_reports);

        let mut fused_rng = StdRng::seed_from_u64(77);
        let mut fused_agg = sue.new_aggregator();
        sue.randomize_accumulate_batch(&values, &mut fused_rng, &mut fused_agg);
        assert_eq!(fused_agg.reports(), scalar_agg.reports());
        assert_eq!(fused_agg.ones, scalar_agg.ones);
        assert_eq!(fused_agg.estimate(), scalar_agg.estimate());
    }

    #[test]
    fn rejects_domain_of_one() {
        assert!(SymmetricUnaryEncoding::new(1, eps(1.0)).is_err());
        assert!(OptimizedUnaryEncoding::new(1, eps(1.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let oue = OptimizedUnaryEncoding::new(4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        oue.randomize(4, &mut rng);
    }
}
