//! Local-hashing frequency oracles: BLH and OLH.
//!
//! For massive domains, transmitting `d` bits (unary encodings) is
//! impossible and direct encoding is hopeless. Local hashing sidesteps
//! both: each user draws a *public* random hash function `h : [d] → [g]`
//! (transmitted as a 64-bit seed), hashes their value, and perturbs the
//! *hashed* value with k-ary randomized response over `[g]`. The report is
//! `(seed, perturbed bucket)` — constant size regardless of `d`.
//!
//! The server counts, for each candidate `v`, how many reports *support*
//! it (`h_seed(v) == bucket`). A non-held candidate is supported with
//! probability exactly `1/g` in expectation over seeds, giving the
//! debiasing pair `p* = e^ε/(e^ε+g−1)`, `q* = 1/g`.
//!
//! * **BLH** fixes `g = 2` (one-bit bucket).
//! * **OLH** chooses `g = e^ε + 1`, the value minimizing the noise floor —
//!   which then equals OUE's `4e^ε/(e^ε−1)²` with exponentially less
//!   communication. OLH is the default general-purpose oracle in this
//!   workspace.
//!
//! ## Fully random seeds vs cohorts
//!
//! With a fresh random seed per user ([`LocalHashing`]), the aggregator
//! has no sufficient statistic: it must keep all `n` raw reports and scan
//! them per candidate — `O(n)` memory and `O(n·d)` for a full-domain
//! estimate, which is hopeless at deployment scale.
//! [`CohortLocalHashing`] restricts the public randomness RAPPOR-style:
//! users draw one of `C` fixed public seeds (their *cohort*), so the
//! aggregator only needs the `C×g` matrix of bucket counts — `O(C·g)`
//! memory, `O(C·d)` estimation, and O(1) mergeable across shards. Privacy
//! is identical (the seed was public either way); the cost is a small
//! extra variance term from hash collisions shared within a cohort, which
//! shrinks as `1/C` (see [`CohortLocalHashing::count_variance`]).

use super::{FoAggregator, FrequencyOracle};
use crate::estimate::debiased_count_variance;
use crate::privacy::Epsilon;
use crate::rr::KaryRandomizedResponse;
use ldp_sketch::hash::{mix64, HashFamily};
use rand::{Rng, RngCore};

/// A local-hashing report: the user's hash seed and the perturbed bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LhReport {
    /// The hash-function seed the user drew (public randomness).
    pub seed: u64,
    /// The k-ary-RR-perturbed value of `h_seed(value)`.
    pub bucket: u64,
}

/// Local hashing with an arbitrary bucket count `g ≥ 2`.
///
/// Use [`OptimizedLocalHashing`] (g = e^ε+1) or [`BinaryLocalHashing`]
/// (g = 2) unless you are sweeping `g` for an ablation.
#[derive(Debug, Clone, Copy)]
pub struct LocalHashing {
    d: u64,
    g: u64,
    epsilon: Epsilon,
    family: HashFamily,
    rr: KaryRandomizedResponse,
}

impl LocalHashing {
    /// Creates a local-hashing oracle with `g` buckets.
    ///
    /// # Panics
    /// Panics if `d == 0` or `g < 2`.
    pub fn with_g(d: u64, g: u64, epsilon: Epsilon) -> Self {
        assert!(d > 0, "domain must be non-empty");
        assert!(g >= 2, "local hashing needs g >= 2, got {g}");
        Self {
            d,
            g,
            epsilon,
            family: HashFamily::new(g),
            rr: KaryRandomizedResponse::new(g, epsilon).expect("g >= 2"),
        }
    }

    /// The bucket count `g`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// The `(p*, q*)` support-probability pair used for debiasing.
    pub fn support_probabilities(&self) -> (f64, f64) {
        (self.rr.p(), 1.0 / self.g as f64)
    }

    /// Shared sampling core for the scalar and batch paths: seed draw,
    /// hash, k-ary RR — at most three uniform draws per report.
    #[inline]
    fn randomize_impl<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> LhReport {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let seed: u64 = rng.gen();
        let bucket = self.family.hash(value, seed);
        let perturbed = self.rr.randomize(bucket, rng);
        LhReport {
            seed,
            bucket: perturbed,
        }
    }
}

impl FrequencyOracle for LocalHashing {
    type Report = LhReport;
    type Aggregator = LhAggregator;

    fn name(&self) -> &'static str {
        if self.g == 2 {
            "BLH"
        } else {
            "OLH"
        }
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> LhReport {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(LhReport),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Fused batch path: reports are pushed straight into the raw-report
    /// store with monomorphized draws (there is no smaller sufficient
    /// statistic for random-seed local hashing — use
    /// [`CohortLocalHashing`] for one).
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut LhAggregator,
    ) {
        assert_eq!(agg.d, self.d, "aggregator domain mismatch");
        agg.reports.reserve(values.len());
        for &v in values {
            agg.reports.push(self.randomize_impl(v, rng));
        }
    }

    fn new_aggregator(&self) -> LhAggregator {
        let (p, q) = self.support_probabilities();
        LhAggregator {
            reports: Vec::new(),
            d: self.d,
            family: self.family,
            p,
            q,
        }
    }

    fn count_variance(&self, n: usize, f: f64) -> f64 {
        let (p, q) = self.support_probabilities();
        debiased_count_variance(n, f * n as f64, p, q)
    }

    fn report_bits(&self) -> usize {
        64 + (64 - (self.g - 1).leading_zeros()) as usize
    }
}

/// Binary local hashing (`g = 2`): the one-bit-per-user protocol of
/// Bassily–Smith, phrased in the Wang et al. framework.
#[derive(Debug, Clone, Copy)]
pub struct BinaryLocalHashing(LocalHashing);

impl BinaryLocalHashing {
    /// Creates BLH over `[0, d)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        Self(LocalHashing::with_g(d, 2, epsilon))
    }
}

/// Optimized local hashing (`g = ⌊e^ε⌋ + 1`), the variance-optimal choice.
#[derive(Debug, Clone, Copy)]
pub struct OptimizedLocalHashing(LocalHashing);

impl OptimizedLocalHashing {
    /// Creates OLH over `[0, d)` with the optimal bucket count
    /// `g = max(2, round(e^ε + 1))`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        let g = ((epsilon.exp() + 1.0).round() as u64).max(2);
        Self(LocalHashing::with_g(d, g, epsilon))
    }

    /// The chosen bucket count.
    pub fn g(&self) -> u64 {
        self.0.g()
    }
}

macro_rules! delegate_oracle {
    ($ty:ty, $name:literal) => {
        impl FrequencyOracle for $ty {
            type Report = LhReport;
            type Aggregator = LhAggregator;

            fn name(&self) -> &'static str {
                $name
            }

            fn domain_size(&self) -> u64 {
                self.0.domain_size()
            }

            fn epsilon(&self) -> Epsilon {
                self.0.epsilon()
            }

            fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> LhReport {
                self.0.randomize(value, rng)
            }

            fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, sink: F)
            where
                R: RngCore,
                F: FnMut(LhReport),
            {
                self.0.randomize_batch(values, rng, sink)
            }

            fn randomize_accumulate_batch<R: RngCore>(
                &self,
                values: &[u64],
                rng: &mut R,
                agg: &mut LhAggregator,
            ) {
                self.0.randomize_accumulate_batch(values, rng, agg)
            }

            fn new_aggregator(&self) -> LhAggregator {
                self.0.new_aggregator()
            }

            fn count_variance(&self, n: usize, f: f64) -> f64 {
                self.0.count_variance(n, f)
            }

            fn report_bits(&self) -> usize {
                self.0.report_bits()
            }
        }
    };
}

delegate_oracle!(BinaryLocalHashing, "BLH");
delegate_oracle!(OptimizedLocalHashing, "OLH");

/// Aggregator for local hashing.
///
/// Stores raw reports; a point estimate for item `v` scans them counting
/// support (`h_seed(v) == bucket`). `estimate()` over the full domain costs
/// `O(n·d)` — that is inherent to local hashing and is why heavy-hitter
/// protocols only query candidate sets via
/// [`estimate_items`](FoAggregator::estimate_items).
#[derive(Debug, Clone)]
pub struct LhAggregator {
    reports: Vec<LhReport>,
    d: u64,
    family: HashFamily,
    p: f64,
    q: f64,
}

impl LhAggregator {
    /// Support count for a single item.
    fn support(&self, item: u64) -> u64 {
        self.reports
            .iter()
            .filter(|r| self.family.hash(item, r.seed) == r.bucket)
            .count() as u64
    }

    /// Debiased count estimate for one item.
    #[inline]
    fn estimate_one(&self, item: u64, n: f64) -> f64 {
        debug_assert!(item < self.d);
        (self.support(item) as f64 - n * self.q) / (self.p - self.q)
    }
}

impl crate::snapshot::StateSnapshot for LhAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::LOCAL_HASH
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_uvarint(out, self.d);
        crate::wire::put_uvarint(out, self.family.range());
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.reports.len());
        for rep in &self.reports {
            crate::wire::put_u64_le(out, rep.seed);
            crate::wire::put_uvarint(out, rep.bucket);
        }
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_u64(r, self.d, "BLH/OLH domain size")?;
        crate::snapshot::check_u64(r, self.family.range(), "BLH/OLH hash range")?;
        crate::snapshot::check_f64(r, self.p, "BLH/OLH p")?;
        crate::snapshot::check_f64(r, self.q, "BLH/OLH q")?;
        let len = crate::snapshot::get_count(r)?;
        // Each report costs at least 9 bytes (8-byte seed + >= 1-byte
        // bucket varint); bound the allocation before trusting `len`.
        if r.remaining() < len.saturating_mul(9) {
            return Err(crate::LdpError::Truncated {
                needed: len.saturating_mul(9),
                available: r.remaining(),
            });
        }
        let mut reports = Vec::with_capacity(len);
        for _ in 0..len {
            let seed = r.u64_le()?;
            let bucket = r.uvarint()?;
            if bucket >= self.family.range() {
                return Err(crate::LdpError::Malformed(format!(
                    "snapshot local-hashing bucket {bucket} outside range {}",
                    self.family.range()
                )));
            }
            reports.push(LhReport { seed, bucket });
        }
        self.reports = reports;
        Ok(())
    }
}

impl FoAggregator for LhAggregator {
    type Report = LhReport;

    fn accumulate(&mut self, report: &LhReport) {
        self.reports.push(*report);
    }

    fn try_accumulate(&mut self, report: &LhReport) -> crate::Result<()> {
        if report.bucket >= self.family.range() {
            return Err(crate::LdpError::Malformed(format!(
                "local-hashing bucket {} outside range {}",
                report.bucket,
                self.family.range()
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.reports.len()
    }

    fn estimate(&self) -> Vec<f64> {
        // Iterate the domain range directly — no scratch `Vec<u64>` of all
        // item ids just to look each one up again.
        let n = self.reports.len() as f64;
        (0..self.d).map(|v| self.estimate_one(v, n)).collect()
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        let n = self.reports.len() as f64;
        items.iter().map(|&v| self.estimate_one(v, n)).collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.d, other.d, "merge: domain mismatch");
        assert_eq!(self.family, other.family, "merge: hash family mismatch");
        assert!(
            self.p == other.p && self.q == other.q,
            "merge: channel probability mismatch"
        );
        self.reports.extend(other.reports);
    }

    /// Raw local hashing keeps the trait's refusal, with its own reason:
    /// the state is the report list itself, and a window's contribution
    /// has no identity inside it — removing "equal" reports could strip
    /// a different user's coincidentally identical `(seed, bucket)` pair
    /// and still would not restore the original list order bit for bit.
    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        let _ = other;
        Err(crate::LdpError::NotSubtractive(
            "raw local hashing keeps a report list; window deltas have no identity in it".into(),
        ))
    }
}

/// Default cohort count for [`CohortLocalHashing::optimized`]: large
/// enough that the shared-collision variance term is negligible next to
/// the randomized-response noise floor for populations up to millions of
/// users, small enough that the `C×g` matrix stays in cache.
pub const DEFAULT_COHORTS: u32 = 1024;

/// Seed base that [`CohortLocalHashing::optimized`] derives its public
/// cohort seeds from. Any value works; deployments that re-run collection
/// rounds should rotate it so collision patterns don't persist.
pub const DEFAULT_COHORT_SEED_BASE: u64 = 0x1db3_c5a7_92e4_6f01;

/// Derives the public hash seed of one cohort. The multiplier walk is
/// injective over `u32` cohort indices and `mix64` is a bijection, so all
/// `C` seeds are distinct.
#[inline]
fn cohort_seed(seed_base: u64, cohort: u32) -> u64 {
    mix64(seed_base ^ (cohort as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A cohort-mode local-hashing report: the user's public cohort index and
/// the perturbed bucket. Constant size — `log C + log g` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortLhReport {
    /// Cohort index in `[0, C)`; selects one of the `C` public hash seeds.
    pub cohort: u32,
    /// The k-ary-RR-perturbed value of `h_cohort(value)`.
    pub bucket: u32,
}

/// Local hashing with the seed drawn from a fixed public set of `C`
/// cohorts (RAPPOR-style), making the aggregate a `C×g` count matrix.
///
/// Compared to [`LocalHashing`] this changes nothing about privacy — the
/// seed is public randomness in both designs — but collapses the
/// aggregator from `O(n)` raw reports to an `O(C·g)` sufficient
/// statistic, and full-domain estimation from `O(n·d)` to `O(C·d)`. Use
/// the fully-random-seed [`LocalHashing`] only for ablations.
#[derive(Debug, Clone, Copy)]
pub struct CohortLocalHashing {
    d: u64,
    g: u64,
    cohorts: u32,
    seed_base: u64,
    epsilon: Epsilon,
    family: HashFamily,
    rr: KaryRandomizedResponse,
}

impl CohortLocalHashing {
    /// Creates cohort-mode OLH with the variance-optimal bucket count
    /// `g = max(2, round(e^ε + 1))` and the default seed base.
    ///
    /// # Panics
    /// Panics if `d == 0` or `cohorts == 0`.
    pub fn optimized(d: u64, cohorts: u32, epsilon: Epsilon) -> Self {
        Self::optimized_with_seed(d, cohorts, DEFAULT_COHORT_SEED_BASE, epsilon)
    }

    /// Creates variance-optimal cohort-mode OLH with an explicit seed
    /// base. Protocols that run repeated collection rounds should draw a
    /// fresh seed base per round so the cohort seed set — and with it any
    /// shared-collision pattern — rotates instead of biasing the same
    /// item pairs every time.
    ///
    /// # Panics
    /// Panics if `d == 0` or `cohorts == 0`.
    pub fn optimized_with_seed(d: u64, cohorts: u32, seed_base: u64, epsilon: Epsilon) -> Self {
        let g = ((epsilon.exp() + 1.0).round() as u64).max(2);
        Self::with_params(d, g, cohorts, seed_base, epsilon)
    }

    /// Creates cohort-mode local hashing with explicit bucket count,
    /// cohort count, and seed base (the public randomness the `C` cohort
    /// seeds are derived from).
    ///
    /// # Panics
    /// Panics if `d == 0`, `g < 2`, `g > u32::MAX` (reports store the
    /// bucket as `u32`), or `cohorts == 0`.
    pub fn with_params(d: u64, g: u64, cohorts: u32, seed_base: u64, epsilon: Epsilon) -> Self {
        assert!(d > 0, "domain must be non-empty");
        assert!(g >= 2, "local hashing needs g >= 2, got {g}");
        assert!(
            g <= u32::MAX as u64,
            "bucket count {g} exceeds the u32 report encoding"
        );
        assert!(cohorts >= 1, "need at least one cohort");
        Self {
            d,
            g,
            cohorts,
            seed_base,
            epsilon,
            family: HashFamily::new(g),
            rr: KaryRandomizedResponse::new(g, epsilon).expect("g >= 2"),
        }
    }

    /// The bucket count `g`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// The cohort count `C`.
    pub fn cohorts(&self) -> u32 {
        self.cohorts
    }

    /// The seed base the public cohort seeds derive from.
    pub fn seed_base(&self) -> u64 {
        self.seed_base
    }

    /// The public hash seed of cohort `c`.
    ///
    /// # Panics
    /// Panics if `c >= cohorts()`.
    pub fn cohort_seed(&self, c: u32) -> u64 {
        assert!(c < self.cohorts, "cohort {c} out of range");
        cohort_seed(self.seed_base, c)
    }

    /// The `(p*, q*)` support-probability pair used for debiasing. `q*`
    /// is exactly `1/g` in expectation over the seed-base choice; for a
    /// fixed public seed set it deviates by `O(1/√(C·g))`.
    pub fn support_probabilities(&self) -> (f64, f64) {
        (self.rr.p(), 1.0 / self.g as f64)
    }

    /// Shared sampling core for the scalar and batch paths: cohort draw,
    /// hash against the cohort's public seed, k-ary RR.
    #[inline]
    fn randomize_impl<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> CohortLhReport {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let cohort = rng.gen_range(0..self.cohorts);
        let bucket = self.family.hash(value, cohort_seed(self.seed_base, cohort));
        let perturbed = self.rr.randomize(bucket, rng);
        CohortLhReport {
            cohort,
            bucket: perturbed as u32,
        }
    }
}

impl FrequencyOracle for CohortLocalHashing {
    type Report = CohortLhReport;
    type Aggregator = CohortLhAggregator;

    fn name(&self) -> &'static str {
        "OLH-C"
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> CohortLhReport {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(CohortLhReport),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Fused batch path: each report increments its `C×g` matrix cell
    /// directly — no report struct crosses an API boundary, and every
    /// uniform draw is monomorphized.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut CohortLhAggregator,
    ) {
        assert!(
            agg.d == self.d
                && agg.g == self.g
                && agg.cohorts == self.cohorts
                && agg.seed_base == self.seed_base,
            "aggregator configuration mismatch"
        );
        let g = self.g as usize;
        for &v in values {
            let r = self.randomize_impl(v, rng);
            agg.counts[r.cohort as usize * g + r.bucket as usize] += 1;
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> CohortLhAggregator {
        let (p, q) = self.support_probabilities();
        CohortLhAggregator {
            counts: vec![0; self.cohorts as usize * self.g as usize],
            n: 0,
            d: self.d,
            g: self.g,
            cohorts: self.cohorts,
            seed_base: self.seed_base,
            family: self.family,
            p,
            q,
        }
    }

    /// Analytical variance: the OLH noise floor **plus** an upper bound on
    /// the cohort-collision term.
    ///
    /// With fully random per-user seeds, hash collisions between the
    /// queried item and each other user's item are independent events and
    /// their randomness is already inside the `q(1−q)` binomial term. With
    /// `C` shared seeds, all users of a cohort collide (or not) together:
    /// a collision shifts a user's support probability from
    /// `q̃ = (1−p)/(g−1)` to `p`, so conditioned on the public seed set
    /// the estimate carries a mean-zero bias whose variance over the
    /// seed-base draw is
    /// `Σ_{u≠v} n_u² · q(1−q) · (p−q̃)² / (C·(p−q)²)`.
    /// `Σ n_u²` is bounded by `((1−f)·n)²` (all remaining mass on one
    /// item), which is what this method charges — the true term is smaller
    /// for spread-out populations, and shrinks as `1/C`.
    fn count_variance(&self, n: usize, f: f64) -> f64 {
        let (p, q) = self.support_probabilities();
        let base = debiased_count_variance(n, f * n as f64, p, q);
        let q_tilde = (1.0 - p) / (self.g as f64 - 1.0);
        let other_mass = (1.0 - f) * n as f64;
        let collision = other_mass * other_mass * q * (1.0 - q) * (p - q_tilde) * (p - q_tilde)
            / (self.cohorts as f64 * (p - q) * (p - q));
        base + collision
    }

    fn report_bits(&self) -> usize {
        (64 - (self.cohorts as u64 - 1).leading_zeros()) as usize
            + (64 - (self.g - 1).leading_zeros()) as usize
    }
}

/// Aggregator for [`CohortLocalHashing`]: the `C×g` matrix of perturbed
/// bucket counts — a constant-size sufficient statistic.
///
/// A full-domain `estimate()` walks the matrix once per cohort,
/// `O(C·d)` hash evaluations total, independent of the report count; the
/// cohort loop is outermost so each `g`-wide row stays in cache.
#[derive(Debug, Clone)]
pub struct CohortLhAggregator {
    /// Row-major `C×g` bucket counts: `counts[c*g + b]`.
    counts: Vec<u64>,
    n: usize,
    d: u64,
    g: u64,
    cohorts: u32,
    seed_base: u64,
    family: HashFamily,
    p: f64,
    q: f64,
}

impl CohortLhAggregator {
    /// The raw row-major `C×g` count matrix (for tests and persistence).
    pub fn count_matrix(&self) -> &[u64] {
        &self.counts
    }

    /// Raw support counts (reports whose cohort hashes the item onto the
    /// reported bucket) for each queried item. Takes a re-iterable item
    /// sequence so the full-domain sweep can pass `0..d` without
    /// materializing an all-items scratch `Vec`; the cohort loop stays
    /// outermost so each `g`-wide row stays in cache.
    fn support_counts<I>(&self, items: I, len: usize) -> Vec<u64>
    where
        I: Iterator<Item = u64> + Clone,
    {
        let g = self.g as usize;
        let mut support = vec![0u64; len];
        for c in 0..self.cohorts {
            let seed = cohort_seed(self.seed_base, c);
            let row = &self.counts[c as usize * g..(c as usize + 1) * g];
            for (s, v) in support.iter_mut().zip(items.clone()) {
                debug_assert!(v < self.d, "item {v} outside domain {}", self.d);
                *s += row[self.family.hash(v, seed) as usize];
            }
        }
        support
    }

    /// Debiases raw support counts into unbiased count estimates.
    fn debias(&self, support: Vec<u64>) -> Vec<f64> {
        let n = self.n as f64;
        support
            .into_iter()
            .map(|s| (s as f64 - n * self.q) / (self.p - self.q))
            .collect()
    }
}

impl crate::snapshot::StateSnapshot for CohortLhAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::COHORT_HASH
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_uvarint(out, self.d);
        crate::wire::put_uvarint(out, self.g);
        crate::wire::put_uvarint(out, u64::from(self.cohorts));
        crate::wire::put_u64_le(out, self.seed_base);
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_counts(out, &self.counts);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_u64(r, self.d, "OLH-C domain size")?;
        crate::snapshot::check_u64(r, self.g, "OLH-C bucket count")?;
        crate::snapshot::check_u64(r, u64::from(self.cohorts), "OLH-C cohorts")?;
        crate::snapshot::check_u64_le(r, self.seed_base, "OLH-C seed base")?;
        crate::snapshot::check_f64(r, self.p, "OLH-C p")?;
        crate::snapshot::check_f64(r, self.q, "OLH-C q")?;
        let n = crate::snapshot::get_count(r)?;
        let counts = crate::snapshot::get_counts(r, self.counts.len(), "OLH-C count matrix")?;
        self.n = n;
        self.counts = counts;
        Ok(())
    }
}

impl FoAggregator for CohortLhAggregator {
    type Report = CohortLhReport;

    fn try_accumulate(&mut self, report: &CohortLhReport) -> crate::Result<()> {
        if report.cohort >= self.cohorts || report.bucket as u64 >= self.g {
            return Err(crate::LdpError::Malformed(format!(
                "cohort report ({}, {}) outside the {}x{} cohort matrix",
                report.cohort, report.bucket, self.cohorts, self.g
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn accumulate(&mut self, report: &CohortLhReport) {
        assert!(
            report.cohort < self.cohorts && (report.bucket as u64) < self.g,
            "report ({}, {}) outside the {}x{} cohort matrix",
            report.cohort,
            report.bucket,
            self.cohorts,
            self.g
        );
        self.counts[report.cohort as usize * self.g as usize + report.bucket as usize] += 1;
        self.n += 1;
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        // Sweep the domain range directly — no all-items scratch Vec.
        self.debias(self.support_counts(0..self.d, self.d as usize))
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        self.debias(self.support_counts(items.iter().copied(), items.len()))
    }

    fn merge(&mut self, other: Self) {
        assert!(
            self.d == other.d
                && self.g == other.g
                && self.cohorts == other.cohorts
                && self.seed_base == other.seed_base
                && self.p == other.p
                && self.q == other.q,
            "merge: cohort aggregator configuration mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.d != other.d
            || self.g != other.g
            || self.cohorts != other.cohorts
            || self.seed_base != other.seed_base
            || self.p != other.p
            || self.q != other.q
        {
            return Err(crate::LdpError::StateMismatch(
                "subtract: OLH-C configuration mismatch".into(),
            ));
        }
        if self.n < other.n || !super::counts_fit(&self.counts, &other.counts) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: OLH-C subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        super::subtract_counts(&mut self.counts, &other.counts);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn olh_bucket_count_tracks_eps() {
        assert_eq!(OptimizedLocalHashing::new(100, eps(1.0)).g(), 4); // e+1 ≈ 3.7 -> 4
        assert_eq!(OptimizedLocalHashing::new(100, eps(2.0)).g(), 8); // e^2+1 ≈ 8.4 -> 8
        assert!(OptimizedLocalHashing::new(100, eps(0.1)).g() >= 2);
    }

    #[test]
    fn olh_matches_oue_noise_floor_approximately() {
        let e = eps(1.0);
        let n = 1000;
        let olh = OptimizedLocalHashing::new(1 << 16, e);
        let expected = n as f64 * 4.0 * 1.0f64.exp() / (1.0f64.exp() - 1.0).powi(2);
        let got = olh.noise_floor_variance(n);
        // g is rounded to an integer so allow 15% slack.
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn blh_noise_floor_formula() {
        // BLH: p = e^eps/(e^eps+1), q = 1/2 ->
        // Var* = n q(1-q)/(p-q)^2 = n (e^eps+1)^2 / (e^eps-1)^2.
        let e = 1.0f64;
        let blh = BinaryLocalHashing::new(1000, eps(e));
        let n = 500;
        let expected = n as f64 * (e.exp() + 1.0).powi(2) / (e.exp() - 1.0).powi(2);
        let got = blh.noise_floor_variance(n);
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn olh_estimates_unbiased() {
        let olh = OptimizedLocalHashing::new(64, eps(2.0));
        let mut rng = StdRng::seed_from_u64(51);
        let n = 40_000;
        let mut agg = olh.new_aggregator();
        for u in 0..n {
            let v = (u % 8) as u64; // items 0..8 each hold 1/8 of users
            agg.accumulate(&olh.randomize(v, &mut rng));
        }
        let est = agg.estimate();
        for (i, &e) in est.iter().enumerate().take(8) {
            let truth = n as f64 / 8.0;
            let sd = olh.count_variance(n, 1.0 / 8.0).sqrt();
            assert!((e - truth).abs() < 5.0 * sd, "item {i}: est={e}");
        }
        // Unheld items near zero.
        for (i, &e) in est.iter().enumerate().skip(8) {
            let sd = olh.noise_floor_variance(n).sqrt();
            assert!(e.abs() < 5.0 * sd, "item {i}: est={e}");
        }
    }

    #[test]
    fn estimate_items_matches_full_estimate() {
        let olh = OptimizedLocalHashing::new(32, eps(1.0));
        let mut rng = StdRng::seed_from_u64(53);
        let mut agg = olh.new_aggregator();
        for u in 0..2000u64 {
            agg.accumulate(&olh.randomize(u % 32, &mut rng));
        }
        let full = agg.estimate();
        let subset = agg.estimate_items(&[0, 7, 31]);
        assert_eq!(subset[0], full[0]);
        assert_eq!(subset[1], full[7]);
        assert_eq!(subset[2], full[31]);
    }

    #[test]
    fn blh_estimates_unbiased() {
        let blh = BinaryLocalHashing::new(16, eps(2.0));
        let mut rng = StdRng::seed_from_u64(57);
        let n = 60_000;
        let mut agg = blh.new_aggregator();
        for u in 0..n {
            agg.accumulate(&blh.randomize((u % 4) as u64, &mut rng));
        }
        let est = agg.estimate();
        let sd = blh.count_variance(n, 0.25).sqrt();
        for (i, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "item {i}: est={e} sd={sd}"
            );
        }
    }

    #[test]
    fn report_size_constant_in_domain() {
        let e = eps(1.0);
        let small = OptimizedLocalHashing::new(16, e);
        let huge = OptimizedLocalHashing::new(1 << 40, e);
        assert_eq!(small.report_bits(), huge.report_bits());
        assert!(small.report_bits() <= 70);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let olh = OptimizedLocalHashing::new(8, eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        olh.randomize(8, &mut rng);
    }

    #[test]
    fn cohort_seeds_distinct_and_deterministic() {
        let c = CohortLocalHashing::optimized(100, 256, eps(1.0));
        let seeds: std::collections::HashSet<u64> = (0..256).map(|i| c.cohort_seed(i)).collect();
        assert_eq!(seeds.len(), 256, "cohort seeds must be distinct");
        let c2 = CohortLocalHashing::optimized(100, 256, eps(1.0));
        assert_eq!(c.cohort_seed(17), c2.cohort_seed(17));
    }

    /// Mirror of `olh_estimates_unbiased` for cohort mode: held items
    /// recover their counts, unheld items sit near zero, within the
    /// tolerance predicted by the cohort-aware `count_variance` (which
    /// charges the shared-collision term on top of the OLH noise floor).
    #[test]
    fn cohort_olh_estimates_unbiased() {
        let olh = CohortLocalHashing::optimized(64, 1024, eps(2.0));
        let mut rng = StdRng::seed_from_u64(51);
        let n = 40_000;
        let mut agg = olh.new_aggregator();
        for u in 0..n {
            let v = (u % 8) as u64; // items 0..8 each hold 1/8 of users
            agg.accumulate(&olh.randomize(v, &mut rng));
        }
        assert_eq!(agg.reports(), n);
        let est = agg.estimate();
        for (i, &e) in est.iter().enumerate().take(8) {
            let truth = n as f64 / 8.0;
            let sd = olh.count_variance(n, 1.0 / 8.0).sqrt();
            assert!((e - truth).abs() < 5.0 * sd, "item {i}: est={e} sd={sd}");
        }
        for (i, &e) in est.iter().enumerate().skip(8) {
            let sd = olh.noise_floor_variance(n).sqrt();
            assert!(e.abs() < 5.0 * sd, "item {i}: est={e}");
        }
    }

    /// The analytical variance story: across trials with rotated seed
    /// bases, the empirical variance of an unheld item's estimate must
    /// (a) exceed the plain OLH noise floor — the collision term is real —
    /// (b) track the exact collision formula `Σ n_u²·q(1−q)/(C(p−q)²)`
    /// computable here from the known population, and (c) stay below the
    /// worst-case bound `count_variance` charges.
    #[test]
    fn cohort_olh_variance_matches_analysis() {
        let (d, n, cohorts) = (32u64, 8_000usize, 64u32);
        let e = eps(2.0);
        let trials = 80;
        let probe = 20u64; // unheld item
        let ests: Vec<f64> = (0..trials)
            .map(|t| {
                let olh = CohortLocalHashing::with_params(d, 8, cohorts, 0xc0ff_ee00 + t as u64, e);
                let mut rng = StdRng::seed_from_u64(9000 + t as u64);
                let mut agg = olh.new_aggregator();
                for u in 0..n {
                    agg.accumulate(&olh.randomize((u % 4) as u64, &mut rng));
                }
                agg.estimate_items(&[probe])[0]
            })
            .collect();
        let mean = ests.iter().sum::<f64>() / trials as f64;
        let var = ests.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trials as f64;

        let olh = CohortLocalHashing::with_params(d, 8, cohorts, 0, e);
        let (p, q) = olh.support_probabilities();
        let floor = debiased_count_variance(n, 0.0, p, q);
        // Exact collision term for this population: 4 items × (n/4)² each,
        // each collision moving a user's support probability q̃ → p.
        let q_tilde = (1.0 - p) / 7.0;
        let per_item = (n / 4) as f64;
        let collision_exact =
            4.0 * per_item * per_item * q * (1.0 - q) * (p - q_tilde) * (p - q_tilde)
                / (cohorts as f64 * (p - q) * (p - q));
        let predicted = floor + collision_exact;
        let bound = olh.count_variance(n, 0.0);

        // Unbiased over the seed-base draw: 5σ of the trial mean.
        let sd_of_mean = (predicted / trials as f64).sqrt();
        assert!(mean.abs() < 5.0 * sd_of_mean, "mean={mean} sd={sd_of_mean}");
        assert!(
            var > floor,
            "collision term missing: var={var} floor={floor}"
        );
        assert!(
            (var - predicted).abs() / predicted < 0.45,
            "var={var} predicted={predicted}"
        );
        assert!(predicted <= bound, "bound must dominate the exact term");
    }

    #[test]
    fn cohort_estimate_items_matches_full_estimate() {
        let olh = CohortLocalHashing::optimized(32, 128, eps(1.0));
        let mut rng = StdRng::seed_from_u64(53);
        let mut agg = olh.new_aggregator();
        for u in 0..2000u64 {
            agg.accumulate(&olh.randomize(u % 32, &mut rng));
        }
        let full = agg.estimate();
        let subset = agg.estimate_items(&[0, 7, 31]);
        assert_eq!(subset[0], full[0]);
        assert_eq!(subset[1], full[7]);
        assert_eq!(subset[2], full[31]);
    }

    #[test]
    fn cohort_matrix_is_sufficient_statistic() {
        let olh = CohortLocalHashing::optimized(16, 32, eps(1.0));
        let mut rng = StdRng::seed_from_u64(59);
        let mut agg = olh.new_aggregator();
        for u in 0..500u64 {
            agg.accumulate(&olh.randomize(u % 16, &mut rng));
        }
        let matrix = agg.count_matrix();
        assert_eq!(matrix.len(), 32 * olh.g() as usize);
        assert_eq!(matrix.iter().sum::<u64>(), 500, "every report lands once");
    }

    #[test]
    fn cohort_report_bits_constant_in_domain() {
        let e = eps(1.0);
        let small = CohortLocalHashing::optimized(16, 1024, e);
        let huge = CohortLocalHashing::optimized(1 << 40, 1024, e);
        assert_eq!(small.report_bits(), huge.report_bits());
        assert_eq!(small.report_bits(), 10 + 2); // 1024 cohorts, g=4
    }

    #[test]
    fn merge_matches_sequential_for_both_lh_modes() {
        let e = eps(1.0);
        let mut rng = StdRng::seed_from_u64(61);

        let cohort = CohortLocalHashing::optimized(32, 64, e);
        let reports: Vec<_> = (0..300)
            .map(|u| cohort.randomize(u % 32, &mut rng))
            .collect();
        let mut seq = cohort.new_aggregator();
        let (mut a, mut b) = (cohort.new_aggregator(), cohort.new_aggregator());
        for (i, r) in reports.iter().enumerate() {
            seq.accumulate(r);
            if i < 100 {
                a.accumulate(r);
            } else {
                b.accumulate(r);
            }
        }
        a.merge(b);
        assert_eq!(a.reports(), seq.reports());
        assert_eq!(a.count_matrix(), seq.count_matrix());
        assert_eq!(a.estimate(), seq.estimate());

        let raw = OptimizedLocalHashing::new(32, e);
        let reports: Vec<_> = (0..300).map(|u| raw.randomize(u % 32, &mut rng)).collect();
        let mut seq = raw.new_aggregator();
        let (mut a, mut b) = (raw.new_aggregator(), raw.new_aggregator());
        for (i, r) in reports.iter().enumerate() {
            seq.accumulate(r);
            if i < 137 {
                a.accumulate(r);
            } else {
                b.accumulate(r);
            }
        }
        a.merge(b);
        assert_eq!(a.reports(), seq.reports());
        assert_eq!(a.estimate(), seq.estimate());
    }

    #[test]
    #[should_panic(expected = "configuration mismatch")]
    fn cohort_merge_rejects_mismatched_seed_base() {
        let e = eps(1.0);
        let a = CohortLocalHashing::with_params(16, 4, 8, 1, e);
        let b = CohortLocalHashing::with_params(16, 4, 8, 2, e);
        a.new_aggregator().merge(b.new_aggregator());
    }
}
