//! Local-hashing frequency oracles: BLH and OLH.
//!
//! For massive domains, transmitting `d` bits (unary encodings) is
//! impossible and direct encoding is hopeless. Local hashing sidesteps
//! both: each user draws a *public* random hash function `h : [d] → [g]`
//! (transmitted as a 64-bit seed), hashes their value, and perturbs the
//! *hashed* value with k-ary randomized response over `[g]`. The report is
//! `(seed, perturbed bucket)` — constant size regardless of `d`.
//!
//! The server counts, for each candidate `v`, how many reports *support*
//! it (`h_seed(v) == bucket`). A non-held candidate is supported with
//! probability exactly `1/g` in expectation over seeds, giving the
//! debiasing pair `p* = e^ε/(e^ε+g−1)`, `q* = 1/g`.
//!
//! * **BLH** fixes `g = 2` (one-bit bucket).
//! * **OLH** chooses `g = e^ε + 1`, the value minimizing the noise floor —
//!   which then equals OUE's `4e^ε/(e^ε−1)²` with exponentially less
//!   communication. OLH is the default general-purpose oracle in this
//!   workspace.

use super::{FoAggregator, FrequencyOracle};
use crate::estimate::debiased_count_variance;
use crate::privacy::Epsilon;
use crate::rr::KaryRandomizedResponse;
use ldp_sketch::hash::HashFamily;
use rand::{Rng, RngCore};

/// A local-hashing report: the user's hash seed and the perturbed bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LhReport {
    /// The hash-function seed the user drew (public randomness).
    pub seed: u64,
    /// The k-ary-RR-perturbed value of `h_seed(value)`.
    pub bucket: u64,
}

/// Local hashing with an arbitrary bucket count `g ≥ 2`.
///
/// Use [`OptimizedLocalHashing`] (g = e^ε+1) or [`BinaryLocalHashing`]
/// (g = 2) unless you are sweeping `g` for an ablation.
#[derive(Debug, Clone, Copy)]
pub struct LocalHashing {
    d: u64,
    g: u64,
    epsilon: Epsilon,
    family: HashFamily,
    rr: KaryRandomizedResponse,
}

impl LocalHashing {
    /// Creates a local-hashing oracle with `g` buckets.
    ///
    /// # Panics
    /// Panics if `d == 0` or `g < 2`.
    pub fn with_g(d: u64, g: u64, epsilon: Epsilon) -> Self {
        assert!(d > 0, "domain must be non-empty");
        assert!(g >= 2, "local hashing needs g >= 2, got {g}");
        Self {
            d,
            g,
            epsilon,
            family: HashFamily::new(g),
            rr: KaryRandomizedResponse::new(g, epsilon).expect("g >= 2"),
        }
    }

    /// The bucket count `g`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// The `(p*, q*)` support-probability pair used for debiasing.
    pub fn support_probabilities(&self) -> (f64, f64) {
        (self.rr.p(), 1.0 / self.g as f64)
    }
}

impl FrequencyOracle for LocalHashing {
    type Report = LhReport;
    type Aggregator = LhAggregator;

    fn name(&self) -> &'static str {
        if self.g == 2 {
            "BLH"
        } else {
            "OLH"
        }
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> LhReport {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let seed: u64 = rng.gen();
        let bucket = self.family.hash(value, seed);
        let perturbed = self.rr.randomize(bucket, rng);
        LhReport {
            seed,
            bucket: perturbed,
        }
    }

    fn new_aggregator(&self) -> LhAggregator {
        let (p, q) = self.support_probabilities();
        LhAggregator {
            reports: Vec::new(),
            d: self.d,
            family: self.family,
            p,
            q,
        }
    }

    fn count_variance(&self, n: usize, f: f64) -> f64 {
        let (p, q) = self.support_probabilities();
        debiased_count_variance(n, f * n as f64, p, q)
    }

    fn report_bits(&self) -> usize {
        64 + (64 - (self.g - 1).leading_zeros()) as usize
    }
}

/// Binary local hashing (`g = 2`): the one-bit-per-user protocol of
/// Bassily–Smith, phrased in the Wang et al. framework.
#[derive(Debug, Clone, Copy)]
pub struct BinaryLocalHashing(LocalHashing);

impl BinaryLocalHashing {
    /// Creates BLH over `[0, d)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        Self(LocalHashing::with_g(d, 2, epsilon))
    }
}

/// Optimized local hashing (`g = ⌊e^ε⌋ + 1`), the variance-optimal choice.
#[derive(Debug, Clone, Copy)]
pub struct OptimizedLocalHashing(LocalHashing);

impl OptimizedLocalHashing {
    /// Creates OLH over `[0, d)` with the optimal bucket count
    /// `g = max(2, round(e^ε + 1))`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        let g = ((epsilon.exp() + 1.0).round() as u64).max(2);
        Self(LocalHashing::with_g(d, g, epsilon))
    }

    /// The chosen bucket count.
    pub fn g(&self) -> u64 {
        self.0.g()
    }
}

macro_rules! delegate_oracle {
    ($ty:ty, $name:literal) => {
        impl FrequencyOracle for $ty {
            type Report = LhReport;
            type Aggregator = LhAggregator;

            fn name(&self) -> &'static str {
                $name
            }

            fn domain_size(&self) -> u64 {
                self.0.domain_size()
            }

            fn epsilon(&self) -> Epsilon {
                self.0.epsilon()
            }

            fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> LhReport {
                self.0.randomize(value, rng)
            }

            fn new_aggregator(&self) -> LhAggregator {
                self.0.new_aggregator()
            }

            fn count_variance(&self, n: usize, f: f64) -> f64 {
                self.0.count_variance(n, f)
            }

            fn report_bits(&self) -> usize {
                self.0.report_bits()
            }
        }
    };
}

delegate_oracle!(BinaryLocalHashing, "BLH");
delegate_oracle!(OptimizedLocalHashing, "OLH");

/// Aggregator for local hashing.
///
/// Stores raw reports; a point estimate for item `v` scans them counting
/// support (`h_seed(v) == bucket`). `estimate()` over the full domain costs
/// `O(n·d)` — that is inherent to local hashing and is why heavy-hitter
/// protocols only query candidate sets via
/// [`estimate_items`](FoAggregator::estimate_items).
#[derive(Debug, Clone)]
pub struct LhAggregator {
    reports: Vec<LhReport>,
    d: u64,
    family: HashFamily,
    p: f64,
    q: f64,
}

impl LhAggregator {
    /// Support count for a single item.
    fn support(&self, item: u64) -> u64 {
        self.reports
            .iter()
            .filter(|r| self.family.hash(item, r.seed) == r.bucket)
            .count() as u64
    }
}

impl FoAggregator for LhAggregator {
    type Report = LhReport;

    fn accumulate(&mut self, report: &LhReport) {
        self.reports.push(*report);
    }

    fn reports(&self) -> usize {
        self.reports.len()
    }

    fn estimate(&self) -> Vec<f64> {
        let items: Vec<u64> = (0..self.d).collect();
        self.estimate_items(&items)
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        let n = self.reports.len() as f64;
        items
            .iter()
            .map(|&v| {
                debug_assert!(v < self.d);
                (self.support(v) as f64 - n * self.q) / (self.p - self.q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn olh_bucket_count_tracks_eps() {
        assert_eq!(OptimizedLocalHashing::new(100, eps(1.0)).g(), 4); // e+1 ≈ 3.7 -> 4
        assert_eq!(OptimizedLocalHashing::new(100, eps(2.0)).g(), 8); // e^2+1 ≈ 8.4 -> 8
        assert!(OptimizedLocalHashing::new(100, eps(0.1)).g() >= 2);
    }

    #[test]
    fn olh_matches_oue_noise_floor_approximately() {
        let e = eps(1.0);
        let n = 1000;
        let olh = OptimizedLocalHashing::new(1 << 16, e);
        let expected = n as f64 * 4.0 * 1.0f64.exp() / (1.0f64.exp() - 1.0).powi(2);
        let got = olh.noise_floor_variance(n);
        // g is rounded to an integer so allow 15% slack.
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn blh_noise_floor_formula() {
        // BLH: p = e^eps/(e^eps+1), q = 1/2 ->
        // Var* = n q(1-q)/(p-q)^2 = n (e^eps+1)^2 / (e^eps-1)^2.
        let e = 1.0f64;
        let blh = BinaryLocalHashing::new(1000, eps(e));
        let n = 500;
        let expected = n as f64 * (e.exp() + 1.0).powi(2) / (e.exp() - 1.0).powi(2);
        let got = blh.noise_floor_variance(n);
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "got={got} expected={expected}"
        );
    }

    #[test]
    fn olh_estimates_unbiased() {
        let olh = OptimizedLocalHashing::new(64, eps(2.0));
        let mut rng = StdRng::seed_from_u64(51);
        let n = 40_000;
        let mut agg = olh.new_aggregator();
        for u in 0..n {
            let v = (u % 8) as u64; // items 0..8 each hold 1/8 of users
            agg.accumulate(&olh.randomize(v, &mut rng));
        }
        let est = agg.estimate();
        for (i, &e) in est.iter().enumerate().take(8) {
            let truth = n as f64 / 8.0;
            let sd = olh.count_variance(n, 1.0 / 8.0).sqrt();
            assert!((e - truth).abs() < 5.0 * sd, "item {i}: est={e}");
        }
        // Unheld items near zero.
        for (i, &e) in est.iter().enumerate().skip(8) {
            let sd = olh.noise_floor_variance(n).sqrt();
            assert!(e.abs() < 5.0 * sd, "item {i}: est={e}");
        }
    }

    #[test]
    fn estimate_items_matches_full_estimate() {
        let olh = OptimizedLocalHashing::new(32, eps(1.0));
        let mut rng = StdRng::seed_from_u64(53);
        let mut agg = olh.new_aggregator();
        for u in 0..2000u64 {
            agg.accumulate(&olh.randomize(u % 32, &mut rng));
        }
        let full = agg.estimate();
        let subset = agg.estimate_items(&[0, 7, 31]);
        assert_eq!(subset[0], full[0]);
        assert_eq!(subset[1], full[7]);
        assert_eq!(subset[2], full[31]);
    }

    #[test]
    fn blh_estimates_unbiased() {
        let blh = BinaryLocalHashing::new(16, eps(2.0));
        let mut rng = StdRng::seed_from_u64(57);
        let n = 60_000;
        let mut agg = blh.new_aggregator();
        for u in 0..n {
            agg.accumulate(&blh.randomize((u % 4) as u64, &mut rng));
        }
        let est = agg.estimate();
        let sd = blh.count_variance(n, 0.25).sqrt();
        for (i, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "item {i}: est={e} sd={sd}"
            );
        }
    }

    #[test]
    fn report_size_constant_in_domain() {
        let e = eps(1.0);
        let small = OptimizedLocalHashing::new(16, e);
        let huge = OptimizedLocalHashing::new(1 << 40, e);
        assert_eq!(small.report_bits(), huge.report_bits());
        assert!(small.report_bits() <= 70);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let olh = OptimizedLocalHashing::new(8, eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        olh.randomize(8, &mut rng);
    }
}
