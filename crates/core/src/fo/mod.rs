//! Frequency oracles: the protocols behind every deployed LDP system.
//!
//! A *frequency oracle* lets an untrusted aggregator estimate, for any item
//! `v` in a domain of size `d`, how many of `n` users hold `v` — from one
//! privatized report per user. The tutorial's §1.2 presents the deployed
//! systems (RAPPOR, Apple, Microsoft) as engineering around this core
//! primitive, and Wang et al. (USENIX Security 2017) systematized the
//! design space. This module implements that design space:
//!
//! | Mechanism | Module | Descriptor kind ([`crate::protocol::MechanismKind`]) | Report size | `Var*/n` (noise floor, counts) | Randomize cost (uniform draws / user) | Aggregation: memory, full `estimate()` | Snapshot BLOB ([`crate::snapshot`]) |
//! |---|---|---|---|---|---|---|---|
//! | Direct encoding (GRR) | [`direct`] | `DirectEncoding` | `log d` bits | `(d−2+e^ε)/(e^ε−1)²` | `≤ 2` | `O(d)`, `O(d)` | `O(d)` varints |
//! | Symmetric unary (SUE, basic RAPPOR) | [`unary`] | `SymmetricUnary` | `d` bits | `e^{ε/2}/(e^{ε/2}−1)²` | `2 + d·q` (geometric skip) | `O(d)`, `O(d)` | `O(d)` varints |
//! | Optimized unary (OUE) | [`unary`] | `OptimizedUnary` | `d` bits | `4e^ε/(e^ε−1)²` | `2 + d·q` (geometric skip) | `O(d)`, `O(d)` | `O(d)` varints |
//! | Summation histogram (SHE) | [`histogram`] | `SummationHistogram` | `d` floats | `8/ε²` | `d` (one batched Laplace block) | `O(d)`, `O(d)` | `8d` B (exact `f64` bits) |
//! | Threshold histogram (THE) | [`histogram`] | `ThresholdHistogram` | `d` bits | optimized numerically | `2 + d·q` (geometric skip) | `O(d)`, `O(d)` | `O(d)` varints |
//! | Binary local hashing (BLH) | [`hashing`] | `BinaryLocalHashing` (registry steers to OLH-C) | 64+1 bits | `(e^ε+1)²/(e^ε−1)²` | `≤ 3` | `O(n)`, `O(n·d)` | `≈ 9n` B (report list) |
//! | Optimized local hashing (OLH) | [`hashing`] | `OptimizedLocalHashing` (registry steers to OLH-C) | 64+log g bits | `4e^ε/(e^ε−1)²` | `≤ 3` | `O(n)`, `O(n·d)` | `≈ 9n` B (report list) |
//! | Cohort local hashing (OLH-C) | [`hashing`] | `CohortLocalHashing` | log C + log g bits | `4e^ε/(e^ε−1)²` + collision term | `≤ 3` | `O(C·g)`, `O(C·d)` | `O(C·g)` varints |
//! | Hadamard response (HR) | [`hadamard`] | `HadamardResponse` | log m + 1 bits | `≈4e^ε/(e^ε−1)²` | `2` | `O(m)`, `O(m log m)` (tiled FWHT) | `O(m)` varints |
//! | Subset selection (SS) | [`subset`] | `SubsetSelection` | `k·log d` bits | minimax-optimal | `1 + k` | `O(d)`, `O(d)` | `O(d)` varints |
//! | Apple CMS | `ldp_apple::cms` | `AppleCms` | `m` bits + log k | `≈k·c_ε²·n/m + n/m` (sketch) | `2 + m·q` (geometric skip) | `O(k·m)`, `O(k·d)` | `O(k·m)` varints |
//! | Apple HCMS | `ldp_apple::hcms` | `AppleHcms` | 1 bit + log km | `≈c'_ε²·n + n/m` (sketch) | `3` | `O(k·m)`, `O(k·m log m + k·d)` (decode once, `O(k)`/query) | `O(k·m)` varints |
//! | Microsoft dBitFlip | `ldp_microsoft::dbitflip` | `MicrosoftDBitFlip` | `d·(log k + 1)` bits | `(k/d)·`SUE floor | `≈ d + 2 + d·q` | `O(k)`, `O(k)` | `O(k)` varints |
//! | Microsoft 1BitMean | `ldp_microsoft::onebit` | `MicrosoftOneBitMean` | 1 bit | mean: `max²(e^ε+1)²/4(e^ε−1)²` | `1` | `O(1)`, `O(1)` | `≈ 20` B |
//!
//! The descriptor-kind column is the runtime face: build a
//! [`crate::protocol::ProtocolDescriptor`] with that kind and any
//! workspace registry (`ldp_workloads::service::workspace_registry`)
//! instantiates the mechanism behind the erased wire API
//! ([`crate::wire::ErasedMechanism`]), so a collector service ingests
//! its serialized reports without compile-time knowledge of the type.
//!
//! The randomization-cost column counts uniform RNG draws per report on
//! the batch path. The unary family (`d` bits, one independent Bernoulli
//! per position) pays `2 + d·q` expected draws instead of `d` thanks to
//! geometric-skip sampling of the set bits ([`batch`]); SHE is the one
//! mechanism that inherently needs a continuous noise draw per
//! coordinate, so it draws the whole report's uniforms as one block and
//! maps them through a branchless inverse-CDF transform
//! ([`crate::noise::fill_laplace`]) instead of `d` libm `ln` calls.
//! The last four rows are the industrial deployments in `ldp-apple` and
//! `ldp-microsoft`: they share the same geometric-skip sampler and are
//! wired into the same batch engine through [`crate::mech::BatchMechanism`]
//! (CMS flips its `m`-long sign vector at rate `q = 1/(e^{ε/2}+1)` so a
//! fused report costs `O(m·q)` sketch updates, not `O(m)`; dBitFlip
//! samples its `d` buckets by rejection and flips them by skip).
//!
//! The table is the tutorial's punchline: OUE, OLH and HR share the same
//! optimal noise floor, differing only in communication; GRR beats them all
//! when the domain is small (`d < 3e^ε + 2`). Experiment E2 regenerates
//! this comparison. The variance column is documentation, not a second
//! implementation: each formula lives only in that mechanism's
//! [`FrequencyOracle::count_variance`], which the planner's cost models
//! ([`crate::cost`]) also delegate to when ranking plans.
//!
//! ## Aggregation at deployment scale
//!
//! The last column is the server-side story. Every aggregator except raw
//! local hashing keeps a *sufficient statistic* whose size is independent
//! of the report count `n` — which is what makes million-user populations
//! feasible. Raw OLH/BLH is the outlier: it must keep all `n` reports and
//! rescan them per candidate. [`hashing::CohortLocalHashing`] (OLH-C)
//! fixes this RAPPOR-style by drawing each user's hash seed from a public
//! set of `C` cohorts, so the aggregator reduces to a `C×g` count matrix:
//! memory `O(C·g)` instead of `O(n)`, full-domain estimation `O(C·d)`
//! instead of `O(n·d)`. Privacy is unchanged (the seed is public
//! randomness either way); the price is a small extra variance term from
//! shared hash collisions, documented on
//! [`hashing::CohortLocalHashing::count_variance`].
//!
//! All aggregators additionally support [`FoAggregator::merge`], so
//! collection can be sharded across threads or machines and combined —
//! see `ldp_workloads::parallel` for the `std::thread::scope` harness.

pub mod batch;
pub mod direct;
pub mod hadamard;
pub mod hashing;
pub mod histogram;
pub mod subset;
pub mod unary;

pub use direct::DirectEncoding;
pub use hadamard::HadamardResponse;
pub use hashing::{BinaryLocalHashing, CohortLocalHashing, LocalHashing, OptimizedLocalHashing};
pub use histogram::{SummationHistogramEncoding, ThresholdHistogramEncoding};
pub use subset::SubsetSelection;
pub use unary::{OptimizedUnaryEncoding, SymmetricUnaryEncoding};

use crate::privacy::Epsilon;
use rand::RngCore;

/// A local frequency-estimation protocol: client-side randomization plus a
/// matching server-side aggregator.
///
/// Implementations guarantee:
/// * `randomize` is ε-LDP with `ε = self.epsilon()`;
/// * the aggregator's `estimate()` is unbiased for the true count vector;
/// * `count_variance(n, f)` is the analytical variance of a single item's
///   count estimate when its true relative frequency is `f`.
pub trait FrequencyOracle {
    /// What one client transmits.
    type Report: Clone + std::fmt::Debug;
    /// The matching server-side aggregator.
    type Aggregator: FoAggregator<Report = Self::Report>;

    /// Short mechanism name (e.g. `"OLH"`), for experiment tables.
    fn name(&self) -> &'static str;

    /// Domain size `d`; values are `0..d`.
    fn domain_size(&self) -> u64;

    /// Per-report privacy parameter.
    fn epsilon(&self) -> Epsilon;

    /// Client side: privatize `value ∈ [0, d)`.
    ///
    /// # Panics
    /// Implementations panic if `value >= domain_size()`.
    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> Self::Report;

    /// Batch client side: privatizes every value in `values`, handing each
    /// report to `sink` in input order.
    ///
    /// Unlike [`randomize`](Self::randomize), the RNG is a generic
    /// `R: RngCore` — per-draw calls monomorphize instead of going through
    /// a `dyn RngCore` vtable, which matters when a report costs thousands
    /// of draws. The default implementation is the scalar loop; oracle
    /// overrides share their sampling core with `randomize` so that, for a
    /// given seed, the batch path consumes **exactly** the same RNG stream
    /// as the scalar loop (the bit-identity contract the proptests in
    /// `crates/core/tests/batch_oracles.rs` enforce).
    ///
    /// # Panics
    /// Panics if any value is `>= domain_size()`.
    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        Self: Sized,
        R: RngCore,
        F: FnMut(Self::Report),
    {
        for &v in values {
            sink(self.randomize(v, rng));
        }
    }

    /// [`randomize_batch`](Self::randomize_batch) handing each report to
    /// `sink` **by reference**, so oracles whose reports own heap buffers
    /// (the unary family's `BitVec`s) can reuse one report allocation for
    /// the whole batch. This is the path serializing consumers ride — the
    /// wire layer encodes each report to bytes and never needs ownership,
    /// so materializing a fresh report per user is pure allocator churn.
    ///
    /// The default delegates to `randomize_batch` (same reports, same RNG
    /// stream); overrides must preserve both. The borrow is only valid
    /// for the duration of the `sink` call.
    ///
    /// # Panics
    /// Panics if any value is `>= domain_size()`.
    fn randomize_batch_ref<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        Self: Sized,
        R: RngCore,
        F: FnMut(&Self::Report),
    {
        self.randomize_batch(values, rng, |r| sink(&r));
    }

    /// Fused batch client+server step: privatizes every value in `values`
    /// and folds the reports straight into `agg`, without materializing
    /// per-report allocations where the oracle can avoid them.
    ///
    /// This is the hot path of sharded collection
    /// (`ldp_workloads::parallel`): unary-family overrides skip the
    /// per-report `BitVec` entirely and add geometric-skip-sampled set
    /// bits directly into the aggregator's `u64` column counters. The
    /// resulting aggregator state is bit-identical to running the scalar
    /// `randomize` + [`FoAggregator::accumulate`] loop with the same RNG
    /// seed — same draws, same integer counters.
    ///
    /// # Panics
    /// Panics if any value is `>= domain_size()` or `agg` was configured
    /// for a different oracle instance.
    fn randomize_accumulate_batch<R>(&self, values: &[u64], rng: &mut R, agg: &mut Self::Aggregator)
    where
        Self: Sized,
        R: RngCore,
    {
        self.randomize_batch(values, rng, |r| agg.accumulate(&r));
    }

    /// Creates an empty aggregator configured for this oracle instance.
    fn new_aggregator(&self) -> Self::Aggregator;

    /// Analytical variance of the *count* estimate for an item with true
    /// relative frequency `f`, over `n` reports.
    ///
    /// Each implementation is its formula's single home: every other
    /// consumer — the planner's cost models in [`crate::cost`]
    /// included — instantiates the oracle and delegates here rather
    /// than restating the algebra.
    fn count_variance(&self, n: usize, f: f64) -> f64;

    /// The `f → 0` "noise floor" variance Wang et al. use to rank
    /// mechanisms (their `Var*`). This is the quantity the planner's
    /// cost models ([`crate::cost`]) rank plans by.
    fn noise_floor_variance(&self, n: usize) -> f64 {
        self.count_variance(n, 0.0)
    }

    /// Expected report size in bits (communication cost), for the
    /// communication-vs-accuracy tables.
    fn report_bits(&self) -> usize;
}

/// The unary report family (SUE, OUE, THE): oracles whose report is a
/// perturbed `d`-bit one-hot vector, exposing the underlying set-bit
/// sampler directly.
///
/// This is the hook behind the wire layer's fused sampler→frame writer:
/// a consumer that only needs the *positions* of the set bits (packing
/// them into an outgoing frame buffer, bumping counters) can take them
/// straight from the geometric-skip sampler without materializing a
/// [`ldp_sketch::BitVec`] per report.
///
/// Contract: for a given `value` and RNG state, `sample_ones` must make
/// exactly the draws [`FrequencyOracle::randomize`] makes and visit
/// exactly the positions the returned report would have set, in the same
/// order — the RNG-stream identity that keeps every consumer of this
/// sampler bit-identical to the report path.
pub trait SetBitSampler: FrequencyOracle<Report = ldp_sketch::BitVec> {
    /// Samples the set-bit positions of one report, invoking `on_one`
    /// for each.
    ///
    /// # Panics
    /// Panics if `value >= domain_size()`.
    fn sample_ones<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R, on_one: impl FnMut(usize));
}

/// Server-side accumulation and estimation for one [`FrequencyOracle`].
///
/// [`crate::snapshot::StateSnapshot`] is a supertrait: every aggregator
/// must have a durable serialized form, which is what lets collectors
/// checkpoint mid-ingest, ship partial counts to regional mergers, and
/// resume after a crash (`ldp_workloads::service::MergeTree`). The
/// bound is compile-enforced here rather than opt-in so the erased
/// service layer can always snapshot whatever aggregator it holds.
pub trait FoAggregator: crate::snapshot::StateSnapshot {
    /// Report type consumed.
    type Report;

    /// Folds one client report into the aggregate state.
    fn accumulate(&mut self, report: &Self::Report);

    /// Validates one client report against this aggregator's
    /// configuration and folds it in, returning an error instead of
    /// panicking when the report does not fit (wrong width, out-of-range
    /// bucket or cohort, …). This is the path the erased wire layer
    /// ([`crate::wire`]) routes every decoded frame through, so a
    /// collector fed adversarial bytes degrades to [`crate::LdpError`]s
    /// rather than crashing.
    ///
    /// The default performs no validation (appropriate only for report
    /// types every decoded value of which is accepted, like `bool`);
    /// every workspace aggregator with a panicking `accumulate` overrides
    /// it.
    ///
    /// # Errors
    /// [`crate::LdpError::Malformed`] when the report does not fit this
    /// aggregator's configuration.
    fn try_accumulate(&mut self, report: &Self::Report) -> crate::Result<()> {
        self.accumulate(report);
        Ok(())
    }

    /// Folds one bit-vector report presented as its wire payload —
    /// little-endian packed bytes — without materializing the report.
    /// `None` means this aggregator has no packed fast path (the wire
    /// layer falls back to decoding into a scratch report); `Some(res)`
    /// means the payload was validated (width, byte count, zero padding)
    /// and, on `Ok`, folded in — state-identical to decoding the same
    /// payload and calling [`Self::try_accumulate`].
    ///
    /// # Errors
    /// [`crate::LdpError::Malformed`] inside the `Some` when the payload
    /// does not fit this aggregator's configuration.
    fn try_accumulate_packed_bits(
        &mut self,
        bytes: &[u8],
        bits: usize,
    ) -> Option<crate::Result<()>> {
        let _ = (bytes, bits);
        None
    }

    /// Folds a group of bit-vector wire payloads (`(packed bytes, bit
    /// width)` pairs) in arrival order — the batched companion of
    /// [`Self::try_accumulate_packed_bits`] that lets implementations
    /// amortize the per-set-bit counter walk across reports (the unary
    /// family counts groups of eight through a carry-save positional
    /// popcount). `None` means no packed fast path; `Some((applied,
    /// res))` means the first `applied` payloads were folded in, and
    /// `res` carries the validation error of payload `applied` if not
    /// every payload fit. State after `Some` is identical to calling
    /// [`Self::try_accumulate_packed_bits`] on each payload in order and
    /// stopping at the first error.
    ///
    /// # Errors
    /// [`crate::LdpError::Malformed`] inside the `Some` when a payload
    /// does not fit this aggregator's configuration.
    fn try_accumulate_packed_bits_batch(
        &mut self,
        payloads: &[(&[u8], usize)],
    ) -> Option<(usize, crate::Result<()>)> {
        let _ = payloads;
        None
    }

    /// Number of reports accumulated so far.
    fn reports(&self) -> usize;

    /// Unbiased estimated counts for every item `0..d`.
    fn estimate(&self) -> Vec<f64>;

    /// Unbiased estimated counts for a subset of items — override when a
    /// full-domain sweep would be wasteful (local hashing with massive
    /// domains, as used by prefix-extension heavy hitters).
    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        let all = self.estimate();
        items.iter().map(|&v| all[v as usize]).collect()
    }

    /// Merges another aggregator's state into this one, as if every report
    /// accumulated into `other` had been accumulated here instead.
    ///
    /// Merging is associative, and for the count-based aggregators (every
    /// oracle except SHE, whose state is floating-point sums subject to
    /// addition reassociation) it reproduces sequential accumulation bit
    /// for bit. That contract is what makes sharded collection safe:
    /// shard-local aggregators built on worker threads (or separate
    /// machines) and merged in shard order yield exactly the estimate a
    /// single sequential pass would have produced. The
    /// `ldp_workloads::parallel` module provides the `std::thread::scope`
    /// harness built on this operation.
    ///
    /// # Panics
    /// Implementations panic if `other` was configured incompatibly
    /// (different domain size, bucket count, cohort set, or channel
    /// probabilities).
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Subtracts another aggregator's state from this one — the exact
    /// inverse of [`merge`](Self::merge). When `other`'s reports are a
    /// sub-multiset of the reports folded in here, the state afterwards
    /// is **bit-identical** to an aggregator that accumulated only the
    /// remainder. This is what lets a sliding-window collector retire an
    /// expired window's delta from a running total in `O(state)` instead
    /// of re-merging every live window
    /// (`ldp_workloads::window::WindowRing`).
    ///
    /// Only the count-based aggregators support it: their state is
    /// integer counters, which form a group under `merge`, so the inverse
    /// is exact. The default refuses with
    /// [`crate::LdpError::NotSubtractive`] — the two workspace states
    /// that keep the default are SHE (floating-point sums, for which an
    /// *exact* inverse does not exist under reassociation) and raw local
    /// hashing (a report list records that reports arrived, not which
    /// ones a given window contributed).
    ///
    /// Calls are all-or-nothing: every check (configuration equality,
    /// counter underflow) happens before the first counter moves, so a
    /// failed subtract leaves `self` untouched and callers can fall back
    /// to a rebuild.
    ///
    /// # Errors
    /// [`crate::LdpError::NotSubtractive`] when this aggregator kind has
    /// no exact merge inverse; [`crate::LdpError::StateMismatch`] when
    /// `other` was configured incompatibly or is not a sub-aggregate of
    /// `self` (some counter would underflow).
    fn try_subtract(&mut self, other: &Self) -> crate::Result<()>
    where
        Self: Sized,
    {
        let _ = other;
        Err(crate::LdpError::NotSubtractive(
            "this aggregator's state has no exact merge inverse".into(),
        ))
    }
}

/// True iff every counter in `sub` fits under its counterpart in `dst` —
/// the underflow pre-check shared by the count-based
/// [`FoAggregator::try_subtract`] overrides across the workspace crates.
/// Callers check **all** of an aggregator's counter vectors with this
/// before committing any subtraction, so a refused subtract is a no-op.
#[inline]
pub fn counts_fit(dst: &[u64], sub: &[u64]) -> bool {
    dst.len() == sub.len() && dst.iter().zip(sub).all(|(a, b)| a >= b)
}

/// Coordinate-wise counter subtraction — the commit half of the
/// count-based [`FoAggregator::try_subtract`] overrides. Callers verify
/// [`counts_fit`] on every vector first.
///
/// # Panics
/// Debug-panics on length mismatch or underflow (release builds wrap,
/// which the `counts_fit` pre-check makes unreachable).
#[inline]
pub fn subtract_counts(dst: &mut [u64], sub: &[u64]) {
    debug_assert_eq!(dst.len(), sub.len());
    for (a, b) in dst.iter_mut().zip(sub) {
        *a -= b;
    }
}

/// Shared body of the per-position-counter
/// [`FoAggregator::try_accumulate_packed_bits`] overrides (unary family,
/// THE): validates an LE-packed bit payload against the counter width and
/// adds each set bit's counter, word at a time — the exact state change
/// of decoding the payload into a `BitVec` and accumulating it.
pub(crate) fn accumulate_packed_ones(
    ones: &mut [u64],
    bytes: &[u8],
    bits: usize,
) -> crate::Result<()> {
    if bits != ones.len() {
        return Err(crate::LdpError::Malformed(format!(
            "report width {bits} != domain size {}",
            ones.len()
        )));
    }
    if bytes.len() != bits.div_ceil(8) {
        return Err(crate::LdpError::Malformed(format!(
            "bit payload of {} bytes for {bits} bits",
            bytes.len()
        )));
    }
    if !bits.is_multiple_of(8) && bytes[bytes.len() - 1] >> (bits % 8) != 0 {
        return Err(crate::LdpError::Malformed("nonzero padding bits".into()));
    }
    // A plain trailing_zeros/clear-lowest extraction per word: measured
    // against both a two-chain interleaved drain and a branchless
    // bit-spread (`ones[k] += (w >> k) & 1`), the single chain wins at
    // the ~25% bit density the unary mechanisms produce — the extra
    // loop conditions cost more than the dependency chain they hide.
    let mut chunks = bytes.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let mut w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        while w != 0 {
            ones[base + w.trailing_zeros() as usize] += 1;
            w &= w - 1;
        }
        base += 64;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let mut w = u64::from_le_bytes(tail);
        while w != 0 {
            ones[base + w.trailing_zeros() as usize] += 1;
            w &= w - 1;
        }
    }
    Ok(())
}

/// Full adder over bit-parallel lanes: `(sum, carry)` of three words.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Number of payloads [`accumulate_packed_ones_batch`] reduces through
/// one carry-save popcount group.
pub(crate) const PACKED_BATCH: usize = 8;

/// Shared body of the
/// [`FoAggregator::try_accumulate_packed_bits_batch`] overrides:
/// validates every payload up front (so the fold below cannot fail
/// mid-group), then folds groups of [`PACKED_BATCH`] payloads through a
/// carry-save positional popcount — each 64-counter column costs one
/// 3-2 adder tree plus a `trailing_zeros` walk over four count
/// bit-planes, instead of eight separate per-set-bit walks. At the ~25%
/// bit density the unary mechanisms produce, that roughly halves the
/// counter-add work per report. Leftover payloads (and any prefix that
/// precedes an invalid payload) go through the single-report walk.
///
/// Returns `(applied, res)`: the number of payloads folded in, and the
/// first validation error if one did not fit. State is identical to
/// calling [`accumulate_packed_ones`] per payload in order, stopping at
/// the first error — counter adds commute, so group order is
/// unobservable.
pub(crate) fn accumulate_packed_ones_batch(
    ones: &mut [u64],
    payloads: &[(&[u8], usize)],
) -> (usize, crate::Result<()>) {
    let valid = payloads
        .iter()
        .position(|&(bytes, bits)| {
            bits != ones.len()
                || bytes.len() != bits.div_ceil(8)
                || (!bits.is_multiple_of(8) && bytes[bytes.len() - 1] >> (bits % 8) != 0)
        })
        .unwrap_or(payloads.len());
    // One 3-2 adder tree: positional popcount of eight bit rows into
    // four count planes, added into 64 counters at plane weights.
    #[inline]
    fn csa_fold(ones: &mut [u64], base: usize, r: [u64; PACKED_BATCH]) {
        let (s0, c0) = csa(r[0], r[1], r[2]);
        let (s1, c1) = csa(r[3], r[4], r[5]);
        let (s2, c2) = csa(r[6], r[7], s0);
        let (p0, c3) = (s1 ^ s2, s1 & s2);
        let (s3, c4) = csa(c0, c1, c2);
        let (p1, c5) = (s3 ^ c3, s3 & c3);
        let (p2, p3) = (c4 ^ c5, c4 & c5);
        for (mut plane, weight) in [(p0, 1u64), (p1, 2), (p2, 4), (p3, 8)] {
            while plane != 0 {
                ones[base + plane.trailing_zeros() as usize] += weight;
                plane &= plane - 1;
            }
        }
    }
    let bits = ones.len();
    let full_words = bits / 64;
    let mut groups = payloads[..valid].chunks_exact(PACKED_BATCH);
    for group in &mut groups {
        for j in 0..full_words {
            let mut r = [0u64; PACKED_BATCH];
            for (row, &(bytes, _)) in r.iter_mut().zip(group) {
                let chunk: [u8; 8] = bytes[j * 8..j * 8 + 8].try_into().expect("full word");
                *row = u64::from_le_bytes(chunk);
            }
            csa_fold(ones, j * 64, r);
        }
        // Partial trailing word: padding bits are validated zero, so the
        // zero-extended loads keep every plane inside the counter range.
        if !bits.is_multiple_of(64) {
            let mut r = [0u64; PACKED_BATCH];
            for (row, &(bytes, _)) in r.iter_mut().zip(group) {
                let rem = &bytes[full_words * 8..];
                let mut tail = [0u8; 8];
                tail[..rem.len()].copy_from_slice(rem);
                *row = u64::from_le_bytes(tail);
            }
            csa_fold(ones, full_words * 64, r);
        }
    }
    for &(bytes, bits) in groups.remainder() {
        accumulate_packed_ones(ones, bytes, bits).expect("validated above");
    }
    if valid == payloads.len() {
        (valid, Ok(()))
    } else {
        let (bytes, bits) = payloads[valid];
        let err = if bits != ones.len() {
            crate::LdpError::Malformed(format!("report width {bits} != domain size {}", ones.len()))
        } else if bytes.len() != bits.div_ceil(8) {
            crate::LdpError::Malformed(format!(
                "bit payload of {} bytes for {bits} bits",
                bytes.len()
            ))
        } else {
            crate::LdpError::Malformed("nonzero padding bits".into())
        };
        (valid, Err(err))
    }
}

/// Runs a full collection round: randomizes `values` through `oracle`,
/// aggregates, and returns the estimated count vector. Convenience used by
/// tests, examples, and experiment binaries.
///
/// Rides the fused batch path; since that path consumes the same RNG
/// stream as the scalar loop, results for a fixed seed are unchanged.
pub fn collect_counts<O: FrequencyOracle, R: RngCore>(
    oracle: &O,
    values: &[u64],
    rng: &mut R,
) -> Vec<f64> {
    let mut agg = oracle.new_aggregator();
    oracle.randomize_accumulate_batch(values, rng, &mut agg);
    agg.estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All oracles must produce unbiased estimates on the same workload.
    /// (Each concrete oracle has its own deeper tests in its module; this
    /// is the cross-cutting contract check.)
    #[test]
    fn all_oracles_unbiased_on_small_domain() {
        let eps = Epsilon::new(2.0).unwrap();
        let d = 16u64;
        let n = 30_000usize;
        // Deterministic skewed values: item i with weight ~ 2^{-i/2}.
        let values: Vec<u64> = (0..n).map(|u| (u % 97 % d as usize) as u64).collect();
        let mut truth = vec![0f64; d as usize];
        for &v in &values {
            truth[v as usize] += 1.0;
        }

        macro_rules! check {
            ($oracle:expr, $seed:expr) => {{
                let oracle = $oracle;
                let mut rng = StdRng::seed_from_u64($seed);
                let est = collect_counts(&oracle, &values, &mut rng);
                assert_eq!(est.len(), d as usize);
                for i in 0..d as usize {
                    let sd = oracle
                        .count_variance(n, truth[i] / n as f64)
                        .sqrt()
                        .max(1.0);
                    assert!(
                        (est[i] - truth[i]).abs() < 6.0 * sd,
                        "{} item {i}: est={} truth={} sd={sd}",
                        oracle.name(),
                        est[i],
                        truth[i]
                    );
                }
            }};
        }

        check!(DirectEncoding::new(d, eps).unwrap(), 1);
        check!(SymmetricUnaryEncoding::new(d, eps).unwrap(), 2);
        check!(OptimizedUnaryEncoding::new(d, eps).unwrap(), 3);
        check!(SummationHistogramEncoding::new(d, eps).unwrap(), 4);
        check!(ThresholdHistogramEncoding::new(d, eps).unwrap(), 5);
        check!(BinaryLocalHashing::new(d, eps), 6);
        check!(OptimizedLocalHashing::new(d, eps), 7);
        check!(HadamardResponse::new(d, eps), 8);
        check!(CohortLocalHashing::optimized(d, 512, eps), 9);
    }

    #[test]
    fn noise_floor_ranking_matches_theory() {
        // At eps=1, d=128: OUE/OLH ~ 4e/(e-1)^2 n; GRR ~ (d-2+e)/(e-1)^2 n.
        let eps = Epsilon::new(1.0).unwrap();
        let d = 128;
        let n = 1000;
        let grr = DirectEncoding::new(d, eps).unwrap().noise_floor_variance(n);
        let oue = OptimizedUnaryEncoding::new(d, eps)
            .unwrap()
            .noise_floor_variance(n);
        let olh = OptimizedLocalHashing::new(d, eps).noise_floor_variance(n);
        let sue = SymmetricUnaryEncoding::new(d, eps)
            .unwrap()
            .noise_floor_variance(n);
        assert!(oue < grr, "OUE should beat GRR for large domains");
        assert!(oue < sue, "OUE should beat SUE");
        assert!((oue - olh).abs() / oue < 0.2, "OUE and OLH share the floor");
    }

    #[test]
    fn grr_wins_small_domains() {
        // The crossover: GRR beats OUE iff d < 3 e^eps + 2.
        let eps = Epsilon::new(1.0).unwrap();
        let n = 1000;
        let d_small = 4; // < 3e + 2 ≈ 10.2
        let d_large = 64;
        let grr_s = DirectEncoding::new(d_small, eps)
            .unwrap()
            .noise_floor_variance(n);
        let oue_s = OptimizedUnaryEncoding::new(d_small, eps)
            .unwrap()
            .noise_floor_variance(n);
        assert!(grr_s < oue_s);
        let grr_l = DirectEncoding::new(d_large, eps)
            .unwrap()
            .noise_floor_variance(n);
        let oue_l = OptimizedUnaryEncoding::new(d_large, eps)
            .unwrap()
            .noise_floor_variance(n);
        assert!(oue_l < grr_l);
    }
}
