//! Batch randomization primitives: geometric-skip sampling of sparse
//! Bernoulli bit flips.
//!
//! The unary-family oracles (SUE/OUE, THE, and RAPPOR's IRR layer) all
//! reduce to the same client-side channel: every position of a length-`d`
//! bit vector is independently set with some probability (`q` for the
//! `d−1` zero positions, `p` for the one-hot position). The naive sampler
//! draws one Bernoulli per position — `d` uniform draws per report, which
//! at `d = 4096` dominates the entire randomize→accumulate loop.
//!
//! The classic RAPPOR trick replaces the per-position draws with
//! *geometric skipping*: the gap between consecutive set positions in an
//! i.i.d. Bernoulli(`q`) sequence is `Geometric(q)`-distributed, so the
//! sampler can jump straight from one set position to the next with a
//! single draw. Expected cost drops from `d` uniform draws to `1 + d·q` —
//! for OUE at ε = 1 (`q ≈ 0.27`) that is ~3.7× fewer draws, and for THE's
//! optimized threshold (`q ≈ 0.07`) ~14× fewer. The marginal distribution
//! of every bit is unchanged (statistical tests in this module and
//! `crates/core/tests/batch_oracles.rs` check marginals and the
//! independence-sensitive total-count variance).
//!
//! Each skip is resolved by inverse-CDF: [`GeometricSkip`] precomputes
//! the geometric CDF boundaries as 53-bit integers, so the common case is
//! a couple of integer comparisons against the raw uniform word — no
//! logarithm on the hot path; only the far tail (skips past the table)
//! falls back to the closed-form `⌊ln(1−U)/ln(1−q)⌋`.
//!
//! Both the scalar [`FrequencyOracle::randomize`] paths of the unary
//! oracles and their fused batch overrides call into this one sampler, so
//! the two paths consume identical RNG streams — that is what makes the
//! batch-vs-scalar bit-identity contract (and with it, deterministic
//! sharded collection) hold by construction.
//!
//! [`FrequencyOracle::randomize`]: super::FrequencyOracle::randomize

use rand::RngCore;

/// CDF boundaries kept per sampler. 32 entries cover `P[skip < 32] =
/// 1 − (1−q)^32` of the mass — >99.99% for OUE-like `q ≈ 0.27`, ~89% for
/// THE-like `q ≈ 0.07`; the remainder takes the logarithm fallback.
const TABLE: usize = 32;

/// Scale of the uniform mantissa the vendored `rand` uses for `f64`
/// sampling: `u = (x >> 11) / 2^53`.
const MANTISSA_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// A geometric-skip sampler for one fixed flip probability `q`,
/// precomputed once per oracle instance.
///
/// `sample_into` walks the set positions of an i.i.d. Bernoulli(`q`) bit
/// sequence, consuming one `u64` RNG word per set position (plus one
/// terminating word). The skip ahead of each set position is resolved
/// from the raw 53-bit uniform by comparing against precomputed integer
/// CDF boundaries `⌈(1−(1−q)^{k+1})·2^53⌉` — `u < b_k ⟺ mantissa <
/// bound[k]`, exactly the inverse-CDF partition of the unit interval, so
/// the distribution is identical to the closed-form
/// `skip = ⌊ln(1−U)/ln(1−q)⌋` it falls back to past the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricSkip {
    q: f64,
    /// `bound[k]` = smallest 53-bit mantissa NOT mapping to `skip ≤ k`.
    bounds: [u64; TABLE],
    /// `ln(1−q)` via `ln_1p`, accurately negative even for tiny `q`
    /// (where `1.0 − q` would round to `1.0` and a plain `ln` would
    /// return 0, collapsing every tail skip to zero — an infinite walk).
    ln_keep: f64,
}

impl GeometricSkip {
    /// Builds the sampler for flip probability `q`. Degenerate values are
    /// honored: `q ≤ 0` never flips, `q ≥ 1` always flips.
    ///
    /// # Panics
    /// Panics if `q` is NaN.
    pub fn new(q: f64) -> Self {
        assert!(!q.is_nan(), "flip probability must not be NaN");
        let mut bounds = [u64::MAX; TABLE];
        if q > 0.0 {
            let keep = (1.0 - q).max(0.0);
            let mut keep_pow = 1.0f64; // (1-q)^k
            for b in &mut bounds {
                keep_pow *= keep;
                // CDF: P[skip <= k] = 1 - (1-q)^{k+1}; scale by 2^53
                // (exact: power-of-two multiply) and round up so integer
                // mantissas compare exactly like the f64 CDF would.
                *b = ((1.0 - keep_pow) * (1u64 << 53) as f64).ceil() as u64;
            }
        } else {
            // q <= 0: no mantissa may flip; sample_into returns early
            // anyway, the table is never consulted.
            bounds = [0; TABLE];
        }
        Self {
            q,
            bounds,
            ln_keep: (-q).ln_1p(),
        }
    }

    /// The flip probability this sampler was built for.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Invokes `on_one(i)` for every index `i ∈ [0, slots)` whose
    /// independent Bernoulli(`q`) coin lands 1, in increasing index
    /// order. One RNG word per set position plus one terminating word;
    /// `q ≤ 0` consumes no RNG at all.
    #[inline]
    pub fn sample_into<R, F>(&self, slots: u64, rng: &mut R, mut on_one: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(u64),
    {
        if self.q <= 0.0 {
            return;
        }
        let mut pos: u64 = 0;
        while pos < slots {
            let m = rng.next_u64() >> 11;
            // The skip rank is geometrically distributed, so a scan's
            // exit branch mispredicts on nearly every flip. Instead,
            // rank branchlessly over the first 8 boundaries (covers
            // `1−(1−q)^8` of the mass — >90% for OUE-like q) and only
            // fall into the scan, and then the closed-form tail, for
            // the geometric far end.
            let skip = if m < self.bounds[7] {
                let mut k = 0u64;
                for j in 0..8 {
                    k += u64::from(m >= self.bounds[j]);
                }
                k
            } else if m < self.bounds[TABLE - 1] {
                let mut k = 8u64;
                while m >= self.bounds[k as usize] {
                    k += 1;
                }
                k
            } else {
                // Tail: closed-form inverse CDF. 1−u ∈ (0, 1], so the
                // logarithm is finite and the saturating f64 → u64 cast
                // cannot see NaN; a huge skip from a tiny q saturates
                // and terminates the walk.
                let u = m as f64 * MANTISSA_SCALE;
                (((1.0 - u).ln() / self.ln_keep).floor()) as u64
            };
            pos = pos.saturating_add(skip);
            if pos >= slots {
                return;
            }
            on_one(pos);
            pos += 1;
        }
    }
}

/// One-shot convenience over [`GeometricSkip`]: flips each of `slots`
/// independent Bernoulli(`q`) coins, invoking `on_one(i)` for every set
/// index in increasing order. Builds the boundary table per call — hot
/// loops with a fixed `q` should hold a [`GeometricSkip`] instead (the
/// unary oracles do).
///
/// # Panics
/// Panics if `q` is NaN.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut ones = Vec::new();
/// ldp_core::fo::batch::sample_bernoulli_indices(100, 0.1, &mut rng, |i| ones.push(i));
/// assert!(ones.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
/// assert!(ones.iter().all(|&i| i < 100));
/// ```
pub fn sample_bernoulli_indices<R, F>(slots: u64, q: f64, rng: &mut R, on_one: F)
where
    R: RngCore + ?Sized,
    F: FnMut(u64),
{
    GeometricSkip::new(q).sample_into(slots, rng, on_one);
}

/// Expected number of RNG words [`GeometricSkip::sample_into`] consumes
/// for `slots` positions at flip probability `q`: `1 + slots·q` (each set
/// position costs one word, plus the terminating word). Exposed so
/// benches and docs can state the scalar-vs-batch draw budget precisely.
pub fn expected_draws(slots: u64, q: f64) -> f64 {
    1.0 + slots as f64 * q.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn marginals_match_per_bit_bernoulli() {
        // The geometric-skip sampler must reproduce the per-bit
        // Bernoulli(q) marginal at every position — not just on average.
        let slots = 64u64;
        let q = 0.23;
        let trials = 200_000u64;
        let mut rng = StdRng::seed_from_u64(101);
        let skip = GeometricSkip::new(q);
        let mut counts = vec![0u64; slots as usize];
        for _ in 0..trials {
            skip.sample_into(slots, &mut rng, |i| counts[i as usize] += 1);
        }
        // Per-position rate: sd = sqrt(q(1-q)/trials) ≈ 0.00094; 5 sd.
        let sd = (q * (1.0 - q) / trials as f64).sqrt();
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!(
                (rate - q).abs() < 5.0 * sd,
                "position {i}: rate={rate} expected={q}"
            );
        }
    }

    #[test]
    fn total_ones_variance_matches_binomial() {
        // Independence check: the count of set positions must be
        // Binomial(slots, q) — a sampler with correlated flips would match
        // the marginals but miss the variance.
        let slots = 128u64;
        let q = 0.1;
        let trials = 50_000;
        let mut rng = StdRng::seed_from_u64(103);
        let skip = GeometricSkip::new(q);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..trials {
            let mut ones = 0u64;
            skip.sample_into(slots, &mut rng, |_| ones += 1);
            sum += ones as f64;
            sum_sq += (ones * ones) as f64;
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        let expected_mean = slots as f64 * q;
        let expected_var = slots as f64 * q * (1.0 - q);
        assert!((mean - expected_mean).abs() < 0.1, "mean={mean}");
        assert!(
            (var - expected_var).abs() / expected_var < 0.05,
            "var={var} expected={expected_var}"
        );
    }

    /// The table fast path and the logarithm fallback implement the same
    /// inverse CDF: tail skips (≥ TABLE) must still occur at the exact
    /// geometric rate, or per-bit marginals would kink at position 32.
    #[test]
    fn tail_fallback_matches_geometric_rate() {
        let q = 0.05; // (1-q)^32 ≈ 0.194: a fat, measurable tail
        let skip = GeometricSkip::new(q);
        let mut rng = StdRng::seed_from_u64(107);
        let trials = 200_000;
        let mut first_skip_past_table = 0u64;
        for _ in 0..trials {
            let mut first: Option<u64> = None;
            skip.sample_into(10_000, &mut rng, |i| {
                if first.is_none() {
                    first = Some(i);
                }
            });
            if first.expect("10k slots at q=0.05 always flips something") >= TABLE as u64 {
                first_skip_past_table += 1;
            }
        }
        let rate = first_skip_past_table as f64 / trials as f64;
        let expected = (1.0 - q).powi(TABLE as i32);
        let sd = (expected * (1.0 - expected) / trials as f64).sqrt();
        assert!(
            (rate - expected).abs() < 5.0 * sd,
            "tail rate={rate} expected={expected}"
        );
    }

    #[test]
    fn degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = Vec::new();
        sample_bernoulli_indices(50, 0.0, &mut rng, |i| ones.push(i));
        assert!(ones.is_empty(), "q=0 flips nothing");
        sample_bernoulli_indices(50, 1.0, &mut rng, |i| ones.push(i));
        assert_eq!(ones, (0..50).collect::<Vec<u64>>(), "q=1 flips everything");
        ones.clear();
        sample_bernoulli_indices(0, 0.5, &mut rng, |i| ones.push(i));
        assert!(ones.is_empty(), "zero slots");
    }

    #[test]
    fn tiny_q_terminates() {
        // ln(1-U)/ln(1-q) can exceed u64::MAX as an f64 for tiny q; the
        // saturating cast must terminate the walk rather than wrap. This
        // is also the regression test for ln vs ln_1p: with a plain
        // ln(1.0 - 1e-300) == 0.0 the skip would collapse to 0 forever.
        let mut rng = StdRng::seed_from_u64(5);
        let mut calls = 0u64;
        for _ in 0..1000 {
            sample_bernoulli_indices(u64::MAX, 1e-300, &mut rng, |_| calls += 1);
        }
        // Expected flips over all runs ≈ 1000 · u64::MAX · 1e-300 ≈ 0.
        assert_eq!(calls, 0, "tiny q should essentially never flip");
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_probability_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_bernoulli_indices(10, f64::NAN, &mut rng, |_| {});
    }
}
