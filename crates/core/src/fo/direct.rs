//! Direct encoding (generalized randomized response) as a frequency oracle.
//!
//! The simplest protocol: the report *is* a (perturbed) domain value. Its
//! noise floor grows linearly in the domain size — `(d−2+e^ε)/(e^ε−1)²`
//! per user — which is exactly why RAPPOR/Apple/Microsoft needed encodings:
//! for `d` in the millions, direct encoding is useless. It remains the best
//! choice for small domains (`d < 3e^ε + 2`), a crossover that experiment
//! E2 reproduces.

use super::{FoAggregator, FrequencyOracle};
use crate::privacy::Epsilon;
use crate::rr::KaryRandomizedResponse;
use crate::Result;
use rand::RngCore;

/// Direct encoding / generalized randomized response over `[0, d)`.
#[derive(Debug, Clone, Copy)]
pub struct DirectEncoding {
    inner: KaryRandomizedResponse,
}

impl DirectEncoding {
    /// Creates the oracle for a domain of size `d` (must be ≥ 2).
    ///
    /// # Errors
    /// Returns [`crate::Error::InvalidDomain`] if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Result<Self> {
        Ok(Self {
            inner: KaryRandomizedResponse::new(d, epsilon)?,
        })
    }

    /// Probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.inner.p()
    }

    /// Probability of reporting a specific other value.
    pub fn q(&self) -> f64 {
        self.inner.q()
    }
}

impl FrequencyOracle for DirectEncoding {
    type Report = u64;
    type Aggregator = DirectAggregator;

    fn name(&self) -> &'static str {
        "GRR"
    }

    fn domain_size(&self) -> u64 {
        self.inner.k()
    }

    fn epsilon(&self) -> Epsilon {
        self.inner.epsilon()
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> u64 {
        self.inner.randomize(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(u64),
    {
        // Monomorphized k-ary RR: the two uniform draws per report inline
        // instead of going through the `dyn RngCore` vtable.
        for &v in values {
            sink(self.inner.randomize(v, rng));
        }
    }

    /// Fused batch path: perturbed values land straight in the histogram.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut DirectAggregator,
    ) {
        assert_eq!(
            agg.histogram.len(),
            self.inner.k() as usize,
            "aggregator width mismatch"
        );
        for &v in values {
            agg.histogram[self.inner.randomize(v, rng) as usize] += 1;
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> DirectAggregator {
        DirectAggregator {
            histogram: vec![0; self.inner.k() as usize],
            n: 0,
            p: self.inner.p(),
            q: self.inner.q(),
        }
    }

    fn count_variance(&self, n: usize, f: f64) -> f64 {
        self.inner.count_variance(n, f)
    }

    fn report_bits(&self) -> usize {
        (64 - (self.inner.k() - 1).leading_zeros()) as usize
    }
}

/// Aggregator for [`DirectEncoding`]: a plain histogram plus debiasing.
#[derive(Debug, Clone)]
pub struct DirectAggregator {
    histogram: Vec<u64>,
    n: usize,
    p: f64,
    q: f64,
}

impl crate::snapshot::StateSnapshot for DirectAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::DIRECT
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_counts(out, &self.histogram);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_f64(r, self.p, "GRR p")?;
        crate::snapshot::check_f64(r, self.q, "GRR q")?;
        let n = crate::snapshot::get_count(r)?;
        let histogram = crate::snapshot::get_counts(r, self.histogram.len(), "GRR histogram")?;
        self.n = n;
        self.histogram = histogram;
        Ok(())
    }
}

impl FoAggregator for DirectAggregator {
    type Report = u64;

    fn accumulate(&mut self, report: &u64) {
        self.histogram[*report as usize] += 1;
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &u64) -> crate::Result<()> {
        if *report as usize >= self.histogram.len() {
            return Err(crate::LdpError::Malformed(format!(
                "GRR report {report} outside domain of size {}",
                self.histogram.len()
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.histogram
            .iter()
            .map(|&o| (o as f64 - n * self.q) / (self.p - self.q))
            .collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.histogram.len(),
            other.histogram.len(),
            "merge: domain mismatch"
        );
        assert!(
            self.p == other.p && self.q == other.q,
            "merge: channel probability mismatch"
        );
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.histogram.len() != other.histogram.len() || self.p != other.p || self.q != other.q {
            return Err(crate::LdpError::StateMismatch(
                "subtract: GRR configuration mismatch".into(),
            ));
        }
        if self.n < other.n || !super::counts_fit(&self.histogram, &other.histogram) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: GRR subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        super::subtract_counts(&mut self.histogram, &other.histogram);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aggregator_estimates_sum_to_n() {
        // Sum of debiased GRR estimates is exactly n (since p + (d-1)q = 1).
        let oracle = DirectEncoding::new(10, Epsilon::new(1.0).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut agg = oracle.new_aggregator();
        for u in 0..5000u64 {
            let r = oracle.randomize(u % 10, &mut rng);
            agg.accumulate(&r);
        }
        let est = agg.estimate();
        let total: f64 = est.iter().sum();
        assert!((total - 5000.0).abs() < 1e-6, "total={total}");
        assert_eq!(agg.reports(), 5000);
    }

    #[test]
    fn report_bits_is_log_domain() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(DirectEncoding::new(2, eps).unwrap().report_bits(), 1);
        assert_eq!(DirectEncoding::new(256, eps).unwrap().report_bits(), 8);
        assert_eq!(DirectEncoding::new(257, eps).unwrap().report_bits(), 9);
    }

    #[test]
    fn variance_grows_linearly_with_domain() {
        let eps = Epsilon::new(1.0).unwrap();
        let v_small = DirectEncoding::new(10, eps)
            .unwrap()
            .noise_floor_variance(1000);
        let v_big = DirectEncoding::new(1000, eps)
            .unwrap()
            .noise_floor_variance(1000);
        // (d-2+e^eps) scaling: ratio ≈ 998+e / 8+e ≈ 93
        let ratio = v_big / v_small;
        assert!(ratio > 50.0 && ratio < 150.0, "ratio={ratio}");
    }
}
