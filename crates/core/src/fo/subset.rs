//! Subset selection (SS): the information-theoretically optimal
//! frequency oracle of Ye–Barg (IEEE Trans. IT 2018) / Wang et al.
//!
//! The client reports a *subset* of the domain of fixed size
//! `k = ⌈d/(e^ε+1)⌉`: with probability `k·e^ε/(k·e^ε + d − k)` the subset
//! contains the true value (plus `k−1` uniform others); otherwise it is a
//! uniform subset avoiding the true value. For mid-range ε this meets the
//! minimax lower bound for distribution estimation — the theory thread
//! (§1.4 "theoretical underpinnings") the tutorial points to.
//!
//! Support probabilities (what the aggregator debiases with):
//! `p* = k·e^ε/(k·e^ε + d − k)` for the true item, and for any other item
//! the inclusion probability works out to
//! `q* = p*·(k−1)/(d−1) + (1−p*)·k/(d−1)`.

use super::{FoAggregator, FrequencyOracle};
use crate::estimate::debiased_count_variance;
use crate::privacy::Epsilon;
use rand::seq::index::sample;
use rand::{Rng, RngCore};

/// The subset-selection frequency oracle.
#[derive(Debug, Clone, Copy)]
pub struct SubsetSelection {
    d: u64,
    k: u64,
    epsilon: Epsilon,
    /// Probability the reported subset contains the true value.
    p_include: f64,
}

impl SubsetSelection {
    /// Creates the oracle with the optimal subset size
    /// `k = max(1, round(d/(e^ε+1)))`.
    ///
    /// # Panics
    /// Panics if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        assert!(d >= 2, "subset selection needs d >= 2, got {d}");
        let k = ((d as f64 / (epsilon.exp() + 1.0)).round() as u64).clamp(1, d - 1);
        Self::with_k(d, k, epsilon)
    }

    /// Creates the oracle with an explicit subset size `1 ≤ k < d`
    /// (exposed for the ablation bench).
    ///
    /// # Panics
    /// Panics if `d < 2` or `k` is out of range.
    pub fn with_k(d: u64, k: u64, epsilon: Epsilon) -> Self {
        assert!(d >= 2, "subset selection needs d >= 2, got {d}");
        assert!(k >= 1 && k < d, "need 1 <= k < d, got k={k} d={d}");
        let e = epsilon.exp();
        let kf = k as f64;
        let p_include = kf * e / (kf * e + d as f64 - kf);
        Self {
            d,
            k,
            epsilon,
            p_include,
        }
    }

    /// Subset size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// `(p*, q*)` inclusion probabilities for the true item and any fixed
    /// other item.
    pub fn support_probabilities(&self) -> (f64, f64) {
        let p = self.p_include;
        let (d, k) = (self.d as f64, self.k as f64);
        let q = p * (k - 1.0) / (d - 1.0) + (1.0 - p) * k / (d - 1.0);
        (p, q)
    }

    /// Shared sampling core for the scalar and batch paths.
    fn randomize_impl<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> Vec<u64> {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let include = rng.gen_bool(self.p_include);
        let k = self.k as usize;
        // Uniform distinct items avoiding the true value, shifted past it.
        let others = if include { k - 1 } else { k };
        let mut subset: Vec<u64> = sample(rng, self.d as usize - 1, others)
            .into_iter()
            .map(|i| {
                let i = i as u64;
                if i >= value {
                    i + 1
                } else {
                    i
                }
            })
            .collect();
        if include {
            subset.push(value);
        }
        subset.sort_unstable();
        subset
    }
}

impl FrequencyOracle for SubsetSelection {
    type Report = Vec<u64>;
    type Aggregator = SsAggregator;

    fn name(&self) -> &'static str {
        "SS"
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> Vec<u64> {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(Vec<u64>),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Fused batch path: the sampled items increment the inclusion
    /// counters directly — no subset `Vec` is built and the scalar path's
    /// cosmetic sort is skipped (inclusion counts are order-free). The
    /// RNG draws are identical to the scalar path, so aggregator state is
    /// bit-identical for a given seed.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut SsAggregator,
    ) {
        assert_eq!(
            agg.inclusions.len(),
            self.d as usize,
            "aggregator width mismatch"
        );
        let k = self.k as usize;
        for &v in values {
            assert!(v < self.d, "value {v} outside domain of size {}", self.d);
            let include = rng.gen_bool(self.p_include);
            let others = if include { k - 1 } else { k };
            for i in sample(rng, self.d as usize - 1, others) {
                let i = i as u64;
                let item = if i >= v { i + 1 } else { i };
                agg.inclusions[item as usize] += 1;
            }
            if include {
                agg.inclusions[v as usize] += 1;
            }
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> SsAggregator {
        let (p, q) = self.support_probabilities();
        SsAggregator {
            inclusions: vec![0; self.d as usize],
            n: 0,
            k: self.k,
            p,
            q,
        }
    }

    fn count_variance(&self, n: usize, f: f64) -> f64 {
        let (p, q) = self.support_probabilities();
        debiased_count_variance(n, f * n as f64, p, q)
    }

    fn report_bits(&self) -> usize {
        self.k as usize * (64 - (self.d - 1).leading_zeros()) as usize
    }
}

/// Aggregator for [`SubsetSelection`]: per-item inclusion counts.
#[derive(Debug, Clone)]
pub struct SsAggregator {
    inclusions: Vec<u64>,
    n: usize,
    /// Protocol subset size: every legitimate report carries exactly
    /// `k` items, and the debias formula assumes that cardinality.
    k: u64,
    p: f64,
    q: f64,
}

impl crate::snapshot::StateSnapshot for SsAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::SUBSET
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_uvarint(out, self.k);
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_counts(out, &self.inclusions);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_u64(r, self.k, "SS subset size")?;
        crate::snapshot::check_f64(r, self.p, "SS p")?;
        crate::snapshot::check_f64(r, self.q, "SS q")?;
        let n = crate::snapshot::get_count(r)?;
        let inclusions = crate::snapshot::get_counts(r, self.inclusions.len(), "SS inclusions")?;
        self.n = n;
        self.inclusions = inclusions;
        Ok(())
    }
}

impl FoAggregator for SsAggregator {
    type Report = Vec<u64>;

    fn accumulate(&mut self, report: &Vec<u64>) {
        for &item in report {
            self.inclusions[item as usize] += 1;
        }
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &Vec<u64>) -> crate::Result<()> {
        let d = self.inclusions.len() as u64;
        // The protocol's sensitivity bound: exactly k inclusions per
        // report (the debias formula assumes it — a d-item "subset"
        // would inflate every count).
        if report.len() as u64 != self.k {
            return Err(crate::LdpError::Malformed(format!(
                "subset of {} items, protocol subset size is {}",
                report.len(),
                self.k
            )));
        }
        if let Some(&item) = report.iter().find(|&&item| item >= d) {
            return Err(crate::LdpError::Malformed(format!(
                "subset item {item} outside domain of size {d}"
            )));
        }
        // Legitimate reports are sorted with distinct items (the client
        // sorts); a duplicated item would concentrate the report's k
        // votes on one target, defeating the influence bound.
        if report.windows(2).any(|w| w[0] >= w[1]) {
            return Err(crate::LdpError::Malformed(
                "subset items must be strictly ascending".into(),
            ));
        }
        self.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.inclusions
            .iter()
            .map(|&c| (c as f64 - n * self.q) / (self.p - self.q))
            .collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.inclusions.len(),
            other.inclusions.len(),
            "merge: domain mismatch"
        );
        assert!(
            self.p == other.p && self.q == other.q && self.k == other.k,
            "merge: channel probability mismatch"
        );
        for (a, b) in self.inclusions.iter_mut().zip(&other.inclusions) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.inclusions.len() != other.inclusions.len()
            || self.p != other.p
            || self.q != other.q
            || self.k != other.k
        {
            return Err(crate::LdpError::StateMismatch(
                "subtract: SS configuration mismatch".into(),
            ));
        }
        if self.n < other.n || !super::counts_fit(&self.inclusions, &other.inclusions) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: SS subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        super::subtract_counts(&mut self.inclusions, &other.inclusions);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn optimal_k_tracks_eps() {
        // k = d/(e^eps + 1): small eps -> big subsets, large eps -> k=1.
        assert!(SubsetSelection::new(100, eps(0.1)).k() > 40);
        assert_eq!(SubsetSelection::new(100, eps(5.0)).k(), 1);
    }

    /// The wire-facing checked accumulate enforces the protocol's
    /// sensitivity bound: exactly `k` items per report, all in-domain.
    #[test]
    fn try_accumulate_enforces_subset_size() {
        let ss = SubsetSelection::with_k(16, 3, eps(1.0));
        let mut agg = ss.new_aggregator();
        assert!(agg.try_accumulate(&vec![1, 2, 3]).is_ok());
        // A d-item "subset" would vote d/k times over; reject it.
        assert!(agg.try_accumulate(&(0..16).collect::<Vec<u64>>()).is_err());
        assert!(agg.try_accumulate(&vec![1, 2]).is_err());
        assert!(
            agg.try_accumulate(&vec![1, 2, 16]).is_err(),
            "out of domain"
        );
        // k votes concentrated on one item defeat the influence bound.
        assert!(agg.try_accumulate(&vec![5, 5, 5]).is_err(), "duplicates");
        assert!(agg.try_accumulate(&vec![3, 2, 1]).is_err(), "unsorted");
        assert_eq!(agg.reports(), 1, "rejected reports leave state intact");
    }

    #[test]
    fn k1_reduces_to_grr_variance() {
        // With k=1 SS is GRR: same noise floor.
        use crate::fo::DirectEncoding;
        let d = 32u64;
        let e = eps(4.0);
        let ss = SubsetSelection::with_k(d, 1, e);
        let grr = DirectEncoding::new(d, e).unwrap();
        let (n, f) = (1000, 0.0);
        let ratio = ss.count_variance(n, f) / grr.count_variance(n, f);
        assert!((ratio - 1.0).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn report_is_valid_subset() {
        let ss = SubsetSelection::new(64, eps(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let r = ss.randomize(7, &mut rng);
            assert_eq!(r.len(), ss.k() as usize);
            let mut sorted = r.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), r.len(), "items must be distinct");
            assert!(r.iter().all(|&v| v < 64));
        }
    }

    #[test]
    fn inclusion_probabilities_match_empirics() {
        let ss = SubsetSelection::new(32, eps(1.0));
        let (p, q) = ss.support_probabilities();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut incl_true = 0u64;
        let mut incl_other = 0u64;
        for _ in 0..n {
            let r = ss.randomize(5, &mut rng);
            if r.contains(&5) {
                incl_true += 1;
            }
            if r.contains(&9) {
                incl_other += 1;
            }
        }
        assert!(
            (incl_true as f64 / n as f64 - p).abs() < 0.01,
            "p empirical"
        );
        assert!(
            (incl_other as f64 / n as f64 - q).abs() < 0.01,
            "q empirical"
        );
    }

    #[test]
    fn estimates_unbiased() {
        let ss = SubsetSelection::new(16, eps(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut agg = ss.new_aggregator();
        for u in 0..n {
            agg.accumulate(&ss.randomize((u % 4) as u64, &mut rng));
        }
        let est = agg.estimate();
        let sd = ss.count_variance(n, 0.25).sqrt();
        for (i, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "item {i}: est={e} sd={sd}"
            );
        }
    }

    #[test]
    fn competitive_with_olh_at_low_eps() {
        use crate::fo::OptimizedLocalHashing;
        let d = 1024u64;
        let e = eps(0.5);
        let ss = SubsetSelection::new(d, e).noise_floor_variance(1000);
        let olh = OptimizedLocalHashing::new(d, e).noise_floor_variance(1000);
        // SS is optimal; allow it to be at least as good up to 10% slack.
        assert!(ss <= olh * 1.1, "ss={ss} olh={olh}");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let ss = SubsetSelection::new(8, eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        ss.randomize(8, &mut rng);
    }
}
