//! Hadamard response: a one-bit frequency oracle built on the Fourier
//! trick behind Apple's HCMS.
//!
//! Each user samples a uniform row index `j` of the `m×m` Hadamard matrix
//! (`m` = smallest power of two `> d`), computes the single ±1 entry
//! `H[j, value]` — an O(1) popcount, never materializing the matrix — and
//! sends `(j, bit)` with the bit flipped with probability `1/(e^ε+1)`
//! (binary randomized response).
//!
//! The server averages debiased signs per row to estimate the Hadamard
//! *spectrum* of the frequency vector, then inverts with one fast
//! Walsh–Hadamard transform. Because the transform is orthogonal, noise
//! added uniformly in the spectrum comes back uniformly in the counts: the
//! noise floor is `≈ 4e^ε/(e^ε−1)²·n` — OUE/OLH-grade accuracy from a
//! `log m + 1`-bit report, the communication-optimal point the tutorial
//! highlights in Apple's design.

use super::{FoAggregator, FrequencyOracle};
use crate::privacy::Epsilon;
use ldp_sketch::hadamard::{fwht, hadamard_entry};
use rand::{Rng, RngCore};

/// A Hadamard-response report: a sampled spectrum row and a perturbed sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HrReport {
    /// Uniformly sampled Hadamard row index in `[0, m)`.
    pub index: u64,
    /// The (possibly flipped) sign `H[index, value]`, as `±1`.
    pub sign: i8,
}

/// The Hadamard-response frequency oracle.
#[derive(Debug, Clone, Copy)]
pub struct HadamardResponse {
    d: u64,
    m: u64,
    epsilon: Epsilon,
    p_truth: f64,
}

impl HadamardResponse {
    /// Creates the oracle over `[0, d)`; the spectrum size is the smallest
    /// power of two `≥ d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        assert!(d > 0, "domain must be non-empty");
        let m = d.next_power_of_two();
        let e = epsilon.exp();
        Self {
            d,
            m,
            epsilon,
            p_truth: e / (e + 1.0),
        }
    }

    /// Spectrum size `m` (power of two ≥ d).
    pub fn spectrum_size(&self) -> u64 {
        self.m
    }

    /// Shared sampling core for the scalar and batch paths: one uniform
    /// row draw plus one Bernoulli flip draw per report.
    #[inline]
    fn randomize_impl<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> HrReport {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let index = rng.gen_range(0..self.m);
        let true_sign = hadamard_entry(index, value);
        let sign = if rng.gen_bool(self.p_truth) {
            true_sign
        } else {
            -true_sign
        };
        HrReport { index, sign }
    }
}

impl FrequencyOracle for HadamardResponse {
    type Report = HrReport;
    type Aggregator = HrAggregator;

    fn name(&self) -> &'static str {
        "HR"
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> HrReport {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(HrReport),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Fused batch path: sign and row count fold directly into the
    /// spectrum accumulators.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut HrAggregator,
    ) {
        assert_eq!(
            agg.sign_sums.len(),
            self.m as usize,
            "aggregator spectrum mismatch"
        );
        for &v in values {
            let r = self.randomize_impl(v, rng);
            agg.sign_sums[r.index as usize] += r.sign as i64;
            agg.row_counts[r.index as usize] += 1;
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> HrAggregator {
        HrAggregator {
            sign_sums: vec![0i64; self.m as usize],
            row_counts: vec![0u64; self.m as usize],
            n: 0,
            d: self.d,
            p_truth: self.p_truth,
        }
    }

    fn count_variance(&self, n: usize, _f: f64) -> f64 {
        // Spectrum-uniform noise: Var ≈ n (1/(2p−1)² − 1) = n·4e^ε/(e^ε−1)².
        // (Approximate: ignores multinomial variation in per-row counts.)
        let e = self.epsilon.exp();
        n as f64 * 4.0 * e / (e - 1.0).powi(2)
    }

    fn report_bits(&self) -> usize {
        (64 - (self.m - 1).leading_zeros()) as usize + 1
    }
}

/// Aggregator for [`HadamardResponse`]: per-row sign sums, inverted with a
/// single FWHT at estimation time.
///
/// # Estimation cost
///
/// Every `estimate()`/`estimate_items()` call pays one full fast
/// Walsh–Hadamard transform — `O(m log m)` regardless of how many items
/// are queried, because the transform inverts the whole spectrum at once.
/// There is no per-item shortcut (a single count is a dense functional of
/// all `m` spectrum rows), so callers should batch: query all candidate
/// items in **one** `estimate_items` call rather than looping, and reuse
/// the returned vector rather than re-estimating per lookup.
#[derive(Debug, Clone)]
pub struct HrAggregator {
    sign_sums: Vec<i64>,
    row_counts: Vec<u64>,
    n: usize,
    d: u64,
    p_truth: f64,
}

impl HrAggregator {
    /// Debiased, inverse-transformed counts over the full spectrum
    /// (length `m`); the shared `O(m log m)` work behind both `estimate`
    /// and `estimate_items`.
    fn transformed_counts(&self) -> Vec<f64> {
        let m = self.sign_sums.len();
        let two_p_minus_1 = 2.0 * self.p_truth - 1.0;
        // Unbiased spectrum estimate: theta_j = E[H[j,v]] over the
        // population; each report contributes sign/(2p-1), scaled by m/n to
        // undo the uniform row sampling.
        let n = self.n as f64;
        let mut spectrum: Vec<f64> = self
            .sign_sums
            .iter()
            .map(|&s| (m as f64 / n) * s as f64 / two_p_minus_1)
            .collect();
        // counts = n * (1/m) * H * spectrum  (inverse transform).
        fwht(&mut spectrum);
        for x in &mut spectrum {
            *x *= n / m as f64;
        }
        spectrum
    }
}

impl crate::snapshot::StateSnapshot for HrAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::HADAMARD
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_uvarint(out, self.d);
        crate::wire::put_f64_le(out, self.p_truth);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_signed_counts(out, &self.sign_sums);
        crate::snapshot::put_counts(out, &self.row_counts);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_u64(r, self.d, "HR domain size")?;
        crate::snapshot::check_f64(r, self.p_truth, "HR truth probability")?;
        let n = crate::snapshot::get_count(r)?;
        let sign_sums =
            crate::snapshot::get_signed_counts(r, self.sign_sums.len(), "HR sign sums")?;
        let row_counts = crate::snapshot::get_counts(r, self.row_counts.len(), "HR row counts")?;
        self.n = n;
        self.sign_sums = sign_sums;
        self.row_counts = row_counts;
        Ok(())
    }
}

impl FoAggregator for HrAggregator {
    type Report = HrReport;

    fn accumulate(&mut self, report: &HrReport) {
        self.sign_sums[report.index as usize] += report.sign as i64;
        self.row_counts[report.index as usize] += 1;
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &HrReport) -> crate::Result<()> {
        if report.index as usize >= self.sign_sums.len() {
            return Err(crate::LdpError::Malformed(format!(
                "Hadamard row {} outside spectrum of size {}",
                report.index,
                self.sign_sums.len()
            )));
        }
        if report.sign != 1 && report.sign != -1 {
            return Err(crate::LdpError::Malformed(format!(
                "Hadamard sign must be ±1, got {}",
                report.sign
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        let mut counts = self.transformed_counts();
        counts.truncate(self.d as usize);
        counts
    }

    /// Explicit override of the trait default: runs the FWHT **once** for
    /// the whole item batch and indexes the transformed spectrum, instead
    /// of materializing a second full-domain vector per call. The cost is
    /// still one `O(m log m)` transform per call — batch your items.
    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        let counts = self.transformed_counts();
        items
            .iter()
            .map(|&v| {
                assert!(v < self.d, "item {v} outside domain of size {}", self.d);
                counts[v as usize]
            })
            .collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.sign_sums.len(),
            other.sign_sums.len(),
            "merge: spectrum size mismatch"
        );
        assert!(
            self.d == other.d && self.p_truth == other.p_truth,
            "merge: oracle configuration mismatch"
        );
        for (a, b) in self.sign_sums.iter_mut().zip(&other.sign_sums) {
            *a += b;
        }
        for (a, b) in self.row_counts.iter_mut().zip(&other.row_counts) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.sign_sums.len() != other.sign_sums.len()
            || self.d != other.d
            || self.p_truth != other.p_truth
        {
            return Err(crate::LdpError::StateMismatch(
                "subtract: HR configuration mismatch".into(),
            ));
        }
        // Sign sums are signed (±1 per report), so only the per-row
        // report counts and `n` can detect a non-sub-aggregate.
        if self.n < other.n || !super::counts_fit(&self.row_counts, &other.row_counts) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: HR subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        for (a, b) in self.sign_sums.iter_mut().zip(&other.sign_sums) {
            *a -= b;
        }
        super::subtract_counts(&mut self.row_counts, &other.row_counts);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn spectrum_size_is_next_pow2() {
        assert_eq!(HadamardResponse::new(5, eps(1.0)).spectrum_size(), 8);
        assert_eq!(HadamardResponse::new(8, eps(1.0)).spectrum_size(), 8);
        assert_eq!(HadamardResponse::new(9, eps(1.0)).spectrum_size(), 16);
    }

    #[test]
    fn estimates_unbiased() {
        let hr = HadamardResponse::new(16, eps(2.0));
        let mut rng = StdRng::seed_from_u64(61);
        let n = 60_000;
        let mut agg = hr.new_aggregator();
        for u in 0..n {
            let v = (u % 4) as u64;
            agg.accumulate(&hr.randomize(v, &mut rng));
        }
        let est = agg.estimate();
        assert_eq!(est.len(), 16);
        let sd = hr.count_variance(n, 0.25).sqrt();
        for (i, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "item {i}: est={e} sd={sd}"
            );
        }
        for (i, &e) in est.iter().enumerate().skip(4) {
            assert!(e.abs() < 5.0 * sd, "item {i}: est={e}");
        }
    }

    #[test]
    fn estimates_sum_close_to_n() {
        // Row 0 of H is all-ones, so the spectrum at 0 estimates 1 and the
        // estimate total should track n.
        let hr = HadamardResponse::new(8, eps(1.0));
        let mut rng = StdRng::seed_from_u64(67);
        let n = 30_000;
        let mut agg = hr.new_aggregator();
        for u in 0..n {
            agg.accumulate(&hr.randomize((u % 8) as u64, &mut rng));
        }
        let total: f64 = agg.estimate().iter().sum();
        assert!((total - n as f64).abs() < n as f64 * 0.05, "total={total}");
    }

    #[test]
    fn estimate_items_matches_full_estimate_with_one_transform() {
        let hr = HadamardResponse::new(12, eps(1.0)); // m = 16 > d = 12
        let mut rng = StdRng::seed_from_u64(73);
        let mut agg = hr.new_aggregator();
        for u in 0..5000 {
            agg.accumulate(&hr.randomize((u % 12) as u64, &mut rng));
        }
        let full = agg.estimate();
        assert_eq!(full.len(), 12);
        let items = [0u64, 3, 11];
        let batch = agg.estimate_items(&items);
        for (k, &v) in items.iter().enumerate() {
            assert_eq!(batch[k], full[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn estimate_items_rejects_out_of_domain() {
        let hr = HadamardResponse::new(12, eps(1.0));
        let mut rng = StdRng::seed_from_u64(74);
        let mut agg = hr.new_aggregator();
        agg.accumulate(&hr.randomize(0, &mut rng));
        agg.estimate_items(&[12]); // m = 16, but the domain ends at 12
    }

    #[test]
    fn one_bit_report() {
        let hr = HadamardResponse::new(1 << 20, eps(1.0));
        assert_eq!(hr.report_bits(), 21); // 20-bit index + 1-bit sign
    }

    #[test]
    fn sign_flip_probability_matches() {
        let hr = HadamardResponse::new(4, eps(1.0));
        let mut rng = StdRng::seed_from_u64(71);
        let n = 200_000;
        let mut kept = 0u64;
        for _ in 0..n {
            let r = hr.randomize(2, &mut rng);
            if r.sign == hadamard_entry(r.index, 2) {
                kept += 1;
            }
        }
        let p_hat = kept as f64 / n as f64;
        let p = 1.0f64.exp() / (1.0f64.exp() + 1.0);
        assert!((p_hat - p).abs() < 0.01, "p_hat={p_hat} p={p}");
    }
}
