//! Histogram-encoding frequency oracles: SHE and THE.
//!
//! Instead of flipping bits, the client adds continuous Laplace noise to
//! each coordinate of its one-hot vector. Changing the input moves two
//! coordinates by 1 each (L1 sensitivity 2), so per-coordinate `Lap(2/ε)`
//! gives ε-LDP.
//!
//! * **SHE** (summation with histogram encoding) transmits the raw noisy
//!   vector; the server just sums. Simple, but the noise floor `8/ε²·n` is
//!   never competitive.
//! * **THE** (thresholding with histogram encoding) transmits only the
//!   *indicator* of each noisy coordinate exceeding a threshold `θ`. The
//!   induced channel has `p = 1 − ½e^{ε(θ−1)/2}`, `q = ½e^{−εθ/2}`;
//!   optimizing `θ` numerically (it lands in `(½, 1)`) makes THE
//!   competitive with OUE — the tutorial's example of post-processing
//!   buying back utility.
//!
//! Because the noisy coordinates are independent and the report only
//! carries the threshold indicators, THE's output distribution is exactly
//! "bit `i` set with probability `p` (one-hot position) or `q` (others)".
//! The implementation therefore samples the induced Bernoulli channel
//! directly with geometric skipping ([`crate::fo::batch`]) — `2 + (d−1)·q`
//! expected uniform draws per report instead of `d` Laplace draws — and
//! never materializes the continuous noise it marginalizes out.

use super::{batch, FoAggregator, FrequencyOracle, SetBitSampler};
use crate::estimate::debiased_count_variance;
use crate::noise::fill_laplace;
use crate::privacy::Epsilon;
use crate::{Error, Result};
use ldp_sketch::BitVec;
use rand::{Rng, RngCore};

/// Summation with histogram encoding: report a one-hot vector plus
/// per-coordinate `Lap(2/ε)` noise.
#[derive(Debug, Clone, Copy)]
pub struct SummationHistogramEncoding {
    d: u64,
    epsilon: Epsilon,
    scale: f64,
}

impl SummationHistogramEncoding {
    /// Creates SHE over a domain of `d ≥ 2` items.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!(
                "histogram encoding needs d >= 2, got {d}"
            )));
        }
        Ok(Self {
            d,
            epsilon,
            scale: 2.0 / epsilon.value(),
        })
    }

    /// The per-coordinate Laplace scale `2/ε`.
    pub fn noise_scale(&self) -> f64 {
        self.scale
    }

    /// Shared sampling core for the scalar and batch paths: one batched
    /// Laplace block ([`fill_laplace`] — uniform block then branchless
    /// transform) plus the one-hot bump. Every SHE randomize path runs
    /// through this same kernel, so scalar, batch, and fused streams
    /// stay bit-identical for a given seed.
    fn randomize_impl<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> Vec<f64> {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        let mut out = vec![0.0; self.d as usize];
        fill_laplace(self.scale, rng, &mut out);
        out[value as usize] += 1.0;
        out
    }
}

impl FrequencyOracle for SummationHistogramEncoding {
    type Report = Vec<f64>;
    type Aggregator = SheAggregator;

    fn name(&self) -> &'static str {
        "SHE"
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> Vec<f64> {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(Vec<f64>),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Fused batch path: one scratch block reused across reports — each
    /// report is a [`fill_laplace`] block plus the one-hot bump, added
    /// into the aggregator's sums. No per-report `Vec<f64>`, and the
    /// same kernel (hence the same additions in the same order) as the
    /// scalar randomize→accumulate loop, so the floating-point state is
    /// bit-identical for a given seed.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut SheAggregator,
    ) {
        assert_eq!(agg.sums.len(), self.d as usize, "aggregator width mismatch");
        let mut scratch = vec![0.0; self.d as usize];
        for &v in values {
            assert!(v < self.d, "value {v} outside domain of size {}", self.d);
            fill_laplace(self.scale, rng, &mut scratch);
            scratch[v as usize] += 1.0;
            for (s, x) in agg.sums.iter_mut().zip(&scratch) {
                *s += x;
            }
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> SheAggregator {
        SheAggregator {
            sums: vec![0.0; self.d as usize],
            n: 0,
        }
    }

    fn count_variance(&self, n: usize, _f: f64) -> f64 {
        // Each count estimate is a sum of n Laplace noises: n · 2·(2/ε)².
        n as f64 * 2.0 * self.scale * self.scale
    }

    fn report_bits(&self) -> usize {
        self.d as usize * 64
    }
}

/// Aggregator for [`SummationHistogramEncoding`]: coordinate-wise sums —
/// already unbiased, no debiasing step needed.
#[derive(Debug, Clone)]
pub struct SheAggregator {
    sums: Vec<f64>,
    n: usize,
}

impl crate::snapshot::StateSnapshot for SheAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::SHE
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_reals(out, &self.sums);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        let n = crate::snapshot::get_count(r)?;
        let sums = crate::snapshot::get_reals(r, self.sums.len(), "SHE sums")?;
        self.n = n;
        self.sums = sums;
        Ok(())
    }
}

impl FoAggregator for SheAggregator {
    type Report = Vec<f64>;

    fn accumulate(&mut self, report: &Vec<f64>) {
        assert_eq!(report.len(), self.sums.len(), "report width mismatch");
        for (s, r) in self.sums.iter_mut().zip(report) {
            *s += r;
        }
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &Vec<f64>) -> crate::Result<()> {
        if report.len() != self.sums.len() {
            return Err(crate::LdpError::Malformed(format!(
                "SHE report width {} != domain size {}",
                report.len(),
                self.sums.len()
            )));
        }
        // A NaN/±inf coordinate would poison every estimate permanently;
        // legitimate clients (one-hot + Laplace noise) never produce one.
        if let Some(x) = report.iter().find(|x| !x.is_finite()) {
            return Err(crate::LdpError::Malformed(format!(
                "SHE report carries non-finite coordinate {x}"
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        self.sums.clone()
    }

    /// Coordinate-wise sum of the two states. The only floating-point
    /// merge in the family: equal to sequential accumulation up to
    /// addition reassociation (the counts are exact for every integer
    /// aggregator).
    fn merge(&mut self, other: Self) {
        assert_eq!(self.sums.len(), other.sums.len(), "merge: domain mismatch");
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.n += other.n;
    }

    /// SHE keeps the trait's refusal, with its own reason: the state is
    /// floating-point sums, and `(a + b) - b == a` does not hold for
    /// `f64` once additions reassociate — a "subtracted" total would
    /// silently drift from the rebuild-from-deltas truth, so the window
    /// layer must re-merge live windows instead.
    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        let _ = other;
        Err(crate::LdpError::NotSubtractive(
            "SHE state is floating-point sums; subtraction is not an exact merge inverse".into(),
        ))
    }
}

/// Thresholding with histogram encoding: SHE followed by a client-side
/// threshold at `θ`, transmitting one bit per coordinate.
///
/// Implemented by sampling the induced `(p, q)` Bernoulli channel
/// directly (the thresholded-Laplace construction marginalizes to exactly
/// that), with geometric-skip sampling of the set bits.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdHistogramEncoding {
    d: u64,
    epsilon: Epsilon,
    theta: f64,
    p: f64,
    q: f64,
    /// Geometric-skip sampler for the zero-position rate `q`,
    /// precomputed once per oracle (CDF boundary table).
    skip: batch::GeometricSkip,
}

impl ThresholdHistogramEncoding {
    /// Creates THE with the variance-optimal threshold for `epsilon`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `d < 2`.
    pub fn new(d: u64, epsilon: Epsilon) -> Result<Self> {
        let theta = Self::optimal_theta(epsilon);
        Self::with_theta(d, epsilon, theta)
    }

    /// Creates THE with an explicit threshold `θ ∈ (0, 1]`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] if `d < 2`, or
    /// [`Error::InvalidParameter`] for θ outside `(0, 1]`.
    pub fn with_theta(d: u64, epsilon: Epsilon, theta: f64) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!(
                "histogram encoding needs d >= 2, got {d}"
            )));
        }
        if !(theta > 0.0 && theta <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "theta must be in (0,1], got {theta}"
            )));
        }
        let (p, q) = Self::channel(epsilon, theta);
        Ok(Self {
            d,
            epsilon,
            theta,
            p,
            q,
            skip: batch::GeometricSkip::new(q),
        })
    }

    /// The `(p, q)` channel induced by thresholding `Lap(2/ε)` noise at θ:
    /// `p = P[1 + Lap > θ] = 1 − ½e^{ε(θ−1)/2}`,
    /// `q = P[0 + Lap > θ] = ½e^{−εθ/2}`.
    fn channel(epsilon: Epsilon, theta: f64) -> (f64, f64) {
        let e = epsilon.value();
        let p = 1.0 - 0.5 * (e * (theta - 1.0) / 2.0).exp();
        let q = 0.5 * (-e * theta / 2.0).exp();
        (p, q)
    }

    /// Numerically minimizes the noise-floor variance `q(1−q)/(p−q)²` over
    /// `θ ∈ (½, 1]` by golden-section search (the objective is unimodal
    /// there, per Wang et al.).
    pub fn optimal_theta(epsilon: Epsilon) -> f64 {
        let objective = |theta: f64| {
            let (p, q) = Self::channel(epsilon, theta);
            q * (1.0 - q) / (p - q).powi(2)
        };
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (0.5, 1.0);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = objective(x1);
        let mut f2 = objective(x2);
        for _ in 0..80 {
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = objective(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = objective(x2);
            }
        }
        (lo + hi) / 2.0
    }

    /// The threshold in use.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The induced `(p, q)` channel.
    pub fn probabilities(&self) -> (f64, f64) {
        (self.p, self.q)
    }

    fn randomize_impl<R: RngCore + ?Sized>(&self, value: u64, rng: &mut R) -> BitVec {
        let mut bits = BitVec::zeros(self.d as usize);
        self.sample_ones(value, rng, |i| bits.set(i, true));
        bits
    }
}

/// One Bernoulli(`p`) draw for the one-hot position, geometric-skip
/// sampling at rate `q` for the rest. Shared by the scalar and fused
/// batch paths, so both consume identical RNG streams.
impl SetBitSampler for ThresholdHistogramEncoding {
    #[inline]
    fn sample_ones<R: RngCore + ?Sized>(
        &self,
        value: u64,
        rng: &mut R,
        mut on_one: impl FnMut(usize),
    ) {
        assert!(
            value < self.d,
            "value {value} outside domain of size {}",
            self.d
        );
        if rng.gen_bool(self.p) {
            on_one(value as usize);
        }
        self.skip.sample_into(self.d - 1, rng, |k| {
            let pos = k + u64::from(k >= value);
            on_one(pos as usize);
        });
    }
}

impl FrequencyOracle for ThresholdHistogramEncoding {
    type Report = BitVec;
    type Aggregator = TheAggregator;

    fn name(&self) -> &'static str {
        "THE"
    }

    fn domain_size(&self) -> u64 {
        self.d
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, value: u64, rng: &mut dyn RngCore) -> BitVec {
        self.randomize_impl(value, rng)
    }

    fn randomize_batch<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(BitVec),
    {
        for &v in values {
            sink(self.randomize_impl(v, rng));
        }
    }

    /// Reusable-buffer batch path: one `BitVec` cleared and re-filled per
    /// report; same RNG stream — and hence same bits — as the owned path.
    fn randomize_batch_ref<R, F>(&self, values: &[u64], rng: &mut R, mut sink: F)
    where
        R: RngCore,
        F: FnMut(&BitVec),
    {
        let mut bits = BitVec::zeros(self.d as usize);
        for &v in values {
            bits.clear();
            self.sample_ones(v, rng, |i| bits.set(i, true));
            sink(&bits);
        }
    }

    /// Fused batch path: geometric-skip-sampled set bits go straight into
    /// the aggregator's per-position counters, no `BitVec` materialized.
    fn randomize_accumulate_batch<R: RngCore>(
        &self,
        values: &[u64],
        rng: &mut R,
        agg: &mut TheAggregator,
    ) {
        assert_eq!(agg.ones.len(), self.d as usize, "aggregator width mismatch");
        assert!(
            agg.p == self.p && agg.q == self.q,
            "aggregator channel mismatch"
        );
        for &v in values {
            let ones = &mut agg.ones;
            self.sample_ones(v, rng, |i| ones[i] += 1);
            agg.n += 1;
        }
    }

    fn new_aggregator(&self) -> TheAggregator {
        TheAggregator {
            ones: vec![0; self.d as usize],
            n: 0,
            p: self.p,
            q: self.q,
        }
    }

    fn count_variance(&self, n: usize, f: f64) -> f64 {
        debiased_count_variance(n, f * n as f64, self.p, self.q)
    }

    fn report_bits(&self) -> usize {
        self.d as usize
    }
}

/// Aggregator for [`ThresholdHistogramEncoding`]: per-position counts with
/// `(p, q)` debiasing.
#[derive(Debug, Clone)]
pub struct TheAggregator {
    ones: Vec<u64>,
    n: usize,
    p: f64,
    q: f64,
}

impl crate::snapshot::StateSnapshot for TheAggregator {
    fn state_tag(&self) -> u8 {
        crate::snapshot::state_tag::THE
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        crate::wire::put_f64_le(out, self.p);
        crate::wire::put_f64_le(out, self.q);
        crate::snapshot::put_count(out, self.n);
        crate::snapshot::put_counts(out, &self.ones);
    }

    fn restore_payload(&mut self, r: &mut crate::wire::WireReader<'_>) -> crate::Result<()> {
        crate::snapshot::check_f64(r, self.p, "THE p")?;
        crate::snapshot::check_f64(r, self.q, "THE q")?;
        let n = crate::snapshot::get_count(r)?;
        let ones = crate::snapshot::get_counts(r, self.ones.len(), "THE ones")?;
        self.n = n;
        self.ones = ones;
        Ok(())
    }
}

impl FoAggregator for TheAggregator {
    type Report = BitVec;

    fn accumulate(&mut self, report: &BitVec) {
        assert_eq!(report.len(), self.ones.len(), "report width mismatch");
        report.accumulate_into(&mut self.ones);
        self.n += 1;
    }

    fn try_accumulate(&mut self, report: &BitVec) -> crate::Result<()> {
        if report.len() != self.ones.len() {
            return Err(crate::LdpError::Malformed(format!(
                "THE report width {} != domain size {}",
                report.len(),
                self.ones.len()
            )));
        }
        self.accumulate(report);
        Ok(())
    }

    fn try_accumulate_packed_bits(
        &mut self,
        bytes: &[u8],
        bits: usize,
    ) -> Option<crate::Result<()>> {
        let res = super::accumulate_packed_ones(&mut self.ones, bytes, bits);
        if res.is_ok() {
            self.n += 1;
        }
        Some(res)
    }

    fn try_accumulate_packed_bits_batch(
        &mut self,
        payloads: &[(&[u8], usize)],
    ) -> Option<(usize, crate::Result<()>)> {
        let (applied, res) = super::accumulate_packed_ones_batch(&mut self.ones, payloads);
        self.n += applied;
        Some((applied, res))
    }

    fn reports(&self) -> usize {
        self.n
    }

    fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.ones
            .iter()
            .map(|&o| (o as f64 - n * self.q) / (self.p - self.q))
            .collect()
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.ones.len(), other.ones.len(), "merge: domain mismatch");
        assert!(
            self.p == other.p && self.q == other.q,
            "merge: channel probability mismatch"
        );
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        self.n += other.n;
    }

    fn try_subtract(&mut self, other: &Self) -> crate::Result<()> {
        if self.ones.len() != other.ones.len() || self.p != other.p || self.q != other.q {
            return Err(crate::LdpError::StateMismatch(
                "subtract: THE configuration mismatch".into(),
            ));
        }
        if self.n < other.n || !super::counts_fit(&self.ones, &other.ones) {
            return Err(crate::LdpError::StateMismatch(
                "subtract: THE subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        super::subtract_counts(&mut self.ones, &other.ones);
        self.n -= other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// The wire-facing checked accumulate rejects non-finite
    /// coordinates — one NaN would otherwise poison every estimate.
    #[test]
    fn she_try_accumulate_rejects_non_finite() {
        let she = SummationHistogramEncoding::new(4, eps(1.0)).unwrap();
        let mut agg = she.new_aggregator();
        assert!(agg.try_accumulate(&vec![0.5, -0.2, 1.1, 0.0]).is_ok());
        assert!(agg.try_accumulate(&vec![0.5, f64::NAN, 1.1, 0.0]).is_err());
        assert!(agg
            .try_accumulate(&vec![f64::INFINITY, 0.0, 0.0, 0.0])
            .is_err());
        assert!(agg.try_accumulate(&vec![0.5, 0.2]).is_err(), "width");
        assert_eq!(agg.reports(), 1, "rejected reports leave state intact");
        assert!(agg.estimate().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn she_variance_is_8_over_eps_sq_per_user() {
        let she = SummationHistogramEncoding::new(8, eps(2.0)).unwrap();
        let v = she.count_variance(1000, 0.3);
        assert!((v - 1000.0 * 8.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn she_estimates_unbiased() {
        let she = SummationHistogramEncoding::new(4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let n = 20_000;
        let mut agg = she.new_aggregator();
        for u in 0..n {
            agg.accumulate(&she.randomize((u % 4) as u64, &mut rng));
        }
        let est = agg.estimate();
        for (i, &e) in est.iter().enumerate().take(4) {
            let sd = she.count_variance(n, 0.25).sqrt();
            assert!((e - n as f64 / 4.0).abs() < 5.0 * sd, "item {i}: {e}");
        }
    }

    #[test]
    fn the_optimal_theta_in_expected_range() {
        for &e in &[0.5, 1.0, 2.0, 4.0] {
            let theta = ThresholdHistogramEncoding::optimal_theta(eps(e));
            assert!(theta > 0.5 && theta <= 1.0, "eps={e} theta={theta}");
        }
    }

    #[test]
    fn the_optimal_theta_beats_fixed_choices() {
        let e = eps(1.0);
        let opt = ThresholdHistogramEncoding::new(16, e).unwrap();
        let n = 1000;
        for &theta in &[0.55, 0.7, 0.9, 1.0] {
            let fixed = ThresholdHistogramEncoding::with_theta(16, e, theta).unwrap();
            assert!(
                opt.noise_floor_variance(n) <= fixed.noise_floor_variance(n) * 1.001,
                "theta={theta}"
            );
        }
    }

    #[test]
    fn the_channel_probabilities_consistent_with_sampling() {
        let the = ThresholdHistogramEncoding::new(2, eps(1.5)).unwrap();
        let (p, q) = the.probabilities();
        let mut rng = StdRng::seed_from_u64(47);
        let n = 200_000;
        let mut ones_true = 0u64;
        let mut ones_false = 0u64;
        for _ in 0..n {
            let r = the.randomize(0, &mut rng);
            if r.get(0) {
                ones_true += 1;
            }
            if r.get(1) {
                ones_false += 1;
            }
        }
        let p_hat = ones_true as f64 / n as f64;
        let q_hat = ones_false as f64 / n as f64;
        assert!((p_hat - p).abs() < 0.01, "p_hat={p_hat} p={p}");
        assert!((q_hat - q).abs() < 0.01, "q_hat={q_hat} q={q}");
    }

    #[test]
    fn the_competitive_with_she() {
        // THE's optimized threshold should beat SHE's raw noise floor.
        let e = eps(1.0);
        let n = 1000;
        let the = ThresholdHistogramEncoding::new(64, e).unwrap();
        let she = SummationHistogramEncoding::new(64, e).unwrap();
        assert!(the.noise_floor_variance(n) < she.noise_floor_variance(n));
    }

    #[test]
    fn the_rejects_bad_theta() {
        assert!(ThresholdHistogramEncoding::with_theta(4, eps(1.0), 0.0).is_err());
        assert!(ThresholdHistogramEncoding::with_theta(4, eps(1.0), 1.5).is_err());
    }
}
