//! The statistical toolkit of §1.1: debiasing, variance, and confidence
//! tail bounds.
//!
//! Every LDP estimator in this workspace follows the same template the
//! tutorial teaches:
//!
//! 1. The randomizer maps a true "support" event to an observed event with
//!    probability `p`, and a non-support event to the same observation with
//!    probability `q < p`.
//! 2. The observed count `C` then has mean `c·p + (n−c)·q` for true count
//!    `c`, so [`debias_count`] inverts it: `ĉ = (C − n·q)/(p − q)` —
//!    unbiased for any `(p, q)`.
//! 3. The variance of `ĉ` follows from `C` being a sum of independent
//!    Bernoullis ([`debiased_count_variance`]), and tail bounds
//!    ([`hoeffding_bound`], [`ConfidenceInterval`]) turn that into the
//!    "with probability 1−β, the error is at most …" statements the
//!    deployed systems quote.

/// Inverts the `(p, q)` perturbation channel: given `observed` reports
/// supporting an item out of `n` total, returns the unbiased count estimate
/// `(observed − n·q)/(p − q)`.
///
/// The estimate may be negative — clamping would introduce bias, so callers
/// that need non-negativity must do it explicitly (and knowingly).
///
/// # Panics
/// Panics if `p <= q` (the channel must be informative) or the
/// probabilities are outside `[0, 1]`.
///
/// # Examples
/// ```
/// // A channel with p=0.75, q=0.25 over n=1000 reports observing 500
/// // supports implies a true count of 500*?: (500 - 250)/0.5 = 500.
/// assert_eq!(ldp_core::estimate::debias_count(500.0, 1000, 0.75, 0.25), 500.0);
/// ```
pub fn debias_count(observed: f64, n: usize, p: f64, q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&q),
        "p, q must be probabilities"
    );
    assert!(p > q, "channel must satisfy p > q (got p={p}, q={q})");
    (observed - n as f64 * q) / (p - q)
}

/// The variance of [`debias_count`]'s estimate when the item's true count
/// is `c` out of `n`:
/// `Var[ĉ] = [ n·q(1−q) + c·(p(1−p) − q(1−q)) ] / (p−q)²`.
///
/// At `c = 0` this reduces to the `n·q(1−q)/(p−q)²` "noise floor" that
/// Wang et al. use to compare frequency oracles (their `Var*`).
pub fn debiased_count_variance(n: usize, c: f64, p: f64, q: f64) -> f64 {
    assert!(p > q, "channel must satisfy p > q");
    let nf = n as f64;
    (nf * q * (1.0 - q) + c * (p * (1.0 - p) - q * (1.0 - q))) / (p - q).powi(2)
}

/// Hoeffding bound: with probability at least `1 − beta`, the mean of `n`
/// independent values in `[lo, hi]` deviates from its expectation by less
/// than the returned amount `= (hi−lo)·√(ln(2/β)/(2n))`.
///
/// # Panics
/// Panics if `n == 0`, `beta` outside (0, 1), or `hi <= lo`.
pub fn hoeffding_bound(n: usize, beta: f64, lo: f64, hi: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    assert!(hi > lo, "need hi > lo");
    (hi - lo) * ((2.0 / beta).ln() / (2.0 * n as f64)).sqrt()
}

/// Bernstein bound: with probability at least `1 − beta`, a sum of `n`
/// independent zero-mean values with `|X| ≤ m` and per-value variance
/// `sigma_sq` deviates by less than
/// `√(2·n·σ²·ln(2/β)) + (2m/3)·ln(2/β)`.
///
/// Tighter than Hoeffding when the variance is small relative to the range,
/// which is exactly the regime of debiased LDP reports.
///
/// # Panics
/// Panics if arguments are out of range.
pub fn bernstein_bound(n: usize, sigma_sq: f64, m: f64, beta: f64) -> f64 {
    assert!(
        n > 0 && sigma_sq >= 0.0 && m > 0.0,
        "invalid Bernstein arguments"
    );
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    let l = (2.0 / beta).ln();
    (2.0 * n as f64 * sigma_sq * l).sqrt() + 2.0 * m * l / 3.0
}

/// A symmetric confidence interval `estimate ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate at the interval's center.
    pub estimate: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Gaussian-approximation interval from an estimate and its variance:
    /// `estimate ± z_{1−β/2}·σ`.
    ///
    /// # Panics
    /// Panics if `variance < 0` or `confidence` outside (0, 1).
    pub fn normal_approx(estimate: f64, variance: f64, confidence: f64) -> Self {
        assert!(variance >= 0.0, "variance must be non-negative");
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        let z = normal_quantile(0.5 + confidence / 2.0);
        Self {
            estimate,
            half_width: z * variance.sqrt(),
            confidence,
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

/// Standard normal quantile (inverse CDF) via the Acklam rational
/// approximation — absolute error below 1.15e−9 over (0, 1).
///
/// # Panics
/// Panics if `p` is not strictly inside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile argument must be in (0,1), got {p}"
    );
    // Coefficients from Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial; |error| < 1.5e−7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if x >= 0.0 {
        1.0 - pdf * poly
    } else {
        pdf * poly
    }
}

/// Sample mean of a slice. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice (divides by `n`). Returns 0 for slices of
/// length < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn debias_inverts_expectation() {
        // If every one of c items reports support with prob p and the other
        // n-c with prob q, E[observed] = c p + (n-c) q; debias recovers c.
        let (n, c, p, q) = (1000usize, 200.0, 0.7, 0.2);
        let expected_observed = c * p + (n as f64 - c) * q;
        let est = debias_count(expected_observed, n, p, q);
        assert!((est - c).abs() < 1e-9);
    }

    #[test]
    fn variance_formula_at_zero_count_is_noise_floor() {
        let v = debiased_count_variance(10_000, 0.0, 0.5, 0.25);
        let expected = 10_000.0 * 0.25 * 0.75 / 0.0625;
        assert!((v - expected).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_shrinks_with_n_and_beta() {
        let a = hoeffding_bound(100, 0.05, 0.0, 1.0);
        let b = hoeffding_bound(10_000, 0.05, 0.0, 1.0);
        assert!(b < a);
        let c = hoeffding_bound(100, 0.5, 0.0, 1.0);
        assert!(c < a, "weaker confidence -> tighter bound");
    }

    #[test]
    fn bernstein_beats_hoeffding_for_small_variance() {
        // Sum deviation bounds: Hoeffding for sums is (hi-lo) sqrt(n ln(2/b)/2).
        let n = 10_000;
        let beta = 0.05;
        let hoeff_sum = 2.0 * (n as f64 * (2.0f64 / beta).ln() / 2.0).sqrt();
        let bern = bernstein_bound(n, 0.01, 1.0, beta);
        assert!(bern < hoeff_sum, "bern={bern} hoeff={hoeff_sum}");
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.0250).abs() < 1e-3);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    fn interval_basics() {
        let ci = ConfidenceInterval::normal_approx(10.0, 4.0, 0.95);
        assert!(ci.contains(10.0));
        assert!(ci.contains(10.0 + 1.9 * 2.0));
        assert!(!ci.contains(10.0 + 2.1 * 2.0));
        assert!((ci.hi() - ci.lo() - 2.0 * ci.half_width).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_debias_roundtrip(c in 0.0f64..1000.0, p in 0.55f64..0.99, q in 0.01f64..0.45) {
            let n = 1000usize;
            let observed = c * p + (n as f64 - c) * q;
            let est = debias_count(observed, n, p, q);
            prop_assert!((est - c).abs() < 1e-6);
        }

        #[test]
        fn prop_variance_nonnegative(n in 1usize..100_000, c_frac in 0.0f64..1.0,
                                     p in 0.55f64..0.99, q in 0.01f64..0.45) {
            let c = c_frac * n as f64;
            prop_assert!(debiased_count_variance(n, c, p, q) >= 0.0);
        }

        #[test]
        fn prop_quantile_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
            if p1 < p2 {
                prop_assert!(normal_quantile(p1) <= normal_quantile(p2));
            }
        }
    }
}
