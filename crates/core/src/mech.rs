//! The cross-crate batch-collection abstraction: [`BatchMechanism`].
//!
//! [`crate::fo::FrequencyOracle`] is the engine-facing trait for mechanisms whose
//! input is an item `v ∈ [0, d)` — but the deployed systems the tutorial
//! benchmarks against are not all frequency oracles. Microsoft's 1BitMean
//! consumes a *real-valued* input, and the assembled telemetry pipeline
//! consumes a `(device, value)` pair because its randomness was drawn at
//! enrollment. What those mechanisms share with the oracles is exactly the
//! shape the sharded collection engine (`ldp_workloads::parallel`) needs:
//!
//! 1. an input type that can be sliced into shards,
//! 2. a mergeable aggregator, and
//! 3. a fused randomize→accumulate batch step over a monomorphized RNG.
//!
//! [`BatchMechanism`] captures that shape. Every [`crate::fo::FrequencyOracle`]
//! participates for free through the blanket impl on `&O` (references,
//! so the impl cannot overlap with downstream impls on concrete mechanism
//! types), and non-oracle mechanisms — `ldp_microsoft::OneBitMean`, the
//! telemetry pipeline's per-round view — implement the trait directly.
//!
//! The determinism contract carries over unchanged: an implementation's
//! `accumulate_batch` must consume exactly the RNG stream of the
//! mechanism's scalar randomize+accumulate loop, so shard replays are
//! reproducible across the scalar/batch boundary (the cross-crate
//! bit-identity harnesses in `crates/apple/tests` and
//! `crates/microsoft/tests` enforce this, mirroring
//! `crates/core/tests/batch_oracles.rs`).

use crate::fo::{FoAggregator, FrequencyOracle};
use rand::RngCore;

/// A mechanism whose collection rounds can be batch-fused and sharded:
/// the generalized engine-facing contract behind
/// `ldp_workloads::parallel`'s `accumulate_mech_sharded*` entry points.
pub trait BatchMechanism {
    /// One client's input (an item, a bounded numeric value, a
    /// `(device, value)` pair, …). `Clone` so populations can be built
    /// and sliced; shards borrow, they never clone.
    type Input: Clone;

    /// The mergeable server-side state reports are fused into.
    type Aggregator: FoAggregator;

    /// Creates an empty aggregator configured for this mechanism.
    fn new_aggregator(&self) -> Self::Aggregator;

    /// Fused batch step: privatizes every input and folds the reports
    /// straight into `agg`, with zero per-report allocation where the
    /// mechanism can avoid it.
    ///
    /// For a given RNG seed this must consume **exactly** the same RNG
    /// stream as the mechanism's scalar randomize+accumulate loop over
    /// the same inputs — the bit-identity contract that makes sharded
    /// collection reproducible across the scalar/batch boundary.
    ///
    /// # Panics
    /// Panics if an input is invalid for the mechanism or `agg` was
    /// configured for a different mechanism instance.
    fn accumulate_batch<R: RngCore>(
        &self,
        inputs: &[Self::Input],
        rng: &mut R,
        agg: &mut Self::Aggregator,
    );
}

/// Every frequency oracle is a batch mechanism over `u64` items. The impl
/// lives on `&O` rather than `O` so it cannot overlap with direct
/// [`BatchMechanism`] impls on non-oracle mechanism types in downstream
/// crates (coherence would otherwise forbid those).
impl<O: FrequencyOracle> BatchMechanism for &O {
    type Input = u64;
    type Aggregator = O::Aggregator;

    fn new_aggregator(&self) -> O::Aggregator {
        FrequencyOracle::new_aggregator(*self)
    }

    fn accumulate_batch<R: RngCore>(&self, inputs: &[u64], rng: &mut R, agg: &mut O::Aggregator) {
        self.randomize_accumulate_batch(inputs, rng, agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::DirectEncoding;
    use crate::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The blanket `&O` impl must replay the oracle's fused path exactly.
    #[test]
    fn oracle_adapter_matches_fused_path() {
        let oracle = DirectEncoding::new(16, Epsilon::new(1.0).unwrap()).unwrap();
        let values: Vec<u64> = (0..500).map(|i| i % 16).collect();

        let mut direct_rng = StdRng::seed_from_u64(9);
        let mut direct_agg = oracle.new_aggregator();
        oracle.randomize_accumulate_batch(&values, &mut direct_rng, &mut direct_agg);

        let mech = &oracle;
        let mut mech_rng = StdRng::seed_from_u64(9);
        let mut mech_agg = BatchMechanism::new_aggregator(&mech);
        mech.accumulate_batch(&values, &mut mech_rng, &mut mech_agg);

        assert_eq!(mech_agg.reports(), direct_agg.reports());
        assert_eq!(mech_agg.estimate(), direct_agg.estimate());
    }
}
