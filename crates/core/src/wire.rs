//! The compact binary wire format and the type-erased collection API.
//!
//! Deployed LDP systems (RAPPOR, Apple, Microsoft) are client/server
//! protocols: millions of heterogeneous clients send *serialized*
//! randomized reports to a collector that knows the protocol only from a
//! versioned configuration. This module is that seam for the workspace:
//!
//! * **Frames** — every report crosses the wire as one self-delimiting
//!   frame: `[version: u8] [tag: u8] [payload_len: uvarint] [payload]`.
//!   Multi-byte integers inside payloads are **little-endian**; lengths
//!   and small integers are LEB128 varints ([`put_uvarint`]). The tag
//!   names the report type ([`tag`]), so a collector can reject frames
//!   for the wrong mechanism without attempting a parse.
//! * **[`WireReport`]** — the per-report-type codec:
//!   [`encode_report`] / [`decode_report`] round-trip every report type
//!   in the workspace (`u64`, [`BitVec`], `Vec<f64>`, `Vec<u64>`,
//!   [`LhReport`], [`CohortLhReport`], [`HrReport`], `bool` here;
//!   CMS/HCMS, dBitFlip, and RAPPOR reports in their own crates).
//!   Decoding is **panic-free**: malformed, truncated, or wrong-version
//!   bytes come back as [`LdpError`], never as a panic or an
//!   out-of-bounds index.
//! * **[`ErasedMechanism`] / [`ErasedAggregator`]** — the object-safe
//!   face of [`BatchMechanism`]: randomize-from-bytes on the client,
//!   accumulate-from-bytes, merge, and estimate on the server, all
//!   behind `dyn` so one collector service can host any mechanism a
//!   [`crate::protocol::Registry`] instantiates at runtime. The
//!   [`ErasedBridge`] blanket implementation adapts any
//!   [`WireMechanism`] (a [`BatchMechanism`] whose reports and inputs
//!   have wire codecs), so dynamic dispatch reuses the same aggregators,
//!   merge paths, and estimate code the fused generic engine drives —
//!   the byte path is bit-identical to the generic path for a given RNG
//!   seed (enforced by `tests/service_dispatch.rs` at the workspace
//!   root).
//!
//! The scalar-vs-batch bit-identity contract of
//! [`crate::fo::FrequencyOracle`] is what makes this work: a client that
//! randomizes scalar reports, encodes, and ships bytes produces exactly
//! the aggregator state of the fused in-process path, because both
//! consume the same RNG stream and fold into the same counters.

use crate::fo::{FoAggregator, FrequencyOracle, SetBitSampler};
use crate::mech::BatchMechanism;
use crate::protocol::ProtocolDescriptor;
use crate::{LdpError, Result};
use ldp_sketch::BitVec;
use rand::{RngCore, SeedableRng};
use std::any::Any;

pub use crate::fo::hadamard::HrReport;
pub use crate::fo::hashing::{CohortLhReport, LhReport};

/// The wire-format version this build encodes and accepts.
pub const WIRE_VERSION: u8 = 1;

/// Report-type tags carried in byte 1 of every frame.
///
/// Tags are a workspace-wide registry: core report types use `1..=15`,
/// Apple `16..=23`, Microsoft `24..=31`, RAPPOR `32..=39`. Downstream
/// crates implementing [`WireReport`] for their own report types must
/// pick an unused tag.
pub mod tag {
    /// `u64` item report (direct encoding / GRR).
    pub const ITEM: u8 = 1;
    /// [`ldp_sketch::BitVec`] report (SUE, OUE, THE).
    pub const BITS: u8 = 2;
    /// `Vec<f64>` report (SHE).
    pub const REAL_VEC: u8 = 3;
    /// `Vec<u64>` report (subset selection).
    pub const ITEM_SET: u8 = 4;
    /// [`super::LhReport`] (random-seed BLH/OLH).
    pub const LOCAL_HASH: u8 = 5;
    /// [`super::CohortLhReport`] (cohort OLH).
    pub const COHORT_HASH: u8 = 6;
    /// [`super::HrReport`] (Hadamard response).
    pub const HADAMARD: u8 = 7;
    /// `bool` report (Microsoft 1BitMean).
    pub const BIT: u8 = 8;
    /// Apple CMS report (`ldp_apple::cms::CmsReport`).
    pub const APPLE_CMS: u8 = 16;
    /// Apple HCMS report (`ldp_apple::hcms::HcmsReport`).
    pub const APPLE_HCMS: u8 = 17;
    /// Microsoft dBitFlip report (`ldp_microsoft::DBitReport`).
    pub const MS_DBIT: u8 = 24;
    /// RAPPOR report (`ldp_rappor::RapporReport`).
    pub const RAPPOR: u8 = 32;
}

// ---------------------------------------------------------------------
// Byte-level primitives.
// ---------------------------------------------------------------------

/// Appends a LEB128 unsigned varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Encodes a LEB128 unsigned varint into a stack array, returning the
/// buffer and the encoded length — for hot paths that splice a varint
/// into a larger frame without touching the heap ([`put_uvarint`] is the
/// `Vec` flavor of the same encoding).
#[must_use]
pub fn uvarint_array(mut v: u64) -> ([u8; 10], usize) {
    let mut buf = [0u8; 10];
    let mut n = 0usize;
    while v >= 0x80 {
        buf[n] = (v as u8) | 0x80;
        v >>= 7;
        n += 1;
    }
    buf[n] = v as u8;
    (buf, n + 1)
}

/// Appends a `u64` as 8 little-endian bytes.
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as 8 little-endian IEEE-754 bytes.
pub fn put_f64_le(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked cursor over one payload slice. Every read returns
/// [`LdpError::Truncated`] instead of panicking when bytes run out.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(LdpError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64_le(&mut self) -> Result<f64> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a LEB128 unsigned varint, rejecting non-canonical or
    /// overlong encodings.
    pub fn uvarint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let chunk = (b & 0x7f) as u64;
            // The 10th byte (shift 63) may only carry bit 0.
            if shift == 63 && chunk > 1 {
                return Err(LdpError::Malformed("varint overflows u64".into()));
            }
            v |= chunk << shift;
            if b & 0x80 == 0 {
                if b == 0 && shift != 0 {
                    return Err(LdpError::Malformed("non-canonical varint".into()));
                }
                return Ok(v);
            }
        }
        Err(LdpError::Malformed("varint longer than 10 bytes".into()))
    }

    /// Requires that the payload has been fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(LdpError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------

/// One decoded frame header: the report tag plus a borrowed payload.
/// (The version byte has already been validated by the time a `Frame`
/// exists.)
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Report-type tag (see [`tag`]).
    pub tag: u8,
    /// The frame's payload bytes.
    pub payload: &'a [u8],
}

/// Splits the next frame off `buf` starting at `*pos`, validating the
/// version byte and the declared payload length, and advances `*pos`
/// past the frame.
///
/// # Errors
/// [`LdpError::VersionMismatch`] for a foreign version byte,
/// [`LdpError::Truncated`] / [`LdpError::Malformed`] for a frame that
/// ends early or declares an impossible length.
pub fn next_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Frame<'a>> {
    let mut r = WireReader::new(&buf[*pos..]);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(LdpError::VersionMismatch {
            got: version,
            expected: WIRE_VERSION,
        });
    }
    let tag = r.u8()?;
    let len = r.uvarint()?;
    let len = usize::try_from(len)
        .map_err(|_| LdpError::Malformed(format!("payload length {len} overflows usize")))?;
    let payload = r.bytes(len)?;
    *pos = buf.len() - r.remaining();
    Ok(Frame { tag, payload })
}

/// A report type that round-trips through the binary wire format.
///
/// The contract (property-tested in `crates/*/tests/wire_roundtrip.rs`):
/// `decode_report(encode_report(r)) == r` for every representable
/// report, and decoding never panics on arbitrary bytes.
pub trait WireReport: Sized {
    /// The frame tag identifying this report type (see [`tag`]).
    const TAG: u8;

    /// Appends the payload bytes (frame header excluded) to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Parses the payload from `r`. Implementations must consume exactly
    /// the payload ([`decode_report`] runs the trailing-bytes check).
    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self>;

    /// Parses the payload from `r` **into** an existing report, reusing
    /// its storage where the type allows — the decode loop of a concat
    /// stream ([`ErasedMechanism::accumulate_concat`]) calls this once
    /// per frame with one scratch report, so fixed-width report types
    /// ([`BitVec`], `Vec<f64>`) allocate nothing per frame.
    ///
    /// On success `self` equals what [`decode_payload`](Self::decode_payload)
    /// would have returned; on error its contents are unspecified (the
    /// caller aborts the stream).
    ///
    /// # Errors
    /// As [`decode_payload`](Self::decode_payload).
    fn decode_payload_into(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        *self = Self::decode_payload(r)?;
        Ok(())
    }
}

/// Appends one complete frame (`version | tag | len | payload`) for
/// `report` to `out`.
pub fn encode_report<R: WireReport>(report: &R, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    out.push(R::TAG);
    // Reserve a 1-byte varint for the length, encode the payload in
    // place, and widen the varint only in the rare >127-byte case — no
    // scratch allocation on the (common) small-report path.
    let len_pos = out.len();
    out.push(0);
    let payload_start = out.len();
    report.encode_payload(out);
    let len = out.len() - payload_start;
    if len < 0x80 {
        out[len_pos] = len as u8;
    } else {
        let mut var = Vec::with_capacity(10);
        put_uvarint(&mut var, len as u64);
        out.splice(len_pos..payload_start, var);
    }
}

/// Encodes one report into a fresh frame buffer.
#[must_use]
pub fn encode_report_vec<R: WireReport>(report: &R) -> Vec<u8> {
    let mut out = Vec::new();
    encode_report(report, &mut out);
    out
}

/// Decodes exactly one frame. The slice must contain the frame and
/// nothing else; the tag must match `R::TAG`.
///
/// # Errors
/// [`LdpError::VersionMismatch`], [`LdpError::ReportTypeMismatch`],
/// [`LdpError::Truncated`], or [`LdpError::Malformed`] — never a panic.
pub fn decode_report<R: WireReport>(frame: &[u8]) -> Result<R> {
    let mut pos = 0usize;
    let f = next_frame(frame, &mut pos)?;
    if pos != frame.len() {
        return Err(LdpError::Malformed(format!(
            "{} trailing bytes after frame",
            frame.len() - pos
        )));
    }
    decode_report_payload(f)
}

/// Decodes the payload of an already-split [`Frame`], checking the tag.
pub fn decode_report_payload<R: WireReport>(frame: Frame<'_>) -> Result<R> {
    if frame.tag != R::TAG {
        return Err(LdpError::ReportTypeMismatch {
            got: frame.tag,
            expected: R::TAG,
        });
    }
    let mut r = WireReader::new(frame.payload);
    let report = R::decode_payload(&mut r)?;
    r.finish()?;
    Ok(report)
}

// ---------------------------------------------------------------------
// WireReport implementations for the core report types.
// ---------------------------------------------------------------------

impl WireReport for u64 {
    const TAG: u8 = tag::ITEM;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, *self);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        r.uvarint()
    }
}

impl WireReport for bool {
    const TAG: u8 = tag::BIT;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(LdpError::Malformed(format!(
                "bit byte must be 0/1, got {b}"
            ))),
        }
    }
}

/// Packs a bit sequence little-endian, 8 per byte (bit `i` in byte
/// `i/8`, position `i%8`; unused bits of the final byte are zero) — the
/// shared payload shape for bit-list reports (CMS sign vectors,
/// dBitFlip bit lists). [`BitVec`] payloads use the word-level
/// [`put_bitvec`] fast path instead.
pub fn put_packed_bits<I: IntoIterator<Item = bool>>(out: &mut Vec<u8>, bits: I) {
    let mut byte = 0u8;
    let mut i = 0usize;
    for b in bits {
        byte |= u8::from(b) << (i % 8);
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
        i += 1;
    }
    if !i.is_multiple_of(8) {
        out.push(byte);
    }
}

/// Reads `n` bits written by [`put_packed_bits`], rejecting nonzero
/// padding; index the returned bytes with [`packed_bit`].
pub fn get_packed_bits<'a>(r: &mut WireReader<'a>, n: usize) -> Result<&'a [u8]> {
    let nbytes = n.div_ceil(8);
    let bytes = r.bytes(nbytes)?;
    if !n.is_multiple_of(8) && bytes[nbytes - 1] >> (n % 8) != 0 {
        return Err(LdpError::Malformed("nonzero padding bits".into()));
    }
    Ok(bytes)
}

/// Reads bit `i` of a [`put_packed_bits`] payload.
#[inline]
#[must_use]
pub fn packed_bit(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] >> (i % 8) & 1 == 1
}

/// Appends a [`BitVec`] as `uvarint bit-length` + packed little-endian
/// bytes (bit `i` lives in byte `i/8`, position `i%8`; word-at-a-time,
/// so a `d = 4096` unary report serializes as 64 word copies). Unused
/// bits of the final byte are zero; decoders reject nonzero padding.
pub fn put_bitvec(out: &mut Vec<u8>, bits: &BitVec) {
    put_uvarint(out, bits.len() as u64);
    bits.write_le_bytes(out);
}

/// Reads a [`BitVec`] written by [`put_bitvec`].
pub fn get_bitvec(r: &mut WireReader<'_>) -> Result<BitVec> {
    let len = r.uvarint()?;
    let len = usize::try_from(len)
        .map_err(|_| LdpError::Malformed(format!("bit length {len} overflows usize")))?;
    let bytes = r.bytes(len.div_ceil(8))?;
    BitVec::from_le_bytes(len, bytes)
        .ok_or_else(|| LdpError::Malformed("nonzero padding bits".into()))
}

/// Reads a [`BitVec`] written by [`put_bitvec`] into `bits`, reusing its
/// word storage when the wire bit-length matches (the steady state of a
/// single-mechanism frame stream) and reallocating only on a length
/// change.
pub fn get_bitvec_into(r: &mut WireReader<'_>, bits: &mut BitVec) -> Result<()> {
    let len = r.uvarint()?;
    let len = usize::try_from(len)
        .map_err(|_| LdpError::Malformed(format!("bit length {len} overflows usize")))?;
    let bytes = r.bytes(len.div_ceil(8))?;
    if len == bits.len() {
        if bits.copy_from_le_bytes(bytes) {
            return Ok(());
        }
        return Err(LdpError::Malformed("nonzero padding bits".into()));
    }
    *bits = BitVec::from_le_bytes(len, bytes)
        .ok_or_else(|| LdpError::Malformed("nonzero padding bits".into()))?;
    Ok(())
}

impl WireReport for BitVec {
    const TAG: u8 = tag::BITS;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_bitvec(out, self);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        get_bitvec(r)
    }

    fn decode_payload_into(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        get_bitvec_into(r, self)
    }
}

impl WireReport for Vec<f64> {
    const TAG: u8 = tag::REAL_VEC;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for &x in self {
            put_f64_le(out, x);
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let len = r.uvarint()? as usize;
        // Bound the allocation by the bytes actually present.
        if r.remaining() / 8 < len {
            return Err(LdpError::Truncated {
                needed: len * 8,
                available: r.remaining(),
            });
        }
        (0..len).map(|_| r.f64_le()).collect()
    }

    fn decode_payload_into(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        let len = r.uvarint()? as usize;
        if r.remaining() / 8 < len {
            return Err(LdpError::Truncated {
                needed: len * 8,
                available: r.remaining(),
            });
        }
        self.clear();
        self.reserve(len);
        for _ in 0..len {
            self.push(r.f64_le()?);
        }
        Ok(())
    }
}

impl WireReport for Vec<u64> {
    const TAG: u8 = tag::ITEM_SET;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for &x in self {
            put_uvarint(out, x);
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let len = r.uvarint()? as usize;
        // Each element is at least one byte, so this bounds the alloc.
        if r.remaining() < len {
            return Err(LdpError::Truncated {
                needed: len,
                available: r.remaining(),
            });
        }
        (0..len).map(|_| r.uvarint()).collect()
    }

    fn decode_payload_into(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        let len = r.uvarint()? as usize;
        if r.remaining() < len {
            return Err(LdpError::Truncated {
                needed: len,
                available: r.remaining(),
            });
        }
        self.clear();
        self.reserve(len);
        for _ in 0..len {
            self.push(r.uvarint()?);
        }
        Ok(())
    }
}

impl WireReport for LhReport {
    const TAG: u8 = tag::LOCAL_HASH;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        // The seed is uniform randomness: varints would only pad it.
        put_u64_le(out, self.seed);
        put_uvarint(out, self.bucket);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Self {
            seed: r.u64_le()?,
            bucket: r.uvarint()?,
        })
    }
}

impl WireReport for CohortLhReport {
    const TAG: u8 = tag::COHORT_HASH;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.cohort as u64);
        put_uvarint(out, self.bucket as u64);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let cohort = r.uvarint()?;
        let bucket = r.uvarint()?;
        let cohort = u32::try_from(cohort)
            .map_err(|_| LdpError::Malformed(format!("cohort {cohort} overflows u32")))?;
        let bucket = u32::try_from(bucket)
            .map_err(|_| LdpError::Malformed(format!("bucket {bucket} overflows u32")))?;
        Ok(Self { cohort, bucket })
    }
}

/// Encodes a `±1` sign as one byte (`0` = −1, `1` = +1).
pub fn put_sign(out: &mut Vec<u8>, sign: i8) {
    out.push(u8::from(sign > 0));
}

/// Reads a `±1` sign byte written by [`put_sign`].
pub fn get_sign(r: &mut WireReader<'_>) -> Result<i8> {
    match r.u8()? {
        0 => Ok(-1),
        1 => Ok(1),
        b => Err(LdpError::Malformed(format!(
            "sign byte must be 0/1, got {b}"
        ))),
    }
}

impl WireReport for HrReport {
    const TAG: u8 = tag::HADAMARD;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.index);
        put_sign(out, self.sign);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Self {
            index: r.uvarint()?,
            sign: get_sign(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Input codec.
// ---------------------------------------------------------------------

/// A client input type that can cross the erased API as bytes: the
/// input-side counterpart of [`WireReport`]. Items travel as varints,
/// bounded reals as 8-byte little-endian `f64`.
pub trait WireInput: Sized {
    /// Appends the encoded input to `out`.
    fn encode_input(&self, out: &mut Vec<u8>);

    /// Parses one input from exactly `bytes`.
    fn decode_input(bytes: &[u8]) -> Result<Self>;

    /// Views an item batch as a batch of this input type, when the two
    /// coincide (`u64` only) — what lets the erased batch path hand a
    /// `&[u64]` population straight to an item mechanism without
    /// per-element conversion.
    fn items_as_inputs(items: &[u64]) -> Option<&[Self]>;

    /// Views a real-valued batch as a batch of this input type (`f64`
    /// only).
    fn reals_as_inputs(reals: &[f64]) -> Option<&[Self]>;
}

impl WireInput for u64 {
    fn encode_input(&self, out: &mut Vec<u8>) {
        put_uvarint(out, *self);
    }

    fn decode_input(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = r.uvarint()?;
        r.finish()?;
        Ok(v)
    }

    fn items_as_inputs(items: &[u64]) -> Option<&[Self]> {
        Some(items)
    }

    fn reals_as_inputs(_reals: &[f64]) -> Option<&[Self]> {
        None
    }
}

impl WireInput for f64 {
    fn encode_input(&self, out: &mut Vec<u8>) {
        put_f64_le(out, *self);
    }

    fn decode_input(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = r.f64_le()?;
        r.finish()?;
        Ok(v)
    }

    fn items_as_inputs(_items: &[u64]) -> Option<&[Self]> {
        None
    }

    fn reals_as_inputs(reals: &[f64]) -> Option<&[Self]> {
        Some(reals)
    }
}

// ---------------------------------------------------------------------
// The erased mechanism API.
// ---------------------------------------------------------------------

/// The report type of a [`BatchMechanism`] (what its aggregator
/// consumes), as a shorthand for wire bounds.
pub type ReportOf<M> = <<M as BatchMechanism>::Aggregator as FoAggregator>::Report;

/// A [`BatchMechanism`] that additionally exposes the scalar client path
/// the erased bridge needs: validate one input and privatize it.
///
/// The determinism contract extends to this method: for one input, the
/// scalar randomize must consume exactly the RNG stream the fused
/// [`BatchMechanism::accumulate_batch`] consumes for that input — which
/// is what makes the byte path bit-identical to the in-process path.
pub trait WireMechanism: BatchMechanism {
    /// Validates `input` and privatizes it through the scalar path.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] (or a kindred variant) when the
    /// input is outside the mechanism's domain — never a panic.
    fn try_randomize_input(
        &self,
        input: &Self::Input,
        rng: &mut dyn RngCore,
    ) -> Result<ReportOf<Self>>;

    /// Validates a whole input batch, then privatizes it with a
    /// **monomorphized** RNG — the client-side mirror of
    /// [`BatchMechanism::accumulate_batch`], consuming the identical RNG
    /// stream, so reports produced here fold into the same aggregator
    /// state the fused path would have produced. The default loops the
    /// scalar path; oracle bridges override with the oracle's own batch
    /// sampler.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] naming the first invalid input.
    /// Reports for inputs preceding the failing one may already have
    /// reached `sink`; callers discard the partial output on error.
    fn try_randomize_batch<R: RngCore>(
        &self,
        inputs: &[Self::Input],
        rng: &mut R,
        mut sink: impl FnMut(&ReportOf<Self>),
    ) -> Result<()> {
        for v in inputs {
            sink(&self.try_randomize_input(v, rng)?);
        }
        Ok(())
    }

    /// Validates a whole input batch and appends one wire frame per
    /// report to `out` — the client's serializing batch path. The
    /// default materializes each report through
    /// [`try_randomize_batch`](Self::try_randomize_batch) and encodes
    /// it; mechanisms whose report is a deterministic function of the
    /// sampled positions ([`FusedUnaryMechanism`]) override this to
    /// randomize **directly into the frame buffer**, skipping the
    /// report materialization entirely. Overrides must produce the
    /// byte-identical frame stream for the same RNG stream.
    ///
    /// # Errors
    /// As [`try_randomize_batch`](Self::try_randomize_batch); `out` may
    /// carry frames for inputs preceding the failing one.
    fn try_randomize_frames<R: RngCore>(
        &self,
        inputs: &[Self::Input],
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> Result<()>
    where
        ReportOf<Self>: WireReport,
    {
        self.try_randomize_batch(inputs, rng, |r| encode_report(r, out))
    }
}

/// Owns a [`FrequencyOracle`] and exposes it as a
/// [`BatchMechanism`] + [`WireMechanism`] — the by-value counterpart of
/// the `&O` blanket impl in [`crate::mech`], so an oracle can live
/// inside a `Box<dyn ErasedMechanism>`.
#[derive(Debug, Clone)]
pub struct OracleMechanism<O>(pub O);

impl<O: FrequencyOracle> BatchMechanism for OracleMechanism<O> {
    type Input = u64;
    type Aggregator = O::Aggregator;

    fn new_aggregator(&self) -> O::Aggregator {
        self.0.new_aggregator()
    }

    fn accumulate_batch<R: RngCore>(&self, inputs: &[u64], rng: &mut R, agg: &mut O::Aggregator) {
        self.0.randomize_accumulate_batch(inputs, rng, agg);
    }
}

impl<O: FrequencyOracle> WireMechanism for OracleMechanism<O> {
    fn try_randomize_input(&self, input: &u64, rng: &mut dyn RngCore) -> Result<O::Report> {
        if *input >= self.0.domain_size() {
            return Err(LdpError::InvalidParameter(format!(
                "input {input} outside domain of size {}",
                self.0.domain_size()
            )));
        }
        Ok(self.0.randomize(*input, rng))
    }

    /// Validates the whole batch up front (cheap range checks, no RNG
    /// consumed on error), then rides the oracle's monomorphized
    /// [`FrequencyOracle::randomize_batch_ref`] — the same sampler, and
    /// therefore the same RNG stream, as the fused engine path, but with
    /// the oracle free to reuse one report buffer across the batch
    /// (serializing sinks only borrow each report).
    fn try_randomize_batch<R: RngCore>(
        &self,
        inputs: &[u64],
        rng: &mut R,
        sink: impl FnMut(&O::Report),
    ) -> Result<()> {
        let d = self.0.domain_size();
        if let Some(&bad) = inputs.iter().find(|&&v| v >= d) {
            return Err(LdpError::InvalidParameter(format!(
                "input {bad} outside domain of size {d}"
            )));
        }
        self.0.randomize_batch_ref(inputs, rng, sink);
        Ok(())
    }
}

/// [`OracleMechanism`] for the unary report family, with the fused
/// sampler→frame writer: [`WireMechanism::try_randomize_frames`] packs
/// each geometric-skip-sampled set bit **directly into the outgoing
/// frame buffer** — no [`BitVec`] report is materialized and no
/// per-report allocation happens on the serializing client path, the
/// wire-side mirror of [`FrequencyOracle::randomize_accumulate_batch`].
///
/// All `d`-bit reports of one oracle share a frame length, so the frame
/// header (version, tag, payload-length and bit-length varints) is
/// precomputed once per batch and the payload bytes are zero-filled then
/// OR-set at the sampled positions — byte-identical to
/// [`encode_report`] over [`FrequencyOracle::randomize`], because
/// [`SetBitSampler::sample_ones`] visits exactly the positions the
/// materialized report would have set while consuming the same RNG
/// stream.
#[derive(Debug, Clone)]
pub struct FusedUnaryMechanism<O>(pub O);

impl<O: SetBitSampler> BatchMechanism for FusedUnaryMechanism<O> {
    type Input = u64;
    type Aggregator = O::Aggregator;

    fn new_aggregator(&self) -> O::Aggregator {
        self.0.new_aggregator()
    }

    fn accumulate_batch<R: RngCore>(&self, inputs: &[u64], rng: &mut R, agg: &mut O::Aggregator) {
        self.0.randomize_accumulate_batch(inputs, rng, agg);
    }
}

impl<O: SetBitSampler> FusedUnaryMechanism<O> {
    /// Returns the first out-of-domain input as an error, without
    /// consuming any RNG — both batch paths validate up front.
    fn check_domain(&self, inputs: &[u64]) -> Result<()> {
        let d = self.0.domain_size();
        if let Some(&bad) = inputs.iter().find(|&&v| v >= d) {
            return Err(LdpError::InvalidParameter(format!(
                "input {bad} outside domain of size {d}"
            )));
        }
        Ok(())
    }
}

impl<O: SetBitSampler> WireMechanism for FusedUnaryMechanism<O> {
    fn try_randomize_input(&self, input: &u64, rng: &mut dyn RngCore) -> Result<BitVec> {
        if *input >= self.0.domain_size() {
            return Err(LdpError::InvalidParameter(format!(
                "input {input} outside domain of size {}",
                self.0.domain_size()
            )));
        }
        Ok(self.0.randomize(*input, rng))
    }

    fn try_randomize_batch<R: RngCore>(
        &self,
        inputs: &[u64],
        rng: &mut R,
        sink: impl FnMut(&BitVec),
    ) -> Result<()> {
        self.check_domain(inputs)?;
        self.0.randomize_batch_ref(inputs, rng, sink);
        Ok(())
    }

    fn try_randomize_frames<R: RngCore>(
        &self,
        inputs: &[u64],
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.check_domain(inputs)?;
        let d = self.0.domain_size() as usize;
        let nbytes = d.div_ceil(8);
        // Every frame of the batch shares this prefix: the payload is
        // `uvarint(d)` + `d` packed bits, so its length is fixed — which
        // also fixes the frame length, so the whole batch is sized once.
        let (dbuf, dlen) = uvarint_array(d as u64);
        let (lbuf, llen) = uvarint_array((dlen + nbytes) as u64);
        let header = 2 + llen + dlen;
        let frame_len = header + nbytes;
        // A template block — constant headers, zeroed payloads — copied
        // ahead of sampling. Copying right before sampling leaves the
        // payload's cache lines write-hot, so the sampler's bit ORs land
        // in L1; OR-ing into a long-since-zeroed region (the previous
        // resize-then-fill scheme) took a read-for-ownership miss per
        // set bit, and a separate word scratch paid an extra fill + copy
        // of every payload byte. The block holds 16 frames so one
        // `memcpy` dispatch (runtime-length copies don't inline) is
        // amortized over 16 reports while the block still fits L1 at
        // practical domain sizes.
        const TEMPLATE_FRAMES: usize = 16;
        let mut template = Vec::with_capacity(frame_len * TEMPLATE_FRAMES);
        for _ in 0..TEMPLATE_FRAMES {
            template.push(WIRE_VERSION);
            template.push(tag::BITS);
            template.extend_from_slice(&lbuf[..llen]);
            template.extend_from_slice(&dbuf[..dlen]);
            template.resize(template.len() + nbytes, 0);
        }
        out.reserve(inputs.len() * frame_len);
        for group in inputs.chunks(TEMPLATE_FRAMES) {
            let start = out.len();
            out.extend_from_slice(&template[..group.len() * frame_len]);
            let block = &mut out[start..];
            for (k, &v) in group.iter().enumerate() {
                let payload = &mut block[k * frame_len + header..(k + 1) * frame_len];
                self.0
                    .sample_ones(v, rng, |i| payload[i >> 3] |= 1u8 << (i & 7));
            }
        }
        Ok(())
    }
}

/// The object-safe server-side state behind a collector: a mechanism's
/// aggregator with its concrete types erased. Obtained from
/// [`ErasedMechanism::new_erased_aggregator`]; frames are folded in
/// through [`ErasedMechanism::accumulate_from_bytes`] (the mechanism
/// carries the codec and validation, the aggregator carries the state).
pub trait ErasedAggregator: Send {
    /// Number of reports accumulated so far.
    fn reports(&self) -> usize;

    /// Unbiased estimates over the mechanism's output domain (counts for
    /// frequency oracles, `[mean]` for mean mechanisms).
    #[must_use]
    fn estimate(&self) -> Vec<f64>;

    /// Estimates for a subset of items.
    ///
    /// # Panics
    /// Like [`FoAggregator::estimate_items`], panics if an item is
    /// outside the mechanism's domain — callers validate first (the
    /// collector service checks against its descriptor).
    #[must_use]
    fn estimate_items(&self, items: &[u64]) -> Vec<f64>;

    /// Merges another erased aggregator into this one, as if its reports
    /// had been accumulated here.
    ///
    /// # Errors
    /// [`LdpError::Malformed`] if `other` is not the same concrete
    /// aggregator type. Same-type aggregators built from **equal**
    /// descriptors always merge; the collector service enforces
    /// descriptor equality before calling this.
    fn merge_erased(&mut self, other: Box<dyn ErasedAggregator>) -> Result<()>;

    /// Subtracts another erased aggregator's state from this one — the
    /// exact inverse of [`merge_erased`](Self::merge_erased), borrowed
    /// rather than consumed so the retired delta survives a refusal.
    /// See [`crate::fo::FoAggregator::try_subtract`] for the contract
    /// (bit-identity for count-based states, all-or-nothing on error).
    ///
    /// # Errors
    /// [`LdpError::Malformed`] if `other` is not the same concrete
    /// aggregator type; [`LdpError::NotSubtractive`] if the state has no
    /// exact merge inverse; [`LdpError::StateMismatch`] if `other` is
    /// incompatible or not a sub-aggregate.
    fn subtract_erased(&mut self, other: &dyn ErasedAggregator) -> Result<()>;

    /// Appends the aggregator's versioned state BLOB (see
    /// [`crate::snapshot`]) to `out`.
    fn snapshot(&self, out: &mut Vec<u8>);

    /// Restores state from a BLOB previously written by
    /// [`snapshot`](Self::snapshot) on an identically configured
    /// aggregator, replacing the current counters wholesale.
    ///
    /// # Errors
    /// Any [`LdpError`] for foreign versions or tags, truncation,
    /// corruption, or a snapshot taken under different configuration —
    /// never a panic. On error the aggregator is left unchanged.
    fn restore(&mut self, bytes: &[u8]) -> Result<()>;

    /// Borrows the concrete aggregator for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Mutably borrows the concrete aggregator for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Unwraps to the concrete aggregator for downcasting by value.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The object-safe face of a mechanism: everything a collector service
/// needs behind `dyn` — randomize-from-bytes on the client side,
/// accumulate-from-bytes on the server side, plus aggregator creation.
/// Built from a [`crate::protocol::ProtocolDescriptor`] through a
/// [`crate::protocol::Registry`].
pub trait ErasedMechanism: Send + Sync {
    /// The descriptor this instance was built from.
    fn descriptor(&self) -> &ProtocolDescriptor;

    /// The frame tag of this mechanism's report type.
    fn report_tag(&self) -> u8;

    /// Client side: decodes one wire-encoded input (a varint item or an
    /// 8-byte little-endian real — see [`WireInput`]), privatizes it,
    /// and appends the report's wire frame to `out`.
    ///
    /// # Errors
    /// Any [`LdpError`] for undecodable or out-of-domain inputs — never
    /// a panic.
    fn randomize_from_bytes(
        &self,
        input: &[u8],
        rng: &mut dyn RngCore,
        out: &mut Vec<u8>,
    ) -> Result<()>;

    /// Client batch side: privatizes a whole item population into wire
    /// frames appended to `out`, drawing from a **monomorphized**
    /// `StdRng::seed_from_u64(seed)` created inside the call — dynamic
    /// dispatch is paid once per batch instead of once per RNG draw,
    /// which is what keeps the byte path's cost within a constant factor
    /// of the fused in-process engine. For a given `seed` the frames are
    /// exactly the reports the fused engine's shard with that seed would
    /// have folded in (the scalar/batch stream contract).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for out-of-domain values or a
    /// mechanism that does not take item inputs; `out` may carry frames
    /// for inputs preceding the failing one — discard it on error.
    fn randomize_items_to_frames(&self, values: &[u64], seed: u64, out: &mut Vec<u8>)
        -> Result<()>;

    /// Client batch side for real-valued mechanisms (1BitMean); the
    /// monomorphized counterpart of feeding each value through
    /// [`Self::randomize_from_bytes`]. Same seed semantics as
    /// [`Self::randomize_items_to_frames`].
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for out-of-range values or a
    /// mechanism that takes item inputs.
    fn randomize_reals_to_frames(&self, values: &[f64], seed: u64, out: &mut Vec<u8>)
        -> Result<()>;

    /// Creates an empty erased aggregator for this mechanism.
    #[must_use]
    fn new_erased_aggregator(&self) -> Box<dyn ErasedAggregator>;

    /// Server side: decodes one report frame, validates it against this
    /// mechanism's configuration, and folds it into `agg`.
    ///
    /// # Errors
    /// Any [`LdpError`] for malformed/truncated frames, foreign
    /// versions or tags, reports that don't fit the mechanism's shape,
    /// or an `agg` that belongs to a different mechanism — never a
    /// panic.
    fn accumulate_from_bytes(&self, agg: &mut dyn ErasedAggregator, frame: &[u8]) -> Result<()> {
        let mut pos = 0usize;
        let f = next_frame(frame, &mut pos)?;
        if pos != frame.len() {
            return Err(LdpError::Malformed(format!(
                "{} trailing bytes after frame",
                frame.len() - pos
            )));
        }
        self.accumulate_frame(agg, f)
    }

    /// Server side for batched transports: folds one already-split
    /// [`Frame`] into `agg`, so a stream iterator (`next_frame`) parses
    /// each header exactly once.
    ///
    /// # Errors
    /// As [`Self::accumulate_from_bytes`], minus the header errors
    /// `next_frame` already caught.
    fn accumulate_frame(&self, agg: &mut dyn ErasedAggregator, frame: Frame<'_>) -> Result<()>;

    /// Server fast path: folds a whole concatenated frame stream into
    /// `agg`, returning how many frames were ingested alongside the
    /// outcome. On error the returned count names the frames **already
    /// folded in** (the stream stops at the first bad frame; `agg`
    /// keeps them), so callers can account for partial batches.
    ///
    /// The default loops [`Self::accumulate_frame`]; the bridge
    /// overrides it to pay the aggregator downcast **once per stream**
    /// instead of once per frame and to decode every frame into one
    /// scratch report ([`WireReport::decode_payload_into`]) — zero
    /// per-frame allocation for fixed-width report types.
    ///
    /// # Errors
    /// As [`Self::accumulate_from_bytes`], carried next to the count of
    /// frames that preceded the failure.
    fn accumulate_concat(
        &self,
        agg: &mut dyn ErasedAggregator,
        stream: &[u8],
    ) -> (usize, Result<()>) {
        let mut pos = 0usize;
        let mut n = 0usize;
        while pos < stream.len() {
            let frame = match next_frame(stream, &mut pos) {
                Ok(f) => f,
                Err(e) => return (n, Err(e)),
            };
            if let Err(e) = self.accumulate_frame(agg, frame) {
                return (n, Err(e));
            }
            n += 1;
        }
        (n, Ok(()))
    }
}

impl std::fmt::Debug for dyn ErasedMechanism + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedMechanism")
            .field("kind", &self.descriptor().kind())
            .field("report_tag", &self.report_tag())
            .finish()
    }
}

impl std::fmt::Debug for dyn ErasedAggregator + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedAggregator")
            .field("reports", &self.reports())
            .finish()
    }
}

/// The blanket bridge from the generic engine to the erased API: wraps
/// any [`WireMechanism`] whose input and report types have wire codecs,
/// together with the descriptor it was built from.
///
/// Dynamic dispatch through this bridge reuses the mechanism's own
/// aggregator, merge, and estimate code — the same paths the fused
/// generic engine (`accumulate_mech_sharded`) drives — so the byte path
/// and the generic path produce bit-identical state for the same RNG
/// streams.
pub struct ErasedBridge<M: WireMechanism> {
    mech: M,
    descriptor: ProtocolDescriptor,
}

impl<M: WireMechanism> ErasedBridge<M> {
    /// Wraps `mech` with the descriptor it was instantiated from.
    pub fn new(mech: M, descriptor: ProtocolDescriptor) -> Self {
        Self { mech, descriptor }
    }

    /// The wrapped mechanism.
    pub fn mechanism(&self) -> &M {
        &self.mech
    }
}

/// The concrete aggregator behind `Box<dyn ErasedAggregator>` for a
/// bridged mechanism `M` (private: reached only through downcasts inside
/// the bridge).
struct BridgedAggregator<M: BatchMechanism> {
    agg: M::Aggregator,
}

impl<M> ErasedAggregator for BridgedAggregator<M>
where
    M: BatchMechanism + 'static,
    M::Aggregator: Send + 'static,
{
    fn reports(&self) -> usize {
        self.agg.reports()
    }

    fn estimate(&self) -> Vec<f64> {
        self.agg.estimate()
    }

    fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        self.agg.estimate_items(items)
    }

    fn merge_erased(&mut self, other: Box<dyn ErasedAggregator>) -> Result<()> {
        let other = other
            .into_any()
            .downcast::<Self>()
            .map_err(|_| LdpError::Malformed("merge: erased aggregator type mismatch".into()))?;
        self.agg.merge(other.agg);
        Ok(())
    }

    fn subtract_erased(&mut self, other: &dyn ErasedAggregator) -> Result<()> {
        let other = other.as_any().downcast_ref::<Self>().ok_or_else(|| {
            LdpError::Malformed("subtract: erased aggregator type mismatch".into())
        })?;
        self.agg.try_subtract(&other.agg)
    }

    fn snapshot(&self, out: &mut Vec<u8>) {
        crate::snapshot::snapshot_to(&self.agg, out);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        crate::snapshot::restore_from(&mut self.agg, bytes)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl<M> ErasedMechanism for ErasedBridge<M>
where
    M: WireMechanism + Send + Sync + 'static,
    M::Input: WireInput,
    M::Aggregator: Send + 'static,
    ReportOf<M>: WireReport,
{
    fn descriptor(&self) -> &ProtocolDescriptor {
        &self.descriptor
    }

    fn report_tag(&self) -> u8 {
        <ReportOf<M> as WireReport>::TAG
    }

    fn randomize_from_bytes(
        &self,
        input: &[u8],
        rng: &mut dyn RngCore,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let input = M::Input::decode_input(input)?;
        let report = self.mech.try_randomize_input(&input, rng)?;
        encode_report(&report, out);
        Ok(())
    }

    fn randomize_items_to_frames(
        &self,
        values: &[u64],
        seed: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let inputs = M::Input::items_as_inputs(values).ok_or_else(|| {
            LdpError::InvalidParameter(format!(
                "{} does not take item inputs",
                self.descriptor.kind().name()
            ))
        })?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.mech.try_randomize_frames(inputs, &mut rng, out)
    }

    fn randomize_reals_to_frames(
        &self,
        values: &[f64],
        seed: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let inputs = M::Input::reals_as_inputs(values).ok_or_else(|| {
            LdpError::InvalidParameter(format!(
                "{} does not take real-valued inputs",
                self.descriptor.kind().name()
            ))
        })?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.mech.try_randomize_frames(inputs, &mut rng, out)
    }

    fn new_erased_aggregator(&self) -> Box<dyn ErasedAggregator> {
        Box::new(BridgedAggregator::<M> {
            agg: self.mech.new_aggregator(),
        })
    }

    fn accumulate_frame(&self, agg: &mut dyn ErasedAggregator, frame: Frame<'_>) -> Result<()> {
        let report = decode_report_payload::<ReportOf<M>>(frame)?;
        let slot = agg
            .as_any_mut()
            .downcast_mut::<BridgedAggregator<M>>()
            .ok_or_else(|| {
                LdpError::Malformed("accumulate: erased aggregator type mismatch".into())
            })?;
        slot.agg.try_accumulate(&report)
    }

    /// One downcast per stream, one scratch report reused across every
    /// frame — the payload→counter fast path the per-frame
    /// [`accumulate_frame`](ErasedMechanism::accumulate_frame) loop
    /// cannot reach.
    fn accumulate_concat(
        &self,
        agg: &mut dyn ErasedAggregator,
        stream: &[u8],
    ) -> (usize, Result<()>) {
        let Some(slot) = agg.as_any_mut().downcast_mut::<BridgedAggregator<M>>() else {
            return (
                0,
                Err(LdpError::Malformed(
                    "accumulate: erased aggregator type mismatch".into(),
                )),
            );
        };
        let expected = <ReportOf<M> as WireReport>::TAG;
        let mut pos = 0usize;
        let mut n = 0usize;
        let mut scratch: Option<ReportOf<M>> = None;
        // Optimistic packed lane for bit-vector streams: buffer the raw
        // payload bytes of up to `PACKED_BATCH` frames and hand them to
        // the aggregator's counters in one batched call
        // ([`FoAggregator::try_accumulate_packed_bits_batch`]), skipping
        // even the scratch-report copy. Cleared at the first flush if
        // this aggregator has no packed path (the buffered frames then
        // drain through the scratch decode below).
        let mut packed = expected == tag::BITS;
        let mut pending: Vec<(&[u8], usize)> = Vec::new();
        let mut pending_full: Vec<&[u8]> = Vec::new();
        while pos < stream.len() {
            let frame = match next_frame(stream, &mut pos) {
                Ok(f) => f,
                Err(e) => {
                    return flush_and_fail(
                        slot,
                        &mut scratch,
                        &mut pending,
                        &mut pending_full,
                        n,
                        e,
                    )
                }
            };
            if frame.tag != expected {
                let e = LdpError::ReportTypeMismatch {
                    got: frame.tag,
                    expected,
                };
                return flush_and_fail(slot, &mut scratch, &mut pending, &mut pending_full, n, e);
            }
            if packed {
                let mut r = WireReader::new(frame.payload);
                let bits = match r.uvarint().and_then(|len| {
                    usize::try_from(len).map_err(|_| {
                        LdpError::Malformed(format!("bit length {len} overflows usize"))
                    })
                }) {
                    Ok(bits) => bits,
                    Err(e) => {
                        return flush_and_fail(
                            slot,
                            &mut scratch,
                            &mut pending,
                            &mut pending_full,
                            n,
                            e,
                        )
                    }
                };
                let bytes = match r.bytes(bits.div_ceil(8)).and_then(|b| {
                    r.finish()?;
                    Ok(b)
                }) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        return flush_and_fail(
                            slot,
                            &mut scratch,
                            &mut pending,
                            &mut pending_full,
                            n,
                            e,
                        )
                    }
                };
                pending.push((bytes, bits));
                pending_full.push(frame.payload);
                if pending.len() == crate::fo::PACKED_BATCH {
                    let (applied, res) = flush_packed_pending(
                        slot,
                        &mut scratch,
                        &mut pending,
                        &mut pending_full,
                        &mut packed,
                    );
                    n += applied;
                    if let Err(e) = res {
                        return (n, Err(e));
                    }
                }
                continue;
            }
            let mut r = WireReader::new(frame.payload);
            let decoded = match scratch.as_mut() {
                Some(s) => s.decode_payload_into(&mut r),
                None => match <ReportOf<M>>::decode_payload(&mut r) {
                    Ok(first) => {
                        scratch = Some(first);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = decoded.and_then(|()| r.finish()) {
                return (n, Err(e));
            }
            if let Err(e) = slot
                .agg
                .try_accumulate(scratch.as_ref().expect("decoded above"))
            {
                return (n, Err(e));
            }
            n += 1;
        }
        let (applied, res) = flush_packed_pending(
            slot,
            &mut scratch,
            &mut pending,
            &mut pending_full,
            &mut packed,
        );
        n += applied;
        if let Err(e) = res {
            return (n, Err(e));
        }
        (n, Ok(()))
    }
}

/// Drains the packed lane's buffered payloads into the aggregator — the
/// batched counter fold when the aggregator supports it, the scratch
/// decode otherwise (which also steers the rest of the stream off the
/// packed lane via `packed`). Returns how many buffered frames were
/// folded in and the first error hit, and always leaves both buffers
/// empty.
fn flush_packed_pending<M>(
    slot: &mut BridgedAggregator<M>,
    scratch: &mut Option<ReportOf<M>>,
    pending: &mut Vec<(&[u8], usize)>,
    pending_full: &mut Vec<&[u8]>,
    packed: &mut bool,
) -> (usize, Result<()>)
where
    M: WireMechanism + Send + Sync + 'static,
    M::Input: WireInput,
    M::Aggregator: Send + 'static,
    ReportOf<M>: WireReport,
{
    if pending.is_empty() {
        return (0, Ok(()));
    }
    let out = match slot.agg.try_accumulate_packed_bits_batch(pending) {
        Some(res) => res,
        None => {
            *packed = false;
            let mut applied = 0usize;
            let mut res = Ok(());
            for payload in pending_full.iter() {
                let mut r = WireReader::new(payload);
                let decoded = match scratch.as_mut() {
                    Some(s) => s.decode_payload_into(&mut r),
                    None => match <ReportOf<M>>::decode_payload(&mut r) {
                        Ok(first) => {
                            *scratch = Some(first);
                            Ok(())
                        }
                        Err(e) => Err(e),
                    },
                };
                if let Err(e) = decoded.and_then(|()| r.finish()) {
                    res = Err(e);
                    break;
                }
                if let Err(e) = slot
                    .agg
                    .try_accumulate(scratch.as_ref().expect("decoded above"))
                {
                    res = Err(e);
                    break;
                }
                applied += 1;
            }
            (applied, res)
        }
    };
    pending.clear();
    pending_full.clear();
    out
}

/// Error path of the packed lane: flush what is buffered (those frames
/// precede the failing one), then report the earlier of the flush error
/// and `err`.
fn flush_and_fail<M>(
    slot: &mut BridgedAggregator<M>,
    scratch: &mut Option<ReportOf<M>>,
    pending: &mut Vec<(&[u8], usize)>,
    pending_full: &mut Vec<&[u8]>,
    n: usize,
    err: LdpError,
) -> (usize, Result<()>)
where
    M: WireMechanism + Send + Sync + 'static,
    M::Input: WireInput,
    M::Aggregator: Send + 'static,
    ReportOf<M>: WireReport,
{
    let mut packed = true;
    let (applied, res) = flush_packed_pending(slot, scratch, pending, pending_full, &mut packed);
    let n = n + applied;
    match res {
        Err(flush_err) => (n, Err(flush_err)),
        Ok(()) => (n, Err(err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::DirectEncoding;
    use crate::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uvarint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.uvarint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn uvarint_rejects_non_canonical() {
        // 0x80 0x00 encodes 0 in two bytes — must be rejected.
        let mut r = WireReader::new(&[0x80, 0x00]);
        assert!(matches!(r.uvarint(), Err(LdpError::Malformed(_))));
        // Eleven continuation bytes overflow.
        let mut r = WireReader::new(&[0xff; 11]);
        assert!(r.uvarint().is_err());
    }

    #[test]
    fn frame_encoding_handles_long_payloads() {
        // > 127 payload bytes exercises the varint-widening path.
        let report: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let frame = encode_report_vec(&report);
        assert_eq!(frame[0], WIRE_VERSION);
        assert_eq!(frame[1], tag::REAL_VEC);
        let decoded: Vec<f64> = decode_report(&frame).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn wrong_version_and_tag_reject() {
        let mut frame = encode_report_vec(&7u64);
        frame[0] = 99;
        assert!(matches!(
            decode_report::<u64>(&frame),
            Err(LdpError::VersionMismatch { got: 99, .. })
        ));
        let frame = encode_report_vec(&7u64);
        assert!(matches!(
            decode_report::<bool>(&frame),
            Err(LdpError::ReportTypeMismatch { .. })
        ));
    }

    #[test]
    fn truncation_rejects_everywhere() {
        let frame = encode_report_vec(&LhReport {
            seed: 42,
            bucket: 3,
        });
        for cut in 0..frame.len() {
            assert!(
                decode_report::<LhReport>(&frame[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn uvarint_array_matches_put_uvarint() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut vec_enc = Vec::new();
            put_uvarint(&mut vec_enc, v);
            let (buf, n) = uvarint_array(v);
            assert_eq!(&buf[..n], &vec_enc[..], "v={v}");
        }
    }

    #[test]
    fn decode_payload_into_matches_owned_decode() {
        // BitVec: same-width reuse and width-change fallback.
        let mut bits = BitVec::zeros(37);
        bits.set(0, true);
        bits.set(36, true);
        let frame = encode_report_vec(&bits);
        let mut scratch = BitVec::zeros(37);
        let mut pos = 0usize;
        let f = next_frame(&frame, &mut pos).unwrap();
        let mut r = WireReader::new(f.payload);
        scratch.decode_payload_into(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(scratch, bits);
        let mut narrow = BitVec::zeros(5);
        let mut r = WireReader::new(f.payload);
        narrow.decode_payload_into(&mut r).unwrap();
        assert_eq!(narrow, bits);

        // Vec<f64> and Vec<u64> reuse their storage.
        let reals = vec![1.5f64, -0.25, 3.0];
        let frame = encode_report_vec(&reals);
        let mut scratch = vec![0.0f64; 8];
        let mut pos = 0usize;
        let f = next_frame(&frame, &mut pos).unwrap();
        let mut r = WireReader::new(f.payload);
        scratch.decode_payload_into(&mut r).unwrap();
        assert_eq!(scratch, reals);

        let items = vec![3u64, 999, 0];
        let frame = encode_report_vec(&items);
        let mut scratch = vec![7u64];
        let mut pos = 0usize;
        let f = next_frame(&frame, &mut pos).unwrap();
        let mut r = WireReader::new(f.payload);
        scratch.decode_payload_into(&mut r).unwrap();
        assert_eq!(scratch, items);
    }

    /// The fused sampler→frame writer emits the byte-identical stream
    /// the materialize-then-encode default produces, across payload
    /// lengths that exercise both 1-byte and 2-byte varints.
    #[test]
    fn fused_unary_frames_byte_identical() {
        use crate::fo::OptimizedUnaryEncoding;
        for d in [8u64, 37, 129, 1024, 1031] {
            let oue = OptimizedUnaryEncoding::new(d, Epsilon::new(0.7).unwrap()).unwrap();
            let values: Vec<u64> = (0..200).map(|i| i % d).collect();

            let fused = FusedUnaryMechanism(oue);
            let mut fused_out = Vec::new();
            let mut rng = StdRng::seed_from_u64(99);
            fused
                .try_randomize_frames(&values, &mut rng, &mut fused_out)
                .unwrap();

            let default = OracleMechanism(oue);
            let mut default_out = Vec::new();
            let mut rng = StdRng::seed_from_u64(99);
            default
                .try_randomize_frames(&values, &mut rng, &mut default_out)
                .unwrap();

            assert_eq!(fused_out, default_out, "d={d}");
        }
    }

    #[test]
    fn fused_unary_rejects_out_of_domain_without_output() {
        use crate::fo::OptimizedUnaryEncoding;
        let oue = OptimizedUnaryEncoding::new(16, Epsilon::new(1.0).unwrap()).unwrap();
        let fused = FusedUnaryMechanism(oue);
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(fused
            .try_randomize_frames(&[3, 16, 2], &mut rng, &mut out)
            .is_err());
        assert!(out.is_empty(), "validation precedes any output");
    }

    /// `accumulate_concat` folds the same state the per-frame loop
    /// folds, and reports the partial count on a mid-stream error.
    #[test]
    fn accumulate_concat_matches_frame_loop_and_counts_partials() {
        let oracle = DirectEncoding::new(16, Epsilon::new(1.0).unwrap()).unwrap();
        let desc = ProtocolDescriptor::builder(crate::protocol::MechanismKind::DirectEncoding)
            .domain_size(16)
            .epsilon(1.0)
            .build()
            .unwrap();
        let bridge = ErasedBridge::new(OracleMechanism(oracle), desc);

        let values: Vec<u64> = (0..50).map(|i| i % 16).collect();
        let mut stream = Vec::new();
        bridge
            .randomize_items_to_frames(&values, 7, &mut stream)
            .unwrap();

        let mut fast = bridge.new_erased_aggregator();
        let (n, res) = bridge.accumulate_concat(fast.as_mut(), &stream);
        res.unwrap();
        assert_eq!(n, 50);

        let mut slow = bridge.new_erased_aggregator();
        let mut pos = 0usize;
        while pos < stream.len() {
            let f = next_frame(&stream, &mut pos).unwrap();
            bridge.accumulate_frame(slow.as_mut(), f).unwrap();
        }
        assert_eq!(fast.estimate(), slow.estimate());
        assert_eq!(fast.reports(), slow.reports());

        // Truncate mid-frame: the count names the frames already folded.
        let cut = &stream[..stream.len() - 1];
        let mut partial = bridge.new_erased_aggregator();
        let (n, res) = bridge.accumulate_concat(partial.as_mut(), cut);
        assert!(res.is_err());
        assert_eq!(n, 49);
        assert_eq!(partial.reports(), 49);
    }

    #[test]
    fn bridge_round_trips_one_report() {
        let oracle = DirectEncoding::new(16, Epsilon::new(1.0).unwrap()).unwrap();
        let desc = ProtocolDescriptor::builder(crate::protocol::MechanismKind::DirectEncoding)
            .domain_size(16)
            .epsilon(1.0)
            .build()
            .unwrap();
        let bridge = ErasedBridge::new(OracleMechanism(oracle), desc);
        let mut agg = bridge.new_erased_aggregator();

        let mut rng = StdRng::seed_from_u64(3);
        let mut input = Vec::new();
        5u64.encode_input(&mut input);
        let mut frame = Vec::new();
        bridge
            .randomize_from_bytes(&input, &mut rng, &mut frame)
            .unwrap();
        bridge.accumulate_from_bytes(agg.as_mut(), &frame).unwrap();
        assert_eq!(agg.reports(), 1);

        // Out-of-domain input is an error, not a panic.
        let mut input = Vec::new();
        16u64.encode_input(&mut input);
        let mut out = Vec::new();
        assert!(bridge
            .randomize_from_bytes(&input, &mut rng, &mut out)
            .is_err());
    }
}
