//! Protocol descriptors and the runtime mechanism registry.
//!
//! A deployed LDP service does not monomorphize its mechanism at compile
//! time: the client population runs whatever versioned configuration the
//! operator shipped, and the collector instantiates the matching
//! server-side state at runtime (RAPPOR's client config + shuffler is
//! the canonical example). This module is that configuration layer:
//!
//! * [`MechanismKind`] — the closed set of mechanism families the
//!   workspace speaks, with stable one-byte codes for serialization.
//! * [`ProtocolDescriptor`] — one mechanism instance's full wire-level
//!   identity: kind, domain size, ε, cohort/sketch/bit parameters, hash
//!   seed, and a schema version. Built through
//!   [`ProtocolDescriptor::builder`], which **validates** instead of
//!   panicking — the descriptor path is the panic-free boundary of the
//!   workspace ([`LdpError`] replaces the `assert!`s of the typed
//!   constructors) — and serialized with
//!   [`ProtocolDescriptor::to_bytes`] / [`from_bytes`](ProtocolDescriptor::from_bytes).
//! * [`Registry`] — maps kinds to factories producing type-erased
//!   mechanisms ([`ErasedMechanism`]). [`Registry::core`] registers
//!   every `ldp-core` oracle; `ldp_apple::register_mechanisms` and
//!   `ldp_microsoft::register_mechanisms` add the industrial
//!   deployments, and `ldp_workloads::service::workspace_registry`
//!   assembles the whole workspace.
//!
//! ## Raw local hashing is steered away from
//!
//! [`MechanismKind::BinaryLocalHashing`] / [`MechanismKind::OptimizedLocalHashing`]
//! keep **every raw report** (`O(n)` memory, `O(n·d)` full-domain
//! estimates) — a foot-gun behind a service API sized for millions of
//! users. [`Registry::build`] therefore refuses them with a descriptive
//! [`LdpError::UnsupportedMechanism`] steering the caller to
//! [`MechanismKind::CohortLocalHashing`] (same privacy, same noise floor
//! up to a `1/C` collision term, `O(C·g)` memory). The escape hatch for
//! ablations and candidate-set-only workloads is explicit:
//! [`ProtocolDescriptorBuilder::allow_linear_memory`].

use crate::fo::{
    BinaryLocalHashing, CohortLocalHashing, DirectEncoding, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use crate::wire::{
    put_f64_le, put_u64_le, put_uvarint, ErasedBridge, ErasedMechanism, FusedUnaryMechanism,
    OracleMechanism, WireReader,
};
use crate::{Epsilon, LdpError, Result};
use std::collections::BTreeMap;

pub use crate::fo::hashing::{DEFAULT_COHORTS, DEFAULT_COHORT_SEED_BASE};

/// The descriptor schema version this build encodes and accepts.
pub const DESCRIPTOR_VERSION: u8 = 1;

/// The mechanism families the workspace can instantiate from a
/// descriptor. The `u8` code of each kind is part of the wire-stable
/// descriptor schema — append new kinds, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MechanismKind {
    /// Direct encoding / generalized randomized response (GRR).
    DirectEncoding,
    /// Symmetric unary encoding (SUE, basic RAPPOR's perturbation).
    SymmetricUnary,
    /// Optimized unary encoding (OUE).
    OptimizedUnary,
    /// Summation with histogram encoding (SHE).
    SummationHistogram,
    /// Thresholding with histogram encoding (THE).
    ThresholdHistogram,
    /// Binary local hashing (BLH) with fresh per-user seeds.
    BinaryLocalHashing,
    /// Optimized local hashing (OLH) with fresh per-user seeds.
    OptimizedLocalHashing,
    /// Cohort-mode optimized local hashing (OLH-C).
    CohortLocalHashing,
    /// Hadamard response (HR).
    HadamardResponse,
    /// Subset selection (SS).
    SubsetSelection,
    /// Apple's Count-Mean Sketch (CMS).
    AppleCms,
    /// Apple's Hadamard Count-Mean Sketch (HCMS).
    AppleHcms,
    /// Microsoft's dBitFlip histogram estimator.
    MicrosoftDBitFlip,
    /// Microsoft's 1BitMean mean estimator (real-valued inputs).
    MicrosoftOneBitMean,
}

impl MechanismKind {
    /// All kinds, in code order.
    pub const ALL: [MechanismKind; 14] = [
        MechanismKind::DirectEncoding,
        MechanismKind::SymmetricUnary,
        MechanismKind::OptimizedUnary,
        MechanismKind::SummationHistogram,
        MechanismKind::ThresholdHistogram,
        MechanismKind::BinaryLocalHashing,
        MechanismKind::OptimizedLocalHashing,
        MechanismKind::CohortLocalHashing,
        MechanismKind::HadamardResponse,
        MechanismKind::SubsetSelection,
        MechanismKind::AppleCms,
        MechanismKind::AppleHcms,
        MechanismKind::MicrosoftDBitFlip,
        MechanismKind::MicrosoftOneBitMean,
    ];

    /// The stable one-byte code used in serialized descriptors.
    pub fn code(self) -> u8 {
        match self {
            MechanismKind::DirectEncoding => 1,
            MechanismKind::SymmetricUnary => 2,
            MechanismKind::OptimizedUnary => 3,
            MechanismKind::SummationHistogram => 4,
            MechanismKind::ThresholdHistogram => 5,
            MechanismKind::BinaryLocalHashing => 6,
            MechanismKind::OptimizedLocalHashing => 7,
            MechanismKind::CohortLocalHashing => 8,
            MechanismKind::HadamardResponse => 9,
            MechanismKind::SubsetSelection => 10,
            MechanismKind::AppleCms => 11,
            MechanismKind::AppleHcms => 12,
            MechanismKind::MicrosoftDBitFlip => 13,
            MechanismKind::MicrosoftOneBitMean => 14,
        }
    }

    /// Decodes a descriptor kind code.
    ///
    /// # Errors
    /// [`LdpError::Malformed`] for an unknown code.
    pub fn from_code(code: u8) -> Result<Self> {
        Self::ALL
            .into_iter()
            .find(|k| k.code() == code)
            .ok_or_else(|| LdpError::Malformed(format!("unknown mechanism kind code {code}")))
    }

    /// The short name used in experiment tables and error messages.
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::DirectEncoding => "GRR",
            MechanismKind::SymmetricUnary => "SUE",
            MechanismKind::OptimizedUnary => "OUE",
            MechanismKind::SummationHistogram => "SHE",
            MechanismKind::ThresholdHistogram => "THE",
            MechanismKind::BinaryLocalHashing => "BLH",
            MechanismKind::OptimizedLocalHashing => "OLH",
            MechanismKind::CohortLocalHashing => "OLH-C",
            MechanismKind::HadamardResponse => "HR",
            MechanismKind::SubsetSelection => "SS",
            MechanismKind::AppleCms => "CMS",
            MechanismKind::AppleHcms => "HCMS",
            MechanismKind::MicrosoftDBitFlip => "dBitFlip",
            MechanismKind::MicrosoftOneBitMean => "1BitMean",
        }
    }
}

/// A runtime-configurable protocol instance: everything a client needs
/// to randomize compatibly and a collector needs to aggregate — the
/// versioned config a deployment ships to its fleet.
///
/// Build with [`ProtocolDescriptor::builder`]; every instance in
/// existence has passed validation, so the registry's factories can rely
/// on its invariants. Serialize with [`to_bytes`](Self::to_bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolDescriptor {
    kind: MechanismKind,
    domain_size: u64,
    epsilon: f64,
    cohorts: u32,
    hash_seed: u64,
    sketch_rows: u32,
    sketch_width: u32,
    bits_per_device: u32,
    max_value: f64,
    allow_linear_memory: bool,
}

impl ProtocolDescriptor {
    /// Starts a builder for `kind` with the workspace defaults
    /// (`cohorts = `[`DEFAULT_COHORTS`], `hash_seed = `
    /// [`DEFAULT_COHORT_SEED_BASE`], `max_value = 1.0`; domain size,
    /// sketch shape, and bits-per-device must be set where the kind
    /// needs them).
    #[must_use]
    pub fn builder(kind: MechanismKind) -> ProtocolDescriptorBuilder {
        ProtocolDescriptorBuilder {
            desc: ProtocolDescriptor {
                kind,
                domain_size: 0,
                epsilon: f64::NAN,
                cohorts: DEFAULT_COHORTS,
                hash_seed: DEFAULT_COHORT_SEED_BASE,
                sketch_rows: 0,
                sketch_width: 0,
                bits_per_device: 0,
                max_value: 1.0,
                allow_linear_memory: false,
            },
        }
    }

    /// Mechanism family.
    pub fn kind(&self) -> MechanismKind {
        self.kind
    }

    /// Domain size `d` (bucket count for dBitFlip; `0` for the
    /// domain-free 1BitMean).
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The validated [`Epsilon`] (infallible: validation already ran).
    pub fn epsilon_checked(&self) -> Epsilon {
        Epsilon::new(self.epsilon).expect("validated at build time")
    }

    /// Cohort count `C` (OLH-C).
    pub fn cohorts(&self) -> u32 {
        self.cohorts
    }

    /// Public hash seed: the cohort seed base for OLH-C, the sketch
    /// hash-family seed for CMS/HCMS.
    pub fn hash_seed(&self) -> u64 {
        self.hash_seed
    }

    /// Sketch rows `k` (CMS/HCMS).
    pub fn sketch_rows(&self) -> u32 {
        self.sketch_rows
    }

    /// Sketch width `m` (CMS/HCMS).
    pub fn sketch_width(&self) -> u32 {
        self.sketch_width
    }

    /// Bits per device `d` (dBitFlip).
    pub fn bits_per_device(&self) -> u32 {
        self.bits_per_device
    }

    /// Input bound `max` (1BitMean: inputs live in `[0, max]`).
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// Whether the linear-memory escape hatch for raw local hashing was
    /// taken (see [`ProtocolDescriptorBuilder::allow_linear_memory`]).
    pub fn linear_memory_allowed(&self) -> bool {
        self.allow_linear_memory
    }

    /// Serializes the descriptor:
    /// `[version u8] [kind u8] [flags u8] [d uvarint] [ε f64-LE]
    /// [cohorts uvarint] [hash_seed u64-LE] [rows uvarint]
    /// [width uvarint] [bits uvarint] [max f64-LE]`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.push(DESCRIPTOR_VERSION);
        out.push(self.kind.code());
        out.push(u8::from(self.allow_linear_memory));
        put_uvarint(&mut out, self.domain_size);
        put_f64_le(&mut out, self.epsilon);
        put_uvarint(&mut out, self.cohorts as u64);
        put_u64_le(&mut out, self.hash_seed);
        put_uvarint(&mut out, self.sketch_rows as u64);
        put_uvarint(&mut out, self.sketch_width as u64);
        put_uvarint(&mut out, self.bits_per_device as u64);
        put_f64_le(&mut out, self.max_value);
        out
    }

    /// A 64-bit FNV-1a hash of the serialized descriptor — stable across
    /// processes and builds that share the descriptor schema version.
    /// Checkpoint BLOBs embed it so a snapshot restored into a service
    /// built from a *different* descriptor is rejected up front.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deserializes and **re-validates** a descriptor written by
    /// [`to_bytes`](Self::to_bytes) — untrusted bytes cannot produce a
    /// descriptor that skips validation.
    ///
    /// # Errors
    /// [`LdpError::VersionMismatch`] for a foreign schema version, any
    /// decoding [`LdpError`] for malformed bytes, and every
    /// [`LdpError::InvalidDescriptor`] the builder can raise.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let version = r.u8()?;
        if version != DESCRIPTOR_VERSION {
            return Err(LdpError::VersionMismatch {
                got: version,
                expected: DESCRIPTOR_VERSION,
            });
        }
        let kind = MechanismKind::from_code(r.u8()?)?;
        let flags = r.u8()?;
        if flags > 1 {
            return Err(LdpError::Malformed(format!("unknown flag bits {flags:#x}")));
        }
        let domain_size = r.uvarint()?;
        let epsilon = r.f64_le()?;
        let cohorts = u32::try_from(r.uvarint()?)
            .map_err(|_| LdpError::Malformed("cohort count overflows u32".into()))?;
        let hash_seed = r.u64_le()?;
        let sketch_rows = u32::try_from(r.uvarint()?)
            .map_err(|_| LdpError::Malformed("sketch rows overflow u32".into()))?;
        let sketch_width = u32::try_from(r.uvarint()?)
            .map_err(|_| LdpError::Malformed("sketch width overflows u32".into()))?;
        let bits_per_device = u32::try_from(r.uvarint()?)
            .map_err(|_| LdpError::Malformed("bits per device overflow u32".into()))?;
        let max_value = r.f64_le()?;
        r.finish()?;

        let mut b = Self::builder(kind)
            .domain_size(domain_size)
            .epsilon(epsilon)
            .cohorts(cohorts)
            .hash_seed(hash_seed)
            .sketch(sketch_rows, sketch_width)
            .bits_per_device(bits_per_device)
            .max_value(max_value);
        if flags & 1 != 0 {
            b = b.allow_linear_memory();
        }
        b.build()
    }
}

/// Builder for [`ProtocolDescriptor`]; terminal
/// [`build`](Self::build) validates the parameter set for the chosen
/// mechanism kind.
#[derive(Debug, Clone)]
pub struct ProtocolDescriptorBuilder {
    desc: ProtocolDescriptor,
}

impl ProtocolDescriptorBuilder {
    /// Sets the domain size `d` (items are `0..d`; dBitFlip buckets).
    #[must_use]
    pub fn domain_size(mut self, d: u64) -> Self {
        self.desc.domain_size = d;
        self
    }

    /// Sets the privacy parameter ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.desc.epsilon = epsilon;
        self
    }

    /// Sets the cohort count `C` (OLH-C).
    #[must_use]
    pub fn cohorts(mut self, cohorts: u32) -> Self {
        self.desc.cohorts = cohorts;
        self
    }

    /// Sets the public hash seed (cohort seed base / sketch hash seed).
    #[must_use]
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.desc.hash_seed = seed;
        self
    }

    /// Sets the sketch shape `(k rows, m width)` (CMS/HCMS).
    #[must_use]
    pub fn sketch(mut self, rows: u32, width: u32) -> Self {
        self.desc.sketch_rows = rows;
        self.desc.sketch_width = width;
        self
    }

    /// Sets the per-device bit count `d` (dBitFlip).
    #[must_use]
    pub fn bits_per_device(mut self, bits: u32) -> Self {
        self.desc.bits_per_device = bits;
        self
    }

    /// Sets the input bound (1BitMean inputs live in `[0, max]`).
    #[must_use]
    pub fn max_value(mut self, max: f64) -> Self {
        self.desc.max_value = max;
        self
    }

    /// Opts in to the `O(n)`-memory raw local-hashing aggregator
    /// (BLH/OLH with fresh per-user seeds), which [`Registry::build`]
    /// otherwise refuses. Only appropriate for ablations and
    /// candidate-set-only estimation; full-domain workloads should use
    /// [`MechanismKind::CohortLocalHashing`].
    #[must_use]
    pub fn allow_linear_memory(mut self) -> Self {
        self.desc.allow_linear_memory = true;
        self
    }

    /// Validates the parameter set and produces the descriptor.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] / [`LdpError::InvalidDescriptor`]
    /// describing the first violated constraint for the chosen kind.
    pub fn build(self) -> Result<ProtocolDescriptor> {
        let d = self.desc;
        Epsilon::new(d.epsilon)?;
        let invalid = |msg: String| Err(LdpError::InvalidDescriptor(msg));
        match d.kind {
            MechanismKind::DirectEncoding
            | MechanismKind::SymmetricUnary
            | MechanismKind::OptimizedUnary
            | MechanismKind::SummationHistogram
            | MechanismKind::ThresholdHistogram
            | MechanismKind::SubsetSelection
            | MechanismKind::HadamardResponse
            | MechanismKind::BinaryLocalHashing
            | MechanismKind::OptimizedLocalHashing => {
                if d.domain_size < 2 {
                    return invalid(format!(
                        "{} needs a domain of at least 2 items, got {}",
                        d.kind.name(),
                        d.domain_size
                    ));
                }
            }
            MechanismKind::CohortLocalHashing => {
                if d.domain_size < 2 {
                    return invalid(format!(
                        "OLH-C needs a domain of at least 2 items, got {}",
                        d.domain_size
                    ));
                }
                if d.cohorts == 0 {
                    return invalid("OLH-C needs at least one cohort".into());
                }
            }
            MechanismKind::AppleCms | MechanismKind::AppleHcms => {
                if d.domain_size == 0 {
                    return invalid(format!("{} needs a non-empty domain", d.kind.name()));
                }
                if d.sketch_rows == 0 {
                    return invalid(format!(
                        "{} needs at least one sketch row (builder.sketch(k, m))",
                        d.kind.name()
                    ));
                }
                if d.sketch_width < 2 {
                    return invalid(format!(
                        "{} needs sketch width >= 2, got {}",
                        d.kind.name(),
                        d.sketch_width
                    ));
                }
                if d.kind == MechanismKind::AppleHcms && !d.sketch_width.is_power_of_two() {
                    return invalid(format!(
                        "HCMS needs a power-of-two sketch width, got {}",
                        d.sketch_width
                    ));
                }
            }
            MechanismKind::MicrosoftDBitFlip => {
                if d.domain_size < 2 || d.domain_size > u32::MAX as u64 {
                    return invalid(format!(
                        "dBitFlip needs 2 <= buckets <= u32::MAX, got {}",
                        d.domain_size
                    ));
                }
                if d.bits_per_device == 0 || d.bits_per_device as u64 > d.domain_size {
                    return invalid(format!(
                        "dBitFlip needs 1 <= bits_per_device <= buckets, got {} of {}",
                        d.bits_per_device, d.domain_size
                    ));
                }
            }
            MechanismKind::MicrosoftOneBitMean => {
                if !(d.max_value.is_finite() && d.max_value > 0.0) {
                    return invalid(format!(
                        "1BitMean needs a positive, finite input bound, got {}",
                        d.max_value
                    ));
                }
            }
        }
        Ok(d)
    }
}

/// A factory producing a type-erased mechanism from a validated
/// descriptor.
pub type MechanismFactory =
    Box<dyn Fn(&ProtocolDescriptor) -> Result<Box<dyn ErasedMechanism>> + Send + Sync>;

/// Maps [`MechanismKind`]s to factories, so a service can instantiate
/// any registered mechanism from a serialized descriptor at runtime.
pub struct Registry {
    factories: BTreeMap<u8, MechanismFactory>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::core()
    }
}

impl Registry {
    /// An empty registry (register everything yourself).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            factories: BTreeMap::new(),
        }
    }

    /// A registry with every `ldp-core` frequency oracle registered:
    /// GRR, SUE, OUE, SHE, THE, BLH, OLH, OLH-C, HR, SS.
    #[must_use]
    pub fn core() -> Self {
        let mut r = Self::empty();
        r.register(MechanismKind::DirectEncoding, |d| {
            erase(
                OracleMechanism(DirectEncoding::new(d.domain_size(), d.epsilon_checked())?),
                d,
            )
        });
        // The unary family rides `FusedUnaryMechanism`, whose
        // `try_randomize_frames` samples set bits straight into the
        // outgoing frame buffer (byte-identical to the materializing
        // path for a given seed).
        r.register(MechanismKind::SymmetricUnary, |d| {
            erase(
                FusedUnaryMechanism(SymmetricUnaryEncoding::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )?),
                d,
            )
        });
        r.register(MechanismKind::OptimizedUnary, |d| {
            erase(
                FusedUnaryMechanism(OptimizedUnaryEncoding::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )?),
                d,
            )
        });
        r.register(MechanismKind::SummationHistogram, |d| {
            erase(
                OracleMechanism(SummationHistogramEncoding::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )?),
                d,
            )
        });
        r.register(MechanismKind::ThresholdHistogram, |d| {
            erase(
                FusedUnaryMechanism(ThresholdHistogramEncoding::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )?),
                d,
            )
        });
        r.register(MechanismKind::BinaryLocalHashing, |d| {
            refuse_linear_memory(d)?;
            erase(
                OracleMechanism(BinaryLocalHashing::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )),
                d,
            )
        });
        r.register(MechanismKind::OptimizedLocalHashing, |d| {
            refuse_linear_memory(d)?;
            erase(
                OracleMechanism(OptimizedLocalHashing::new(
                    d.domain_size(),
                    d.epsilon_checked(),
                )),
                d,
            )
        });
        r.register(MechanismKind::CohortLocalHashing, |d| {
            erase(
                OracleMechanism(CohortLocalHashing::optimized_with_seed(
                    d.domain_size(),
                    d.cohorts(),
                    d.hash_seed(),
                    d.epsilon_checked(),
                )),
                d,
            )
        });
        r.register(MechanismKind::HadamardResponse, |d| {
            erase(
                OracleMechanism(HadamardResponse::new(d.domain_size(), d.epsilon_checked())),
                d,
            )
        });
        r.register(MechanismKind::SubsetSelection, |d| {
            erase(
                OracleMechanism(SubsetSelection::new(d.domain_size(), d.epsilon_checked())),
                d,
            )
        });
        r
    }

    /// Registers (or replaces) the factory for `kind`.
    pub fn register<F>(&mut self, kind: MechanismKind, factory: F)
    where
        F: Fn(&ProtocolDescriptor) -> Result<Box<dyn ErasedMechanism>> + Send + Sync + 'static,
    {
        self.factories.insert(kind.code(), Box::new(factory));
    }

    /// Whether a factory for `kind` is registered.
    pub fn supports(&self, kind: MechanismKind) -> bool {
        self.factories.contains_key(&kind.code())
    }

    /// The registered kinds, in code order.
    #[must_use]
    pub fn kinds(&self) -> Vec<MechanismKind> {
        self.factories
            .keys()
            .map(|&c| MechanismKind::from_code(c).expect("registered codes are valid"))
            .collect()
    }

    /// Instantiates the mechanism a descriptor describes.
    ///
    /// # Errors
    /// [`LdpError::UnsupportedMechanism`] when no factory is registered
    /// for the kind, or when the kind is raw BLH/OLH without the
    /// [`ProtocolDescriptorBuilder::allow_linear_memory`] escape hatch
    /// (use [`MechanismKind::CohortLocalHashing`] instead); any
    /// [`LdpError`] the factory's typed constructor surfaces.
    pub fn build(&self, descriptor: &ProtocolDescriptor) -> Result<Box<dyn ErasedMechanism>> {
        let factory = self
            .factories
            .get(&descriptor.kind().code())
            .ok_or_else(|| {
                LdpError::UnsupportedMechanism(format!(
                    "no factory registered for {} (registered: {:?})",
                    descriptor.kind().name(),
                    self.kinds()
                ))
            })?;
        factory(descriptor)
    }
}

/// Boxes a bridged mechanism (shared shorthand for the factories).
fn erase<M>(mech: M, descriptor: &ProtocolDescriptor) -> Result<Box<dyn ErasedMechanism>>
where
    M: crate::wire::WireMechanism + Send + Sync + 'static,
    M::Input: crate::wire::WireInput,
    M::Aggregator: Send + 'static,
    crate::wire::ReportOf<M>: crate::wire::WireReport,
{
    Ok(Box::new(ErasedBridge::new(mech, descriptor.clone())))
}

/// The steering guard for raw local hashing: its aggregator keeps all
/// `n` reports (`O(n)` memory, `O(n·d)` full-domain estimates).
fn refuse_linear_memory(d: &ProtocolDescriptor) -> Result<()> {
    if d.linear_memory_allowed() {
        return Ok(());
    }
    Err(LdpError::UnsupportedMechanism(format!(
        "{} keeps every raw report: O(n) memory and O(n·d) full-domain \
         estimates, which does not scale behind a collector service. Use \
         CohortLocalHashing (same privacy, same noise floor up to a 1/C \
         collision term, O(C·g) memory), or let the planner pick and tune \
         a mechanism for your budgets (ldp_planner::Planner::plan) — or, \
         for ablations and candidate-set-only estimation, opt in \
         explicitly with ProtocolDescriptorBuilder::allow_linear_memory()",
        d.kind().name()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_round_trips_through_bytes() {
        let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
            .domain_size(4096)
            .epsilon(1.25)
            .cohorts(512)
            .hash_seed(0xfeed)
            .build()
            .unwrap();
        let bytes = desc.to_bytes();
        let back = ProtocolDescriptor::from_bytes(&bytes).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn descriptor_rejects_bad_parameters() {
        assert!(matches!(
            ProtocolDescriptor::builder(MechanismKind::DirectEncoding)
                .domain_size(1)
                .epsilon(1.0)
                .build(),
            Err(LdpError::InvalidDescriptor(_))
        ));
        assert!(matches!(
            ProtocolDescriptor::builder(MechanismKind::DirectEncoding)
                .domain_size(8)
                .epsilon(-1.0)
                .build(),
            Err(LdpError::InvalidEpsilon(_))
        ));
        assert!(ProtocolDescriptor::builder(MechanismKind::AppleHcms)
            .domain_size(8)
            .epsilon(1.0)
            .sketch(4, 100) // not a power of two
            .build()
            .is_err());
        assert!(
            ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
                .domain_size(16)
                .bits_per_device(32)
                .epsilon(1.0)
                .build()
                .is_err()
        );
    }

    #[test]
    fn from_bytes_revalidates() {
        // Corrupt a valid descriptor's epsilon field in place: the
        // deserializer must reject it, not resurrect an invalid value.
        let desc = ProtocolDescriptor::builder(MechanismKind::DirectEncoding)
            .domain_size(8)
            .epsilon(1.0)
            .build()
            .unwrap();
        let mut bytes = desc.to_bytes();
        // ε is the f64 right after version, kind, flags, and the 1-byte
        // domain varint.
        bytes[4..12].copy_from_slice(&f64::NEG_INFINITY.to_le_bytes());
        assert!(matches!(
            ProtocolDescriptor::from_bytes(&bytes),
            Err(LdpError::InvalidEpsilon(_))
        ));
        // Foreign schema version.
        let mut bytes = desc.to_bytes();
        bytes[0] = 9;
        assert!(matches!(
            ProtocolDescriptor::from_bytes(&bytes),
            Err(LdpError::VersionMismatch { got: 9, .. })
        ));
    }

    #[test]
    fn registry_builds_core_kinds() {
        let registry = Registry::core();
        for kind in [
            MechanismKind::DirectEncoding,
            MechanismKind::SymmetricUnary,
            MechanismKind::OptimizedUnary,
            MechanismKind::SummationHistogram,
            MechanismKind::ThresholdHistogram,
            MechanismKind::CohortLocalHashing,
            MechanismKind::HadamardResponse,
            MechanismKind::SubsetSelection,
        ] {
            let desc = ProtocolDescriptor::builder(kind)
                .domain_size(32)
                .epsilon(1.0)
                .build()
                .unwrap();
            let mech = registry.build(&desc).unwrap();
            assert_eq!(mech.descriptor().kind(), kind);
        }
    }

    #[test]
    fn registry_steers_away_from_raw_local_hashing() {
        let registry = Registry::core();
        for kind in [
            MechanismKind::BinaryLocalHashing,
            MechanismKind::OptimizedLocalHashing,
        ] {
            let desc = ProtocolDescriptor::builder(kind)
                .domain_size(32)
                .epsilon(1.0)
                .build()
                .unwrap();
            let err = registry.build(&desc).unwrap_err();
            match err {
                LdpError::UnsupportedMechanism(msg) => {
                    assert!(
                        msg.contains("CohortLocalHashing"),
                        "steering message: {msg}"
                    );
                    assert!(msg.contains("Planner::plan"), "planner remedy: {msg}");
                    assert!(msg.contains("allow_linear_memory"), "escape hatch: {msg}");
                }
                other => panic!("expected UnsupportedMechanism, got {other:?}"),
            }
            // The documented escape hatch works.
            let desc = ProtocolDescriptor::builder(kind)
                .domain_size(32)
                .epsilon(1.0)
                .allow_linear_memory()
                .build()
                .unwrap();
            assert!(registry.build(&desc).is_ok());
        }
    }

    #[test]
    fn registry_reports_unregistered_kinds() {
        let registry = Registry::core();
        let desc = ProtocolDescriptor::builder(MechanismKind::AppleCms)
            .domain_size(32)
            .epsilon(2.0)
            .sketch(16, 256)
            .build()
            .unwrap();
        assert!(matches!(
            registry.build(&desc),
            Err(LdpError::UnsupportedMechanism(_))
        ));
    }
}
