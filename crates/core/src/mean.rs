//! Numeric mechanisms: estimating means of bounded values under LDP.
//!
//! The tutorial's §1.1 toolkit and §1.2(3) (Microsoft's telemetry) both
//! need mean estimation over `[-1, 1]`-bounded inputs. Four mechanisms,
//! in increasing order of sophistication:
//!
//! * [`LaplaceMean`] — add `Lap(2/ε)` to the value itself. Unbounded
//!   output, variance `8/ε²` per user regardless of ε; only competitive
//!   for large ε.
//! * [`DuchiMean`] — Duchi–Jordan–Wainwright's minimax mechanism: output
//!   is one of `±(e^ε+1)/(e^ε−1)`, with the probability encoding the value.
//!   Order-optimal for small ε.
//! * [`StochasticRoundingMean`] — "Harmony"-style: round the value to a
//!   bit with probability `(1+x)/2`, then binary randomized response.
//!   Equivalent to Duchi up to scaling; included because Microsoft's
//!   1BitMean is exactly this mechanism (see `ldp-microsoft`).
//! * [`PiecewiseMean`] — Wang et al.'s piecewise mechanism (ICDE 2019, the
//!   "future work" direction §1.4 points at): outputs a value in
//!   `[-C, C]`, concentrating near the truth for large ε; beats Duchi when
//!   `ε ≳ 1.29`.
//!
//! All mechanisms are unbiased: `E[report] = x`. The aggregator is a plain
//! average, so these compose trivially into longitudinal collection.

use crate::noise::sample_laplace;
use crate::privacy::Epsilon;
use crate::{Error, Result};
use rand::{Rng, RngCore};

/// Common interface for unbiased single-value mean mechanisms on `[-1, 1]`.
pub trait MeanMechanism {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Per-report privacy parameter.
    fn epsilon(&self) -> Epsilon;

    /// Privatizes `x ∈ [-1, 1]`; the output is unbiased for `x`.
    ///
    /// # Panics
    /// Panics if `x` is outside `[-1, 1]`.
    fn randomize(&self, x: f64, rng: &mut dyn RngCore) -> f64;

    /// Worst-case per-report variance (at the worst input in `[-1, 1]`).
    fn worst_case_variance(&self) -> f64;

    /// Estimates the population mean from reports: the plain average.
    fn estimate_mean(&self, reports: &[f64]) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        reports.iter().sum::<f64>() / reports.len() as f64
    }
}

#[inline]
fn check_range(x: f64) {
    assert!((-1.0..=1.0).contains(&x), "input {x} outside [-1, 1]");
}

/// Laplace mechanism on the raw value: `x + Lap(2/ε)`.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMean {
    epsilon: Epsilon,
    scale: f64,
}

impl LaplaceMean {
    /// Creates the mechanism (sensitivity of `[-1,1]` inputs is 2).
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            scale: 2.0 / epsilon.value(),
        }
    }
}

impl MeanMechanism for LaplaceMean {
    fn name(&self) -> &'static str {
        "Laplace"
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, x: f64, rng: &mut dyn RngCore) -> f64 {
        check_range(x);
        x + sample_laplace(self.scale, rng)
    }

    fn worst_case_variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }
}

/// Duchi–Jordan–Wainwright minimax mechanism: report
/// `±C` with `C = (e^ε+1)/(e^ε−1)`, where
/// `Pr[+C] = (1 + x·(e^ε−1)/(e^ε+1))/2`.
#[derive(Debug, Clone, Copy)]
pub struct DuchiMean {
    epsilon: Epsilon,
    c: f64,
}

impl DuchiMean {
    /// Creates the mechanism.
    pub fn new(epsilon: Epsilon) -> Self {
        let e = epsilon.exp();
        Self {
            epsilon,
            c: (e + 1.0) / (e - 1.0),
        }
    }

    /// The output magnitude `C`.
    pub fn magnitude(&self) -> f64 {
        self.c
    }
}

impl MeanMechanism for DuchiMean {
    fn name(&self) -> &'static str {
        "Duchi"
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, x: f64, rng: &mut dyn RngCore) -> f64 {
        check_range(x);
        let p_plus = 0.5 * (1.0 + x / self.c);
        if rng.gen_bool(p_plus.clamp(0.0, 1.0)) {
            self.c
        } else {
            -self.c
        }
    }

    fn worst_case_variance(&self) -> f64 {
        // Var = C^2 - x^2, worst at x = 0.
        self.c * self.c
    }
}

/// Stochastic rounding + binary randomized response (Harmony / 1BitMean):
/// round `x` to `b ∈ {0,1}` with `Pr[b=1] = (1+x)/2`, flip `b` with the RR
/// probability, and debias. Equivalent to Duchi's mechanism in
/// distribution; implemented separately because Microsoft's deployed
/// telemetry (`ldp-microsoft`) is specified in exactly this form.
#[derive(Debug, Clone, Copy)]
pub struct StochasticRoundingMean {
    epsilon: Epsilon,
    p_truth: f64,
}

impl StochasticRoundingMean {
    /// Creates the mechanism with RR truth probability `e^ε/(e^ε+1)`.
    pub fn new(epsilon: Epsilon) -> Self {
        let e = epsilon.exp();
        Self {
            epsilon,
            p_truth: e / (e + 1.0),
        }
    }

    /// The raw one-bit report (before debiasing) for input `x`.
    pub fn randomize_bit(&self, x: f64, rng: &mut dyn RngCore) -> bool {
        check_range(x);
        let b = rng.gen_bool((0.5 * (1.0 + x)).clamp(0.0, 1.0));
        if rng.gen_bool(self.p_truth) {
            b
        } else {
            !b
        }
    }

    /// Debiases one bit into an unbiased estimate of `x`:
    /// `x̂ = (2·(bit − (1−p))/(2p−1)) − 1` mapped onto `[-C, C]`.
    pub fn debias_bit(&self, bit: bool) -> f64 {
        let p = self.p_truth;
        let b = if bit { 1.0 } else { 0.0 };
        2.0 * (b - (1.0 - p)) / (2.0 * p - 1.0) - 1.0
    }
}

impl MeanMechanism for StochasticRoundingMean {
    fn name(&self) -> &'static str {
        "StochasticRounding"
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, x: f64, rng: &mut dyn RngCore) -> f64 {
        let bit = self.randomize_bit(x, rng);
        self.debias_bit(bit)
    }

    fn worst_case_variance(&self) -> f64 {
        // Same as Duchi: outputs are ±(e^ε+1)/(e^ε−1) in disguise.
        let e = self.epsilon.exp();
        let c = (e + 1.0) / (e - 1.0);
        c * c
    }
}

/// The piecewise mechanism: outputs a continuous value in `[-C, C]`,
/// `C = (e^{ε/2}+1)/(e^{ε/2}−1)`, from a density that is `e^ε` times
/// higher on a sub-interval centered (in the piecewise sense) around `x`.
///
/// For each input `x`, the high-density region is `[L(x), R(x)]` with
/// `L = C(e^{ε/2}x − 1)/(e^{ε/2} − 1) · (C−1)/(C+1)`-style bounds —
/// concretely `L(x) = (C+1)x/2 − (C−1)/2`, `R(x) = L(x) + C − 1`.
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseMean {
    epsilon: Epsilon,
    c: f64,
    p_high: f64,
}

impl PiecewiseMean {
    /// Creates the mechanism.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if ε is so small that the
    /// mechanism degenerates (`e^{ε/2} = 1`; never for valid [`Epsilon`],
    /// retained for API robustness against subnormal ε).
    pub fn new(epsilon: Epsilon) -> Result<Self> {
        let half = (epsilon.value() / 2.0).exp();
        if half <= 1.0 + 1e-12 {
            return Err(Error::InvalidParameter(
                "epsilon too small for piecewise mechanism".into(),
            ));
        }
        let c = (half + 1.0) / (half - 1.0);
        // Probability of sampling from the high-density central region:
        // p = e^{ε/2}/(e^{ε/2}+1) · ... derived so that total mass is 1 and
        // the density ratio is exactly e^ε. Region width is C-1; high
        // density is e^ε·low. p_high = (C-1)·e^ε·low where
        // low = 1/(2C + (C-1)(e^ε -1)) ... simplifies to:
        let e = epsilon.exp();
        let width_high = c - 1.0;
        let total = 2.0 * c + width_high * (e - 1.0);
        let p_high = width_high * e / total;
        Ok(Self { epsilon, c, p_high })
    }

    /// Output magnitude bound `C`.
    pub fn magnitude(&self) -> f64 {
        self.c
    }

    fn region(&self, x: f64) -> (f64, f64) {
        let l = (self.c + 1.0) * x / 2.0 - (self.c - 1.0) / 2.0;
        (l, l + self.c - 1.0)
    }
}

impl MeanMechanism for PiecewiseMean {
    fn name(&self) -> &'static str {
        "Piecewise"
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn randomize(&self, x: f64, rng: &mut dyn RngCore) -> f64 {
        check_range(x);
        let (l, r) = self.region(x);
        if rng.gen_bool(self.p_high) {
            // Uniform in the high-density region [l, r].
            rng.gen_range(l..=r)
        } else {
            // Uniform in the low-density complement [-C, l) ∪ (r, C].
            let left_w = l + self.c; // width of [-C, l)
            let right_w = self.c - r;
            let u: f64 = rng.gen_range(0.0..left_w + right_w);
            if u < left_w {
                -self.c + u
            } else {
                r + (u - left_w)
            }
        }
    }

    fn worst_case_variance(&self) -> f64 {
        // Exact worst-case is at |x| = 1; use the paper's closed form
        // Var(x) = x/(e^{ε/2}-1) + (e^{ε/2}+3)/(3(e^{ε/2}-1)^2) ... we
        // report the x=1 value computed numerically from moments.
        let half = (self.epsilon.value() / 2.0).exp();
        1.0 / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0).powi(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn empirical_mean<M: MeanMechanism>(m: &M, x: f64, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<f64> = (0..n).map(|_| m.randomize(x, &mut rng)).collect();
        m.estimate_mean(&reports)
    }

    #[test]
    fn all_mechanisms_unbiased() {
        let e = eps(1.0);
        let n = 300_000;
        for &x in &[-1.0, -0.4, 0.0, 0.3, 1.0] {
            let lap = empirical_mean(&LaplaceMean::new(e), x, n, 1);
            assert!((lap - x).abs() < 0.02, "laplace x={x}: {lap}");
            let duchi = empirical_mean(&DuchiMean::new(e), x, n, 2);
            assert!((duchi - x).abs() < 0.02, "duchi x={x}: {duchi}");
            let sr = empirical_mean(&StochasticRoundingMean::new(e), x, n, 3);
            assert!((sr - x).abs() < 0.02, "sr x={x}: {sr}");
            let pw = empirical_mean(&PiecewiseMean::new(e).unwrap(), x, n, 4);
            assert!((pw - x).abs() < 0.05, "piecewise x={x}: {pw}");
        }
    }

    #[test]
    fn duchi_outputs_are_two_point() {
        let m = DuchiMean::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(5);
        let c = m.magnitude();
        for _ in 0..100 {
            let y = m.randomize(0.3, &mut rng);
            assert!((y - c).abs() < 1e-12 || (y + c).abs() < 1e-12);
        }
    }

    #[test]
    fn duchi_beats_laplace_at_small_eps() {
        let e = eps(0.5);
        assert!(
            DuchiMean::new(e).worst_case_variance() < LaplaceMean::new(e).worst_case_variance()
        );
    }

    #[test]
    fn laplace_competitive_at_large_eps() {
        let e = eps(8.0);
        assert!(
            LaplaceMean::new(e).worst_case_variance()
                < DuchiMean::new(e).worst_case_variance() * 10.0
        );
    }

    #[test]
    fn piecewise_outputs_bounded() {
        let m = PiecewiseMean::new(eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let c = m.magnitude();
        for _ in 0..10_000 {
            let y = m.randomize(0.7, &mut rng);
            assert!(y >= -c - 1e-9 && y <= c + 1e-9, "y={y} c={c}");
        }
    }

    #[test]
    fn piecewise_concentrates_at_high_eps() {
        // At large eps, outputs should usually fall near x.
        let m = PiecewiseMean::new(eps(5.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let x = 0.5;
        let near = (0..10_000)
            .filter(|_| (m.randomize(x, &mut rng) - x).abs() < 0.5)
            .count();
        assert!(near > 8000, "near={near}");
    }

    #[test]
    fn stochastic_rounding_debias_covers_bit_values() {
        let m = StochasticRoundingMean::new(eps(1.0));
        // debias(1) > 1 and debias(0) < -1: the estimator range expands.
        assert!(m.debias_bit(true) > 1.0);
        assert!(m.debias_bit(false) < -1.0);
        // and they average to 0 when p(bit)=1/2 (i.e. x=0).
        assert!((m.debias_bit(true) + m.debias_bit(false)).abs() < 1e-9);
    }

    #[test]
    fn sr_variance_matches_duchi() {
        let e = eps(1.0);
        let sr = StochasticRoundingMean::new(e).worst_case_variance();
        let duchi = DuchiMean::new(e).worst_case_variance();
        assert!((sr - duchi).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside [-1, 1]")]
    fn out_of_range_panics() {
        let m = DuchiMean::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        m.randomize(1.5, &mut rng);
    }
}
