//! Property tests for [`FoAggregator::try_subtract`]: subtraction must
//! be the **exact inverse** of merge — `subtract(merge(a, b), b)` leaves
//! state bit-identical to `a` (compared through snapshot BLOBs, stronger
//! than estimate equality) — for every count-based aggregator in the
//! family; the non-subtractive states (SHE's float sums, raw LH's report
//! list) must refuse with [`LdpError::NotSubtractive`] and leave both
//! operands untouched. This is the contract the sliding-window ring
//! (`ldp_workloads::window`) retires windows on.

use ldp_core::fo::{
    CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::snapshot::{snapshot_vec, StateSnapshot};
use ldp_core::{Epsilon, LdpError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(e: f64) -> Epsilon {
    Epsilon::new(e).expect("valid eps")
}

/// Builds `a` from the first `cut` reports and `b` from the rest, then
/// checks `try_subtract(merge(a, b), b)` restores `a`'s exact snapshot —
/// including the `b` empty and `a` empty edges — and that subtracting a
/// differently-configured state refuses without touching the minuend.
fn check_subtract<O: FrequencyOracle>(oracle: &O, mismatched: &O, seed: u64, n: usize, cut: usize)
where
    O::Aggregator: StateSnapshot,
{
    let d = oracle.domain_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let reports: Vec<O::Report> = (0..n)
        .map(|i| oracle.randomize((i as u64 * 5 + seed) % d, &mut rng))
        .collect();
    let cut = cut.min(n);

    let build = |range: &[O::Report]| {
        let mut agg = oracle.new_aggregator();
        for r in range {
            agg.accumulate(r);
        }
        agg
    };
    let a = build(&reports[..cut]);
    let b = build(&reports[cut..]);
    let mut merged = build(&reports[..cut]);
    merged.merge(build(&reports[cut..]));

    merged
        .try_subtract(&b)
        .unwrap_or_else(|e| panic!("{}: subtract refused: {e}", oracle.name()));
    assert_eq!(
        snapshot_vec(&merged),
        snapshot_vec(&a),
        "{}: subtract(merge(a, b), b) != a",
        oracle.name()
    );
    assert_eq!(merged.reports(), cut);

    // Subtracting more than the state holds must refuse atomically.
    if cut < n {
        let before = snapshot_vec(&merged);
        let whole = build(&reports);
        assert!(
            matches!(merged.try_subtract(&whole), Err(LdpError::StateMismatch(_))),
            "{}: oversubtraction must refuse",
            oracle.name()
        );
        assert_eq!(
            snapshot_vec(&merged),
            before,
            "{}: refused subtract moved state",
            oracle.name()
        );
    }

    // A state from a different configuration is never a sub-aggregate.
    let before = snapshot_vec(&merged);
    let foreign = mismatched.new_aggregator();
    assert!(
        matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ),
        "{}: config mismatch must refuse",
        oracle.name()
    );
    assert_eq!(snapshot_vec(&merged), before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn subtract_inverts_merge_for_count_aggregators(
        e in 0.3f64..4.0, d in 4u64..48, seed in 0u64..10_000,
        n in 20usize..120, cut in 0usize..120,
    ) {
        // Each mismatched twin differs only in ε, the config every
        // aggregator checks first.
        check_subtract(
            &DirectEncoding::new(d, eps(e)).expect("domain"),
            &DirectEncoding::new(d, eps(e + 0.7)).expect("domain"),
            seed, n, cut,
        );
        check_subtract(
            &SymmetricUnaryEncoding::new(d, eps(e)).expect("domain"),
            &SymmetricUnaryEncoding::new(d, eps(e + 0.7)).expect("domain"),
            seed, n, cut,
        );
        check_subtract(
            &OptimizedUnaryEncoding::new(d, eps(e)).expect("domain"),
            &OptimizedUnaryEncoding::new(d, eps(e + 0.7)).expect("domain"),
            seed, n, cut,
        );
        check_subtract(
            &ThresholdHistogramEncoding::new(d, eps(e)).expect("domain"),
            &ThresholdHistogramEncoding::new(d, eps(e + 0.7)).expect("domain"),
            seed, n, cut,
        );
        check_subtract(
            &SubsetSelection::new(d, eps(e)),
            &SubsetSelection::new(d, eps(e + 0.7)),
            seed, n, cut,
        );
        check_subtract(
            &HadamardResponse::new(d, eps(e)),
            &HadamardResponse::new(d, eps(e + 0.7)),
            seed, n, cut,
        );
        check_subtract(
            &CohortLocalHashing::optimized(d, 16, eps(e)),
            &CohortLocalHashing::optimized(d, 16, eps(e + 0.7)),
            seed, n, cut,
        );
    }

    #[test]
    fn non_subtractive_states_refuse_typed(
        e in 0.3f64..4.0, d in 4u64..24, seed in 0u64..10_000, n in 10usize..60,
    ) {
        // SHE: floating-point noise sums have no exact merge inverse.
        let she = SummationHistogramEncoding::new(d, eps(e)).expect("domain");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = she.new_aggregator();
        let mut other = she.new_aggregator();
        for i in 0..n {
            agg.accumulate(&she.randomize(i as u64 % d, &mut rng));
            other.accumulate(&she.randomize(i as u64 % d, &mut rng));
        }
        let (before_a, before_b) = (snapshot_vec(&agg), snapshot_vec(&other));
        prop_assert!(matches!(
            agg.try_subtract(&other),
            Err(LdpError::NotSubtractive(_))
        ));
        prop_assert_eq!(snapshot_vec(&agg), before_a);
        prop_assert_eq!(snapshot_vec(&other), before_b);

        // Raw OLH: a report list; window deltas have no identity in it.
        let olh = OptimizedLocalHashing::new(d, eps(e));
        let mut agg = olh.new_aggregator();
        let mut other = olh.new_aggregator();
        for i in 0..n {
            agg.accumulate(&olh.randomize(i as u64 % d, &mut rng));
            other.accumulate(&olh.randomize(i as u64 % d, &mut rng));
        }
        prop_assert!(matches!(
            agg.try_subtract(&other),
            Err(LdpError::NotSubtractive(_))
        ));
        prop_assert_eq!(agg.reports(), n);
    }
}
