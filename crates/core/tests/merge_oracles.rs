//! Property tests for [`FoAggregator::merge`]: for every oracle in the
//! family, splitting one report stream across shard-local aggregators and
//! merging must reproduce sequential accumulation — exactly, for every
//! count-based aggregator — and merging must be associative. This is the
//! contract the sharded parallel collection engine
//! (`ldp_workloads::parallel`) is built on.

use ldp_core::fo::{
    CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::Epsilon;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How strictly the merged estimate must match the sequential one.
#[derive(Clone, Copy)]
enum Match {
    /// Bit-for-bit: integer sufficient statistics, identical debiasing.
    Exact,
    /// Up to f64 addition reassociation (SHE sums floating-point noise).
    UlpClose,
}

/// Accumulates `reports` three ways — sequentially, and as three shard
/// aggregators merged in the two associativity orders — and checks all
/// estimates agree.
fn check_merge<O: FrequencyOracle>(oracle: &O, seed: u64, n: usize, cut: (usize, usize), m: Match)
where
    O::Report: Clone,
{
    let d = oracle.domain_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let reports: Vec<O::Report> = (0..n)
        .map(|i| oracle.randomize((i as u64 * 7 + seed) % d, &mut rng))
        .collect();
    let (c1, c2) = (cut.0.min(n), cut.1.min(n));
    let (lo, hi) = (c1.min(c2), c1.max(c2));

    let mut seq = oracle.new_aggregator();
    for r in &reports {
        seq.accumulate(r);
    }

    let shard = |range: &[O::Report]| {
        let mut agg = oracle.new_aggregator();
        for r in range {
            agg.accumulate(r);
        }
        agg
    };
    // ((s0 + s1) + s2) and (s0 + (s1 + s2)).
    let mut left = shard(&reports[..lo]);
    left.merge(shard(&reports[lo..hi]));
    left.merge(shard(&reports[hi..]));
    let mut tail = shard(&reports[lo..hi]);
    tail.merge(shard(&reports[hi..]));
    let mut right = shard(&reports[..lo]);
    right.merge(tail);

    assert_eq!(
        left.reports(),
        seq.reports(),
        "{}: n mismatch",
        oracle.name()
    );
    assert_eq!(right.reports(), seq.reports());

    let (es, el, er) = (seq.estimate(), left.estimate(), right.estimate());
    for i in 0..es.len() {
        match m {
            Match::Exact => {
                assert_eq!(
                    el[i].to_bits(),
                    es[i].to_bits(),
                    "{} item {i}: merged {} != sequential {}",
                    oracle.name(),
                    el[i],
                    es[i]
                );
                assert_eq!(er[i].to_bits(), es[i].to_bits(), "{} assoc", oracle.name());
            }
            Match::UlpClose => {
                let tol = 1e-9 * (1.0 + es[i].abs());
                assert!((el[i] - es[i]).abs() < tol, "{} item {i}", oracle.name());
                assert!(
                    (er[i] - es[i]).abs() < tol,
                    "{} assoc item {i}",
                    oracle.name()
                );
            }
        }
    }
}

fn eps(e: f64) -> Epsilon {
    Epsilon::new(e).expect("valid eps")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merge_exact_for_count_aggregators(
        e in 0.3f64..4.0, d in 4u64..48, seed in 0u64..10_000,
        n in 30usize..150, a in 0usize..150, b in 0usize..150,
    ) {
        let cut = (a, b);
        check_merge(&DirectEncoding::new(d, eps(e)).expect("domain"), seed, n, cut, Match::Exact);
        check_merge(&SymmetricUnaryEncoding::new(d, eps(e)).expect("domain"), seed, n, cut, Match::Exact);
        check_merge(&OptimizedUnaryEncoding::new(d, eps(e)).expect("domain"), seed, n, cut, Match::Exact);
        check_merge(&ThresholdHistogramEncoding::new(d, eps(e)).expect("domain"), seed, n, cut, Match::Exact);
        check_merge(&SubsetSelection::new(d, eps(e)), seed, n, cut, Match::Exact);
        check_merge(&HadamardResponse::new(d, eps(e)), seed, n, cut, Match::Exact);
        check_merge(&OptimizedLocalHashing::new(d, eps(e)), seed, n, cut, Match::Exact);
        check_merge(&CohortLocalHashing::optimized(d, 32, eps(e)), seed, n, cut, Match::Exact);
    }

    #[test]
    fn merge_matches_sequential_for_she_up_to_reassociation(
        e in 0.3f64..4.0, d in 4u64..24, seed in 0u64..10_000,
        n in 30usize..100, a in 0usize..100, b in 0usize..100,
    ) {
        check_merge(
            &SummationHistogramEncoding::new(d, eps(e)).expect("domain"),
            seed, n, (a, b), Match::UlpClose,
        );
    }
}

/// Merging an empty aggregator is the identity.
#[test]
fn merge_with_empty_is_identity() {
    let oracle = CohortLocalHashing::optimized(16, 8, eps(1.0));
    let mut rng = StdRng::seed_from_u64(7);
    let mut agg = oracle.new_aggregator();
    for u in 0..200u64 {
        agg.accumulate(&oracle.randomize(u % 16, &mut rng));
    }
    let before = agg.estimate();
    agg.merge(oracle.new_aggregator());
    assert_eq!(agg.estimate(), before);
    assert_eq!(agg.reports(), 200);

    let mut empty = oracle.new_aggregator();
    let mut rng = StdRng::seed_from_u64(7);
    let mut other = oracle.new_aggregator();
    for u in 0..200u64 {
        other.accumulate(&oracle.randomize(u % 16, &mut rng));
    }
    empty.merge(other);
    assert_eq!(empty.estimate(), before);
}
