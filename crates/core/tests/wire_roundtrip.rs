//! The wire-format contract for every core report type:
//! `decode_report(encode_report(r)) == r` (identity round trip) for
//! arbitrary representable reports, and decoding never panics on
//! corrupted, truncated, or wrong-version bytes — it returns
//! `LdpError`.

use ldp_core::wire::{
    decode_report, encode_report_vec, next_frame, tag, CohortLhReport, HrReport, LhReport,
    WIRE_VERSION,
};
use ldp_core::LdpError;
use ldp_sketch::BitVec;
use proptest::collection::vec;
use proptest::prelude::*;

/// Round-trips one report and checks equality.
fn check_roundtrip<R>(report: R)
where
    R: ldp_core::wire::WireReport + PartialEq + std::fmt::Debug,
{
    let frame = encode_report_vec(&report);
    assert_eq!(frame[0], WIRE_VERSION);
    assert_eq!(frame[1], R::TAG);
    let back: R = decode_report(&frame).expect("well-formed frame decodes");
    assert_eq!(back, report);
}

/// Every truncation of a valid frame must fail cleanly, and every
/// single-byte corruption must either fail cleanly or decode to *some*
/// value — never panic. (Corruptions of payload bytes can be valid
/// alternative reports; the guarantee under test is panic-freedom plus
/// graceful errors, which `decode_report` provides by construction of
/// its `Result` API — any panic fails the test harness.)
fn check_adversarial<R>(report: &R)
where
    R: ldp_core::wire::WireReport + PartialEq + std::fmt::Debug,
{
    let frame = encode_report_vec(report);
    for cut in 0..frame.len() {
        assert!(
            decode_report::<R>(&frame[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }
    for i in 0..frame.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = frame.clone();
            bad[i] ^= flip;
            let _ = decode_report::<R>(&bad); // must not panic
        }
    }
    // Wrong version byte is always rejected.
    let mut bad = frame.clone();
    bad[0] = WIRE_VERSION.wrapping_add(1);
    assert!(matches!(
        decode_report::<R>(&bad),
        Err(LdpError::VersionMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn item_report_roundtrips(v in any::<u64>()) {
        check_roundtrip(v);
        check_adversarial(&v);
    }

    #[test]
    fn bit_report_roundtrips(b in any::<bool>()) {
        check_roundtrip(b);
        check_adversarial(&b);
    }

    #[test]
    fn bitvec_report_roundtrips(bools in vec(any::<bool>(), 1..200)) {
        let bits = BitVec::from_bools(bools.iter().copied());
        check_roundtrip(bits.clone());
        check_adversarial(&bits);
    }

    #[test]
    fn real_vec_report_roundtrips(xs in vec(-1e9f64..1e9, 0..64)) {
        check_roundtrip(xs.clone());
        check_adversarial(&xs);
    }

    #[test]
    fn item_set_report_roundtrips(xs in vec(any::<u64>(), 0..64)) {
        check_roundtrip(xs.clone());
        check_adversarial(&xs);
    }

    #[test]
    fn lh_report_roundtrips(seed in any::<u64>(), bucket in 0u64..1_000_000) {
        let r = LhReport { seed, bucket };
        check_roundtrip(r);
        check_adversarial(&r);
    }

    #[test]
    fn cohort_report_roundtrips(cohort in any::<u32>(), bucket in any::<u32>()) {
        let r = CohortLhReport { cohort, bucket };
        check_roundtrip(r);
        check_adversarial(&r);
    }

    #[test]
    fn hr_report_roundtrips(index in any::<u64>(), flip in any::<bool>()) {
        let r = HrReport { index, sign: if flip { 1 } else { -1 } };
        check_roundtrip(r);
        check_adversarial(&r);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in vec(any::<u8>(), 0..64)) {
        // Pure fuzz: any byte soup must come back as Ok or Err.
        let _ = decode_report::<u64>(&bytes);
        let _ = decode_report::<BitVec>(&bytes);
        let _ = decode_report::<Vec<f64>>(&bytes);
        let _ = decode_report::<Vec<u64>>(&bytes);
        let _ = decode_report::<LhReport>(&bytes);
        let _ = decode_report::<CohortLhReport>(&bytes);
        let _ = decode_report::<HrReport>(&bytes);
        let _ = decode_report::<bool>(&bytes);
        let mut pos = 0;
        let _ = next_frame(&bytes, &mut pos);
    }
}

#[test]
fn tags_are_distinct() {
    let tags = [
        tag::ITEM,
        tag::BITS,
        tag::REAL_VEC,
        tag::ITEM_SET,
        tag::LOCAL_HASH,
        tag::COHORT_HASH,
        tag::HADAMARD,
        tag::BIT,
        tag::APPLE_CMS,
        tag::APPLE_HCMS,
        tag::MS_DBIT,
        tag::RAPPOR,
    ];
    let set: std::collections::HashSet<u8> = tags.into_iter().collect();
    assert_eq!(set.len(), tags.len(), "frame tags must be unique");
}

#[test]
fn declared_length_beyond_buffer_is_truncation_not_allocation() {
    // A frame header claiming a 2^40-byte payload over a 3-byte buffer
    // must error without trying to materialize anything.
    let mut frame = vec![WIRE_VERSION, tag::ITEM];
    ldp_core::wire::put_uvarint(&mut frame, 1 << 40);
    frame.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        decode_report::<u64>(&frame),
        Err(LdpError::Truncated { .. })
    ));
}
