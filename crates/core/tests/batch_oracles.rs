//! The batch-engine contract, enforced for every oracle: for a given RNG
//! seed, `randomize_batch` and the fused `randomize_accumulate_batch`
//! must produce **bit-identical** aggregator state to the scalar
//! `randomize` + `accumulate` loop — same uniform draws, same counters,
//! same floating-point estimates. This is what lets the sharded parallel
//! engine (`ldp_workloads::parallel`) switch every shard onto the fused
//! path without perturbing any previously recorded result, and what makes
//! shard replays reproducible across the scalar/batch boundary.
//!
//! The shard-layout dimension: each case splits the population at an
//! arbitrary boundary and re-seeds per shard, mirroring the parallel
//! engine's per-shard RNG streams, so bit-identity is checked across
//! shard layouts and merge, not just for one flat pass.

use ldp_core::fo::{
    CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::Epsilon;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the aggregator three ways over the same sharded population —
/// scalar loop, report-batch, fused batch — and asserts every estimate is
/// bit-identical across the three.
fn check_batch_matches_scalar<O: FrequencyOracle>(oracle: &O, values: &[u64], seed: u64) {
    let split = values.len() / 3;
    let shards = [&values[..split], &values[split..]];

    let mut scalar_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        for &v in *shard {
            scalar_agg.accumulate(&oracle.randomize(v, &mut rng));
        }
    }

    let mut batch_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        oracle.randomize_batch(shard, &mut rng, |r| batch_agg.accumulate(&r));
    }

    let mut fused_agg = oracle.new_aggregator();
    for (i, shard) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        oracle.randomize_accumulate_batch(shard, &mut rng, &mut fused_agg);
    }

    assert_eq!(scalar_agg.reports(), values.len());
    assert_eq!(batch_agg.reports(), values.len());
    assert_eq!(fused_agg.reports(), values.len());

    let scalar = scalar_agg.estimate();
    let batch = batch_agg.estimate();
    let fused = fused_agg.estimate();
    for (i, ((s, b), f)) in scalar.iter().zip(&batch).zip(&fused).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{} item {i}: batch {b} != scalar {s}",
            oracle.name()
        );
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{} item {i}: fused {f} != scalar {s}",
            oracle.name()
        );
    }
}

fn population(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grr_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..64, seed in 0u64..1000) {
        let oracle = DirectEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_batch_matches_scalar(&oracle, &population(400, d), seed);
    }

    #[test]
    fn sue_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..80, seed in 0u64..1000) {
        let oracle = SymmetricUnaryEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn oue_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..80, seed in 0u64..1000) {
        let oracle = OptimizedUnaryEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn the_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..80, seed in 0u64..1000) {
        let oracle = ThresholdHistogramEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn she_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..48, seed in 0u64..1000) {
        // The one floating-point aggregator: fused adds in scalar order,
        // so even the f64 sums must match to the bit.
        let oracle = SummationHistogramEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_batch_matches_scalar(&oracle, &population(200, d), seed);
    }

    #[test]
    fn ss_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..48, seed in 0u64..1000) {
        let oracle = SubsetSelection::new(d, Epsilon::new(e).expect("eps"));
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn olh_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..64, seed in 0u64..1000) {
        let oracle = OptimizedLocalHashing::new(d, Epsilon::new(e).expect("eps"));
        check_batch_matches_scalar(&oracle, &population(300, d), seed);
    }

    #[test]
    fn cohort_olh_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..64, seed in 0u64..1000) {
        let oracle = CohortLocalHashing::optimized(d, 64, Epsilon::new(e).expect("eps"));
        check_batch_matches_scalar(&oracle, &population(400, d), seed);
    }

    #[test]
    fn hr_batch_bit_identical(e in 0.3f64..4.0, d in 2u64..64, seed in 0u64..1000) {
        let oracle = HadamardResponse::new(d, Epsilon::new(e).expect("eps"));
        check_batch_matches_scalar(&oracle, &population(400, d), seed);
    }
}

/// Statistical satellite: the geometric-skip unary sampler's per-bit
/// 1-rates must match the (p, q) channel the debiasing assumes — checked
/// end-to-end through `randomize_batch` reports rather than the sampler
/// in isolation (the unit-level marginal/variance tests live in
/// `ldp_core::fo::batch`).
#[test]
fn geometric_skip_batch_reports_match_channel() {
    let d = 32u64;
    let oracle = OptimizedUnaryEncoding::new(d, Epsilon::new(1.0).expect("eps")).expect("domain");
    let (p, q) = oracle.probabilities();
    let n = 40_000usize;
    let value = 11u64;
    let values = vec![value; n];
    let mut rng = StdRng::seed_from_u64(2024);
    let mut counts = vec![0u64; d as usize];
    oracle.randomize_batch(&values, &mut rng, |r| {
        for i in r.ones() {
            counts[i] += 1;
        }
    });
    let sd_p = (p * (1.0 - p) / n as f64).sqrt();
    let sd_q = (q * (1.0 - q) / n as f64).sqrt();
    for (i, &c) in counts.iter().enumerate() {
        let rate = c as f64 / n as f64;
        let (expected, sd) = if i as u64 == value {
            (p, sd_p)
        } else {
            (q, sd_q)
        };
        assert!(
            (rate - expected).abs() < 5.0 * sd,
            "bit {i}: rate={rate} expected={expected}"
        );
    }
}
