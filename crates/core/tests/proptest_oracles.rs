//! Property-based tests over the frequency-oracle family: for arbitrary
//! (ε, d, value) configurations, every mechanism must produce in-domain
//! reports, finite unbiased estimates, and internally consistent
//! channel probabilities.

use ldp_core::fo::{
    DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse, OptimizedLocalHashing,
    OptimizedUnaryEncoding, SubsetSelection, SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::Epsilon;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps_strategy() -> impl Strategy<Value = f64> {
    0.2f64..5.0
}

fn check_roundtrip<O: FrequencyOracle>(oracle: &O, value: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agg = oracle.new_aggregator();
    for _ in 0..200 {
        let report = oracle.randomize(value, &mut rng);
        agg.accumulate(&report);
    }
    assert_eq!(agg.reports(), 200);
    let est = agg.estimate();
    assert_eq!(est.len(), oracle.domain_size() as usize);
    for (i, &e) in est.iter().enumerate() {
        assert!(
            e.is_finite(),
            "{} item {i} estimate not finite",
            oracle.name()
        );
    }
    // The true item's estimate should rank near the top, given all 200
    // reports carry it — checked loosely (top half, min 8) so rare noise
    // draws at small epsilon/large d don't flake.
    let mut order: Vec<usize> = (0..est.len()).collect();
    order.sort_by(|&a, &b| est[b].total_cmp(&est[a]));
    let rank = order
        .iter()
        .position(|&i| i as u64 == value)
        .expect("value present");
    if oracle.epsilon().value() >= 1.0 {
        let bound = (est.len() / 2).max(8).min(est.len());
        assert!(
            rank < bound,
            "{}: true value ranked {rank} of {}",
            oracle.name(),
            est.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grr_roundtrip(e in eps_strategy(), d in 2u64..64, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = DirectEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn sue_roundtrip(e in eps_strategy(), d in 2u64..48, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = SymmetricUnaryEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn oue_roundtrip(e in eps_strategy(), d in 2u64..48, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = OptimizedUnaryEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn the_roundtrip(e in eps_strategy(), d in 2u64..48, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = ThresholdHistogramEncoding::new(d, Epsilon::new(e).expect("eps")).expect("domain");
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn olh_roundtrip(e in eps_strategy(), d in 2u64..64, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = OptimizedLocalHashing::new(d, Epsilon::new(e).expect("eps"));
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn hr_roundtrip(e in eps_strategy(), d in 2u64..64, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = HadamardResponse::new(d, Epsilon::new(e).expect("eps"));
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn ss_roundtrip(e in eps_strategy(), d in 2u64..48, seed in 0u64..1000) {
        let value = seed % d;
        let oracle = SubsetSelection::new(d, Epsilon::new(e).expect("eps"));
        check_roundtrip(&oracle, value, seed);
    }

    #[test]
    fn variance_formulas_positive_and_monotone_in_n(
        e in eps_strategy(), d in 2u64..256, f in 0.0f64..1.0
    ) {
        let eps = Epsilon::new(e).expect("eps");
        macro_rules! check {
            ($o:expr) => {{
                let o = $o;
                let v1 = o.count_variance(1_000, f);
                let v2 = o.count_variance(10_000, f);
                prop_assert!(v1.is_finite() && v1 >= 0.0, "{} var negative", o.name());
                prop_assert!(v2 > v1, "{} count variance must grow with n", o.name());
            }};
        }
        check!(DirectEncoding::new(d, eps).expect("domain"));
        check!(OptimizedUnaryEncoding::new(d, eps).expect("domain"));
        check!(OptimizedLocalHashing::new(d, eps));
        check!(HadamardResponse::new(d, eps));
        check!(SubsetSelection::new(d, eps));
    }

    #[test]
    fn more_privacy_means_more_variance(d in 4u64..128) {
        // Noise floor must be monotone decreasing in epsilon.
        let lo = Epsilon::new(0.5).expect("eps");
        let hi = Epsilon::new(2.0).expect("eps");
        macro_rules! check {
            ($ctor:expr) => {{
                let f = $ctor;
                let v_lo = f(lo).noise_floor_variance(1000);
                let v_hi = f(hi).noise_floor_variance(1000);
                prop_assert!(v_lo > v_hi, "weaker privacy should not raise variance");
            }};
        }
        check!(|e| DirectEncoding::new(d, e).expect("domain"));
        check!(|e| OptimizedUnaryEncoding::new(d, e).expect("domain"));
        check!(|e| OptimizedLocalHashing::new(d, e));
        check!(|e| HadamardResponse::new(d, e));
    }
}
