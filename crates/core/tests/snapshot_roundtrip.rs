//! The snapshot contract for every core oracle's aggregator:
//! `merge(restore(snapshot(a)), b) == merge(a, b)` bit for bit, and
//! decoding never panics on truncated, corrupted, wrong-version, or
//! wrong-tag BLOBs — every failure is a typed `LdpError` and a failed
//! restore leaves the aggregator unchanged.

use ldp_core::fo::{
    BinaryLocalHashing, CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle,
    HadamardResponse, OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection,
    SummationHistogramEncoding, SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::snapshot::{restore_from, snapshot_vec, SNAPSHOT_VERSION};
use ldp_core::{Epsilon, LdpError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Accumulates `n` randomized reports of a skewed population into a
/// fresh aggregator.
fn filled<O: FrequencyOracle>(oracle: &O, n: usize, rng: &mut StdRng) -> O::Aggregator {
    let d = oracle.domain_size();
    let mut agg = oracle.new_aggregator();
    for i in 0..n {
        let v = (i as u64 * i as u64) % d;
        let r = oracle.randomize(v, rng);
        agg.accumulate(&r);
    }
    agg
}

/// The tentpole invariant plus the adversarial-decode contract for one
/// oracle.
fn check_snapshot_contract<O>(oracle: &O, n_a: usize, n_b: usize, seed: u64)
where
    O: FrequencyOracle,
    O::Aggregator: Clone,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let a = filled(oracle, n_a, &mut rng);
    let b = filled(oracle, n_b, &mut rng);

    // Round trip is lossless: the restored state re-serializes to the
    // same bytes.
    let blob = snapshot_vec(&a);
    let mut restored = oracle.new_aggregator();
    restore_from(&mut restored, &blob).expect("well-formed snapshot restores");
    assert_eq!(snapshot_vec(&restored), blob, "restore is lossless");

    // merge(restore(snapshot(a)), b) == merge(a, b), down to the bits of
    // both the state BLOB and every estimate.
    let mut via_bytes = restored;
    via_bytes.merge(b.clone());
    let mut in_process = a;
    in_process.merge(b);
    assert_eq!(
        snapshot_vec(&via_bytes),
        snapshot_vec(&in_process),
        "merged state must be bit-identical"
    );
    assert_eq!(via_bytes.reports(), in_process.reports());
    for (x, y) in via_bytes
        .estimate()
        .iter()
        .zip(in_process.estimate().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "estimates must be bit-identical");
    }

    check_adversarial(oracle, &blob);
}

/// Truncations, bad version, wrong tag: always a typed error. Arbitrary
/// single-byte corruption: a typed error or a valid alternative state —
/// never a panic.
fn check_adversarial<O: FrequencyOracle>(oracle: &O, blob: &[u8]) {
    let mut agg = oracle.new_aggregator();
    for cut in 0..blob.len() {
        assert!(
            restore_from(&mut agg, &blob[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }

    let mut bad = blob.to_vec();
    bad[0] = SNAPSHOT_VERSION.wrapping_add(1);
    assert!(matches!(
        restore_from(&mut agg, &bad),
        Err(LdpError::VersionMismatch { .. })
    ));

    let mut bad = blob.to_vec();
    bad[1] = 0xEE; // unassigned tag
    assert!(matches!(
        restore_from(&mut agg, &bad),
        Err(LdpError::ReportTypeMismatch { .. })
    ));

    for i in 0..blob.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = blob.to_vec();
            bad[i] ^= flip;
            let _ = restore_from(&mut agg, &bad); // must not panic
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn grr_snapshot_contract(seed in any::<u64>(), d in 2u64..24) {
        let oracle = DirectEncoding::new(d, eps(1.0)).unwrap();
        check_snapshot_contract(&oracle, 300, 200, seed);
    }

    #[test]
    fn sue_snapshot_contract(seed in any::<u64>(), d in 2u64..24) {
        let oracle = SymmetricUnaryEncoding::new(d, eps(1.0)).unwrap();
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn oue_snapshot_contract(seed in any::<u64>(), d in 2u64..24) {
        let oracle = OptimizedUnaryEncoding::new(d, eps(1.0)).unwrap();
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn she_snapshot_contract(seed in any::<u64>(), d in 2u64..16) {
        let oracle = SummationHistogramEncoding::new(d, eps(1.0)).unwrap();
        check_snapshot_contract(&oracle, 120, 80, seed);
    }

    #[test]
    fn the_snapshot_contract(seed in any::<u64>(), d in 2u64..16) {
        let oracle = ThresholdHistogramEncoding::new(d, eps(1.0)).unwrap();
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn blh_snapshot_contract(seed in any::<u64>(), d in 2u64..64) {
        let oracle = BinaryLocalHashing::new(d, eps(1.0));
        check_snapshot_contract(&oracle, 150, 100, seed);
    }

    #[test]
    fn olh_snapshot_contract(seed in any::<u64>(), d in 2u64..64) {
        let oracle = OptimizedLocalHashing::new(d, eps(1.0));
        check_snapshot_contract(&oracle, 150, 100, seed);
    }

    #[test]
    fn olhc_snapshot_contract(seed in any::<u64>(), d in 2u64..64, cohorts in 2u32..32) {
        let oracle = CohortLocalHashing::optimized(d, cohorts, eps(1.0));
        check_snapshot_contract(&oracle, 300, 200, seed);
    }

    #[test]
    fn hr_snapshot_contract(seed in any::<u64>(), d in 2u64..24) {
        let oracle = HadamardResponse::new(d, eps(1.0));
        check_snapshot_contract(&oracle, 300, 200, seed);
    }

    #[test]
    fn ss_snapshot_contract(seed in any::<u64>(), d in 4u64..32) {
        let oracle = SubsetSelection::new(d, eps(1.0));
        check_snapshot_contract(&oracle, 200, 150, seed);
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_restore(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        // Pure fuzz across every state layout.
        let mut g = DirectEncoding::new(8, eps(1.0)).unwrap().new_aggregator();
        let _ = restore_from(&mut g, &bytes);
        let mut u = OptimizedUnaryEncoding::new(8, eps(1.0)).unwrap().new_aggregator();
        let _ = restore_from(&mut u, &bytes);
        let mut s = SummationHistogramEncoding::new(8, eps(1.0)).unwrap().new_aggregator();
        let _ = restore_from(&mut s, &bytes);
        let mut t = ThresholdHistogramEncoding::new(8, eps(1.0)).unwrap().new_aggregator();
        let _ = restore_from(&mut t, &bytes);
        let mut l = OptimizedLocalHashing::new(8, eps(1.0)).new_aggregator();
        let _ = restore_from(&mut l, &bytes);
        let mut c = CohortLocalHashing::optimized(8, 4, eps(1.0)).new_aggregator();
        let _ = restore_from(&mut c, &bytes);
        let mut h = HadamardResponse::new(8, eps(1.0)).new_aggregator();
        let _ = restore_from(&mut h, &bytes);
        let mut ss = SubsetSelection::new(8, eps(1.0)).new_aggregator();
        let _ = restore_from(&mut ss, &bytes);
    }
}

/// A snapshot taken under one configuration must not restore into an
/// aggregator built under another — shape, channel, or seed base.
#[test]
fn cross_configuration_snapshots_are_rejected() {
    let mut rng = StdRng::seed_from_u64(11);

    let a16 = filled(&DirectEncoding::new(16, eps(1.0)).unwrap(), 100, &mut rng);
    let blob = snapshot_vec(&a16);
    let mut d8 = DirectEncoding::new(8, eps(1.0)).unwrap().new_aggregator();
    assert!(matches!(
        restore_from(&mut d8, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut other_eps = DirectEncoding::new(16, eps(2.0)).unwrap().new_aggregator();
    assert!(matches!(
        restore_from(&mut other_eps, &blob),
        Err(LdpError::StateMismatch(_))
    ));

    // SUE and OUE share the unary state tag but differ in channel.
    let sue = filled(
        &SymmetricUnaryEncoding::new(16, eps(1.0)).unwrap(),
        100,
        &mut rng,
    );
    let mut oue = OptimizedUnaryEncoding::new(16, eps(1.0))
        .unwrap()
        .new_aggregator();
    assert!(matches!(
        restore_from(&mut oue, &snapshot_vec(&sue)),
        Err(LdpError::StateMismatch(_))
    ));

    // OLH-C under a different public seed base.
    let olhc = filled(
        &CohortLocalHashing::optimized_with_seed(32, 8, 1, eps(1.0)),
        100,
        &mut rng,
    );
    let mut other_seed =
        CohortLocalHashing::optimized_with_seed(32, 8, 2, eps(1.0)).new_aggregator();
    assert!(matches!(
        restore_from(&mut other_seed, &snapshot_vec(&olhc)),
        Err(LdpError::StateMismatch(_))
    ));
}

/// A cross-tag restore is a tag error even between aggregators whose
/// payloads happen to share a layout (THE vs unary counters).
#[test]
fn wrong_kind_tag_is_rejected_before_payload_parsing() {
    let mut rng = StdRng::seed_from_u64(5);
    let the = filled(
        &ThresholdHistogramEncoding::new(8, eps(1.0)).unwrap(),
        50,
        &mut rng,
    );
    let mut sue = SymmetricUnaryEncoding::new(8, eps(1.0))
        .unwrap()
        .new_aggregator();
    assert!(matches!(
        restore_from(&mut sue, &snapshot_vec(&the)),
        Err(LdpError::ReportTypeMismatch { .. })
    ));
}
