//! Count-based sketches: Count-Min, Count Sketch, and the Count-Mean Sketch
//! used by Apple's deployment.
//!
//! Apple's system ("Learning with Privacy at Scale", 2017) must estimate
//! frequencies over domains of size 2^20+ (all possible words/emoji) while
//! each device transmits only a few hundred privatized bits. The key insight
//! the tutorial teaches: a sketch reduces the *dimensionality* of the domain
//! before privatization, trading a small, analyzable collision bias for a
//! massive reduction in communication and server state.
//!
//! Three sketches are provided:
//! * [`CountMinSketch`] — classic overestimate-only sketch (`min` of rows).
//! * [`CountSketch`] — signed sketch (median of rows), unbiased.
//! * [`CountMeanSketch`] — Apple's variant: mean of rows with a collision
//!   debiasing correction `(est·k − n) · m/(m−1)`-style; unbiased under
//!   pairwise-independent hashing and the right normalization.
//!
//! These are *non-private* substrates; `ldp-apple` layers privatization on
//! the client-side one-hot rows before they reach the sketch.

use crate::hash::PairwiseHash;

/// Classic Count-Min sketch: `k` rows of `m` counters, point queries return
/// the minimum across rows (always an overestimate).
///
/// # Examples
/// ```
/// use ldp_sketch::CountMinSketch;
/// let mut s = CountMinSketch::new(4, 256, 42);
/// for _ in 0..10 { s.insert(7); }
/// s.insert(8);
/// assert!(s.estimate(7) >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    width: usize,
    counters: Vec<u64>,
    hashes: Vec<PairwiseHash>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a `rows × width` sketch with hash functions derived from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `width == 0`.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0 && width > 0, "sketch dimensions must be positive");
        let hashes = (0..rows)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    width as u64,
                )
            })
            .collect();
        Self {
            rows,
            width,
            counters: vec![0; rows * width],
            hashes,
            total: 0,
        }
    }

    /// Adds one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.insert_weighted(item, 1);
    }

    /// Adds `weight` occurrences of `item`.
    pub fn insert_weighted(&mut self, item: u64, weight: u64) {
        for r in 0..self.rows {
            let c = self.hashes[r].hash(item) as usize;
            self.counters[r * self.width + c] += weight;
        }
        self.total += weight;
    }

    /// Point query: an overestimate of `item`'s true count, with error at
    /// most `2·total/width` with probability `1 − 2^{-rows}`.
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.rows)
            .map(|r| {
                let c = self.hashes[r].hash(item) as usize;
                self.counters[r * self.width + c]
            })
            .min()
            .expect("rows > 0")
    }

    /// Total weight inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// (rows, width).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.width)
    }
}

/// Count Sketch (Charikar–Chen–Farach-Colton): signed counters, median
/// estimate; unbiased with variance `‖f‖₂²/width` per row.
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    width: usize,
    counters: Vec<i64>,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<PairwiseHash>,
}

impl CountSketch {
    /// Creates a `rows × width` Count Sketch seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `width == 0`.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0 && width > 0, "sketch dimensions must be positive");
        let bucket_hashes = (0..rows)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(2 * r as u64 + 1)
                        .wrapping_mul(0xd134_2543_de82_ef95),
                    width as u64,
                )
            })
            .collect();
        let sign_hashes = (0..rows)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(2 * r as u64)
                        .wrapping_mul(0xaf25_1af3_b0f0_25b5),
                    2,
                )
            })
            .collect();
        Self {
            rows,
            width,
            counters: vec![0; rows * width],
            bucket_hashes,
            sign_hashes,
        }
    }

    #[inline]
    fn sign(&self, row: usize, item: u64) -> i64 {
        if self.sign_hashes[row].hash(item) == 0 {
            -1
        } else {
            1
        }
    }

    /// Adds `weight` (possibly negative) occurrences of `item`.
    pub fn insert_weighted(&mut self, item: u64, weight: i64) {
        for r in 0..self.rows {
            let c = self.bucket_hashes[r].hash(item) as usize;
            self.counters[r * self.width + c] += self.sign(r, item) * weight;
        }
    }

    /// Adds one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.insert_weighted(item, 1);
    }

    /// Point query: median across rows of `sign·counter`. Unbiased.
    pub fn estimate(&self, item: u64) -> i64 {
        let mut ests: Vec<i64> = (0..self.rows)
            .map(|r| {
                let c = self.bucket_hashes[r].hash(item) as usize;
                self.sign(r, item) * self.counters[r * self.width + c]
            })
            .collect();
        ests.sort_unstable();
        let n = ests.len();
        if n % 2 == 1 {
            ests[n / 2]
        } else {
            (ests[n / 2 - 1] + ests[n / 2]) / 2
        }
    }

    /// (rows, width).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.width)
    }
}

/// Apple's Count-Mean Sketch: `k` rows × `m` counters; a point query
/// averages the debiased row estimates
/// `m/(m−1) · (counter − total_row/m)` across rows.
///
/// Unlike Count-Min, the estimate is **unbiased**: hash collisions add
/// `total/m` in expectation to every counter, and the debiasing step
/// subtracts exactly that. Apple chose mean-with-debias over min because
/// the privatized rows it aggregates contain *negative* contributions after
/// LDP debiasing, which breaks Count-Min's monotonicity assumption.
///
/// This struct accepts *real-valued* updates so that `ldp-apple` can feed
/// debiased (fractional, possibly negative) client contributions into it.
#[derive(Debug, Clone)]
pub struct CountMeanSketch {
    rows: usize,
    width: usize,
    counters: Vec<f64>,
    row_totals: Vec<f64>,
    hashes: Vec<PairwiseHash>,
}

impl CountMeanSketch {
    /// Creates a `rows × width` Count-Mean sketch seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `width < 2` (the `m/(m−1)` debias needs
    /// `m ≥ 2`).
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0, "rows must be positive");
        assert!(width >= 2, "width must be at least 2 for debiasing");
        let hashes = (0..rows)
            .map(|r| {
                PairwiseHash::from_seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x2545_f491_4f6c_dd1d),
                    width as u64,
                )
            })
            .collect();
        Self {
            rows,
            width,
            counters: vec![0.0; rows * width],
            row_totals: vec![0.0; rows],
            hashes,
        }
    }

    /// The row/bucket an item occupies in row `row` — exposed so clients can
    /// build their one-hot encoding against the same hash functions.
    #[inline]
    pub fn bucket(&self, row: usize, item: u64) -> usize {
        self.hashes[row].hash(item) as usize
    }

    /// Adds `weight` to `item`'s bucket in every row (exact insertion).
    pub fn insert_weighted(&mut self, item: u64, weight: f64) {
        for r in 0..self.rows {
            let c = self.bucket(r, item);
            self.counters[r * self.width + c] += weight;
            self.row_totals[r] += weight;
        }
    }

    /// Adds a raw contribution `weight` into `(row, bucket)` — the path used
    /// when aggregating privatized client vectors, where each client touches
    /// exactly one (sampled) row.
    pub fn add_to_bucket(&mut self, row: usize, bucket: usize, weight: f64) {
        assert!(row < self.rows && bucket < self.width, "index out of range");
        self.counters[row * self.width + bucket] += weight;
        self.row_totals[row] += weight;
    }

    /// Point query: mean over rows of the collision-debiased counters.
    pub fn estimate(&self, item: u64) -> f64 {
        let m = self.width as f64;
        let sum: f64 = (0..self.rows)
            .map(|r| {
                let c = self.counters[r * self.width + self.bucket(r, item)];
                (m / (m - 1.0)) * (c - self.row_totals[r] / m)
            })
            .sum();
        sum / self.rows as f64
    }

    /// (rows, width).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.width)
    }

    /// Total weight in row `row`.
    pub fn row_total(&self, row: usize) -> f64 {
        self.row_totals[row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn count_min_never_underestimates() {
        let mut s = CountMinSketch::new(4, 64, 1);
        let mut truth = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5000 {
            let item = rng.gen_range(0u64..500);
            s.insert(item);
            *truth.entry(item).or_insert(0u64) += 1;
        }
        for (&item, &count) in &truth {
            assert!(s.estimate(item) >= count, "underestimate for {item}");
        }
    }

    #[test]
    fn count_min_error_within_bound() {
        let mut s = CountMinSketch::new(5, 272, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut truth = vec![0u64; 1000];
        for _ in 0..50_000 {
            let item = rng.gen_range(0u64..1000);
            s.insert(item);
            truth[item as usize] += 1;
        }
        // eps = e/width ≈ 0.01; error <= eps * total w.h.p.
        let bound = (std::f64::consts::E / 272.0 * 50_000.0) as u64 + 1;
        let violations = (0..1000u64)
            .filter(|&i| s.estimate(i) - truth[i as usize] > bound)
            .count();
        assert!(violations < 10, "violations={violations}");
    }

    #[test]
    fn count_sketch_unbiased_on_average() {
        // Average estimate over many seeds should approach the true count.
        let mut total = 0.0;
        let trials = 60;
        for seed in 0..trials {
            let mut s = CountSketch::new(1, 32, seed);
            for item in 0..200u64 {
                s.insert_weighted(item, 5);
            }
            total += s.estimate(0) as f64;
        }
        let avg = total / trials as f64;
        assert!((avg - 5.0).abs() < 4.0, "avg={avg}");
    }

    #[test]
    fn count_sketch_median_tracks_heavy_item() {
        let mut s = CountSketch::new(7, 128, 9);
        s.insert_weighted(42, 1000);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            s.insert(rng.gen_range(100u64..10_000));
        }
        let est = s.estimate(42);
        assert!((est - 1000).abs() < 200, "est={est}");
    }

    #[test]
    fn count_mean_exact_when_no_collisions() {
        // width much larger than #items -> collisions negligible.
        let mut s = CountMeanSketch::new(4, 4096, 2);
        s.insert_weighted(1, 100.0);
        s.insert_weighted(2, 50.0);
        let e1 = s.estimate(1);
        let e2 = s.estimate(2);
        assert!((e1 - 100.0).abs() < 1.0, "e1={e1}");
        assert!((e2 - 50.0).abs() < 1.0, "e2={e2}");
        // Absent item estimates near zero.
        assert!(s.estimate(999).abs() < 1.0);
    }

    #[test]
    fn count_mean_debias_kills_uniform_background() {
        // Uniform background over many items inflates all buckets equally;
        // debiasing should cancel it.
        let mut s = CountMeanSketch::new(4, 64, 8);
        for item in 0..6400u64 {
            s.insert_weighted(item, 1.0);
        }
        s.insert_weighted(3, 500.0);
        let est = s.estimate(3);
        // True count of item 3 is 501; background adds ~100/bucket pre-debias.
        assert!((est - 501.0).abs() < 120.0, "est={est}");
    }

    #[test]
    fn add_to_bucket_matches_insert_for_single_row() {
        let mut a = CountMeanSketch::new(1, 16, 4);
        let mut b = CountMeanSketch::new(1, 16, 4);
        a.insert_weighted(5, 2.0);
        let bucket = b.bucket(0, 5);
        b.add_to_bucket(0, bucket, 2.0);
        assert_eq!(a.estimate(5), b.estimate(5));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_width_panics() {
        CountMinSketch::new(2, 0, 0);
    }
}
