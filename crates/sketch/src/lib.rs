//! # `ldp-sketch` — sketching substrate for local differential privacy
//!
//! Every deployed LDP system surveyed by the SIGMOD 2018 tutorial
//! *"Privacy at Scale: Local Differential Privacy in Practice"* leans on a
//! compact-summary substrate:
//!
//! * **Google RAPPOR** encodes strings into [Bloom filters](bloom) before
//!   perturbation, and decodes aggregated filters with [regression](linalg).
//! * **Apple's implementation** sketches a massive domain into a
//!   [Count-Mean Sketch](cms) and spreads signal with the
//!   [Walsh–Hadamard transform](hadamard).
//! * **Frequency oracles** (OLH/BLH) need cheap [universal hashing](hash).
//!
//! This crate provides those substrates as standalone, dependency-light,
//! deterministic building blocks. Nothing in here adds privacy noise — the
//! privacy layer lives in `ldp-core` and the per-system crates; this crate
//! is the data-structure layer underneath them.
//!
//! All structures are designed for the aggregation hot path: no per-report
//! allocation, pre-sized buffers, and `#[inline]` bit/hash helpers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitvec;
pub mod bloom;
pub mod cms;
pub mod hadamard;
pub mod hash;
pub mod linalg;

pub use bitvec::BitVec;
pub use bloom::BloomFilter;
pub use cms::{CountMeanSketch, CountMinSketch, CountSketch};
pub use hadamard::{
    fwht, fwht_normalized, fwht_reference, hadamard_entry, try_fwht, FwhtSizeError,
};
pub use hash::{FastHasher, HashFamily, PairwiseHash};
pub use linalg::{lasso, lasso_sparse, least_squares, Matrix, SparseColMatrix};
