//! Bloom filters, the string-encoding substrate of Google RAPPOR.
//!
//! RAPPOR ([Erlingsson, Pihur, Korolova, CCS 2014]) never transmits a string:
//! each client hashes its value into a small Bloom filter with `h` hash
//! functions, then perturbs the *bits* of the filter. The aggregator decodes
//! candidate strings by regressing observed bit frequencies against each
//! candidate's filter signature. Cohorts (disjoint hash-function groups)
//! break cross-candidate collisions: a string that collides with another in
//! one cohort almost surely does not in the rest.
//!
//! The filter here is deliberately minimal and *deterministic given
//! (cohort, size, hashes)* so client and server derive identical signatures.

use crate::bitvec::BitVec;
use crate::hash::{hash_bytes64, HashFamily};

/// A Bloom filter over byte strings with cohort-indexed hash functions.
///
/// Two filters constructed with the same `(bits, hashes, cohort)` use the
/// same hash functions, which is exactly what RAPPOR's decoder requires to
/// recompute candidate signatures server-side.
///
/// # Examples
/// ```
/// use ldp_sketch::BloomFilter;
/// let mut f = BloomFilter::new(64, 2, /*cohort=*/ 7);
/// f.insert(b"example.com");
/// assert!(f.contains(b"example.com"));
/// // Signature-compatible with a server-side reconstruction:
/// let sig = BloomFilter::signature(64, 2, 7, b"example.com");
/// assert!(sig.ones().all(|i| f.bits().get(i)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: u32,
    cohort: u32,
    family: HashFamily,
}

impl BloomFilter {
    /// Creates an empty filter of `bits` bits using `hashes` hash functions,
    /// drawn from the hash group of `cohort`.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `hashes == 0`.
    pub fn new(bits: usize, hashes: u32, cohort: u32) -> Self {
        assert!(bits > 0, "bloom filter must have at least one bit");
        assert!(hashes > 0, "bloom filter must use at least one hash");
        Self {
            bits: BitVec::zeros(bits),
            hashes,
            cohort,
            family: HashFamily::new(bits as u64),
        }
    }

    /// The bit positions that `value` sets in a `(bits, hashes, cohort)`
    /// filter — the candidate's *signature* used by the RAPPOR decoder.
    ///
    /// Positions are returned as a `BitVec` of length `bits`. Note that
    /// distinct hash functions may collide on a position, so the signature
    /// may have fewer than `hashes` set bits (the decoder must use the set,
    /// not the multiset, which this representation enforces).
    pub fn signature(bits: usize, hashes: u32, cohort: u32, value: &[u8]) -> BitVec {
        let family = HashFamily::new(bits as u64);
        let key = hash_bytes64(value);
        let mut sig = BitVec::zeros(bits);
        for h in 0..hashes {
            let seed = seed_for(cohort, h);
            sig.set(family.hash(key, seed) as usize, true);
        }
        sig
    }

    /// Inserts a byte string.
    pub fn insert(&mut self, value: &[u8]) {
        let key = hash_bytes64(value);
        for h in 0..self.hashes {
            let seed = seed_for(self.cohort, h);
            let pos = self.family.hash(key, seed) as usize;
            self.bits.set(pos, true);
        }
    }

    /// Membership test: false means definitely absent; true means probably
    /// present (standard Bloom filter false-positive semantics).
    pub fn contains(&self, value: &[u8]) -> bool {
        let key = hash_bytes64(value);
        (0..self.hashes).all(|h| {
            let seed = seed_for(self.cohort, h);
            self.bits.get(self.family.hash(key, seed) as usize)
        })
    }

    /// The underlying bits (what a RAPPOR client perturbs and transmits).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Consumes the filter, returning its bits.
    pub fn into_bits(self) -> BitVec {
        self.bits
    }

    /// Filter width in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the filter has zero width (never constructible; for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Cohort index.
    pub fn cohort(&self) -> u32 {
        self.cohort
    }

    /// Theoretical false-positive probability after `n` insertions:
    /// `(1 - e^{-hn/m})^h`.
    pub fn false_positive_rate(&self, n: usize) -> f64 {
        let m = self.len() as f64;
        let h = self.hashes as f64;
        (1.0 - (-h * n as f64 / m).exp()).powf(h)
    }
}

/// Derives the per-(cohort, hash-index) seed. Mixing the cohort in means
/// each cohort uses an effectively independent hash family, the property
/// RAPPOR relies on to break collisions across cohorts.
#[inline]
fn seed_for(cohort: u32, hash_index: u32) -> u64 {
    ((cohort as u64) << 32) | hash_index as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inserted_values_are_contained() {
        let mut f = BloomFilter::new(256, 2, 0);
        let values: Vec<String> = (0..50).map(|i| format!("url-{i}.example")).collect();
        for v in &values {
            f.insert(v.as_bytes());
        }
        for v in &values {
            assert!(f.contains(v.as_bytes()), "{v} missing");
        }
    }

    #[test]
    fn absent_values_mostly_absent() {
        let mut f = BloomFilter::new(1024, 2, 0);
        for i in 0..50 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..1000)
            .filter(|i| f.contains(format!("absent-{i}").as_bytes()))
            .count();
        // fp rate bound at ~ (1 - e^{-2*50/1024})^2 ≈ 0.0086; allow slack.
        assert!(fp < 40, "false positives: {fp}");
    }

    #[test]
    fn signature_matches_insert() {
        let sig = BloomFilter::signature(128, 4, 3, b"hello");
        let mut f = BloomFilter::new(128, 4, 3);
        f.insert(b"hello");
        assert_eq!(&sig, f.bits());
    }

    #[test]
    fn cohorts_use_different_functions() {
        let a = BloomFilter::signature(256, 2, 0, b"collision-test");
        let b = BloomFilter::signature(256, 2, 1, b"collision-test");
        assert_ne!(a, b, "distinct cohorts should map differently");
    }

    #[test]
    fn signature_has_at_most_h_bits() {
        for cohort in 0..8 {
            let sig = BloomFilter::signature(64, 3, cohort, b"xyz");
            let ones = sig.count_ones();
            assert!((1..=3).contains(&ones), "ones={ones}");
        }
    }

    #[test]
    fn fp_rate_monotone_in_n() {
        let f = BloomFilter::new(128, 2, 0);
        assert!(f.false_positive_rate(10) < f.false_positive_rate(100));
        assert!(f.false_positive_rate(0) == 0.0);
    }

    proptest! {
        #[test]
        fn prop_no_false_negatives(values in proptest::collection::vec(".{1,20}", 1..40)) {
            let mut f = BloomFilter::new(512, 2, 1);
            for v in &values {
                f.insert(v.as_bytes());
            }
            for v in &values {
                prop_assert!(f.contains(v.as_bytes()));
            }
        }

        #[test]
        fn prop_signature_deterministic(value in ".{0,32}", cohort in 0u32..64) {
            let a = BloomFilter::signature(128, 2, cohort, value.as_bytes());
            let b = BloomFilter::signature(128, 2, cohort, value.as_bytes());
            prop_assert_eq!(a, b);
        }
    }
}
