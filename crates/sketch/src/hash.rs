//! Hashing substrate: fast non-cryptographic mixing, seeded hash families,
//! and pairwise-independent hashing.
//!
//! LDP protocols use hashing in two distinct roles, and conflating them is a
//! classic implementation bug:
//!
//! 1. **Protocol hashing** (OLH, Bloom filters, sketches): needs a *family*
//!    of hash functions indexed by a public seed, with good uniformity. The
//!    seed is part of each user's report, so the family must be cheap to
//!    instantiate per user. [`HashFamily`] serves this role.
//! 2. **Analytical hashing** (pairwise-independent guarantees for sketch
//!    error bounds): Count-Min/Count-Sketch error analysis assumes 2-wise
//!    independence. [`PairwiseHash`] implements the classic
//!    multiply-shift construction over a 61-bit Mersenne prime, which is
//!    provably 2-universal.
//!
//! [`FastHasher`] is an FxHash-style `std::hash::Hasher` for internal hash
//! maps where HashDoS resistance is irrelevant (the perf-book guidance for
//! integer-keyed maps on hot paths).

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit finalizer from SplitMix64 / MurmurHash3's `fmix64`.
///
/// A full-avalanche bijection on `u64`: every input bit affects every output
/// bit with probability ≈ 1/2. Used as the mixing core of [`HashFamily`].
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// SplitMix64 step: advances a state and returns a mixed output.
///
/// Used to derive independent per-seed constants for [`HashFamily`] and
/// [`PairwiseHash`] without a `rand` dependency on the hot path.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded family of hash functions `h_seed : u64 -> [0, range)`.
///
/// This is the workhorse for OLH (each user draws a random `seed`, reports
/// `(seed, perturbed h_seed(v))`), Bloom filters (k indexed functions), and
/// sketch rows. Functions with different seeds behave as independent random
/// functions for all practical purposes (full-avalanche mixing of
/// `seed ⊕ rotated value`).
///
/// # Examples
/// ```
/// use ldp_sketch::hash::HashFamily;
/// let fam = HashFamily::new(16);
/// let a = fam.hash(42, 7);
/// assert!(a < 16);
/// // Deterministic: same (value, seed) -> same bucket.
/// assert_eq!(a, HashFamily::new(16).hash(42, 7));
/// // Different seeds give (almost surely) different mappings.
/// assert_ne!(
///     (0..64).map(|v| fam.hash(v, 1)).collect::<Vec<_>>(),
///     (0..64).map(|v| fam.hash(v, 2)).collect::<Vec<_>>(),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFamily {
    range: u64,
}

impl HashFamily {
    /// Creates a family whose functions map into `[0, range)`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn new(range: u64) -> Self {
        assert!(range > 0, "hash range must be positive");
        Self { range }
    }

    /// The output range of every function in the family.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Hashes `value` with the function indexed by `seed`.
    #[inline]
    pub fn hash(&self, value: u64, seed: u64) -> u64 {
        // Mix seed and value asymmetrically so hash(v, s) != hash(s, v).
        let mixed = mix64(value ^ seed.rotate_left(32) ^ 0x51_7c_c1_b7_27_22_0a_95);
        // Multiply-shift range reduction (Lemire): unbiased enough for
        // protocol use and far faster than `%`.
        (((mixed as u128) * (self.range as u128)) >> 64) as u64
    }

    /// Hashes a byte string with the function indexed by `seed`.
    ///
    /// Strings are first compressed to 64 bits with an FNV-1a/mix pipeline;
    /// the compression is common to all seeds, which is fine for protocol
    /// use where the adversary is nature, not a collision attacker.
    #[inline]
    pub fn hash_bytes(&self, bytes: &[u8], seed: u64) -> u64 {
        self.hash(hash_bytes64(bytes), seed)
    }
}

/// Compresses a byte string to a well-mixed `u64` (FNV-1a core + `mix64`
/// finalizer). Deterministic across runs and platforms.
#[inline]
pub fn hash_bytes64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    mix64(h ^ (bytes.len() as u64).rotate_left(17))
}

/// A 2-universal (pairwise-independent) hash function
/// `h(x) = ((a·x + b) mod p) mod range` with `p = 2^61 - 1`.
///
/// Count-Min and Count-Sketch error bounds require pairwise independence;
/// this is the textbook construction over the Mersenne prime `2^61 − 1`,
/// which permits a fast modular reduction without division.
///
/// # Examples
/// ```
/// use ldp_sketch::hash::PairwiseHash;
/// let h = PairwiseHash::from_seed(3, 1024);
/// assert!(h.hash(999) < 1024);
/// assert_eq!(h.hash(999), PairwiseHash::from_seed(3, 1024).hash(999));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

/// The Mersenne prime 2^61 − 1 used by [`PairwiseHash`].
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Reduces `x` modulo 2^61 − 1 using the Mersenne identity
/// `x mod (2^61-1) = (x >> 61) + (x & (2^61-1))` (with one correction step).
#[inline]
fn mod_mersenne61(x: u128) -> u64 {
    let lo = (x as u64) & MERSENNE_61;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi & MERSENNE_61).wrapping_add(hi >> 61);
    while r >= MERSENNE_61 {
        r -= MERSENNE_61;
    }
    r
}

impl PairwiseHash {
    /// Creates a pairwise-independent function from explicit coefficients.
    ///
    /// `a` is clamped into `[1, p)` and `b` into `[0, p)`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn new(a: u64, b: u64, range: u64) -> Self {
        assert!(range > 0, "hash range must be positive");
        let a = 1 + a % (MERSENNE_61 - 1);
        let b = b % MERSENNE_61;
        Self { a, b, range }
    }

    /// Derives coefficients deterministically from a seed via SplitMix64.
    pub fn from_seed(seed: u64, range: u64) -> Self {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        Self::new(a, b, range)
    }

    /// Evaluates the hash on `x`, returning a bucket in `[0, range)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        // Fold x into [0, p) first; the fold is injective on [0, p) and
        // merges at most one pair, preserving 2-universality up to O(2^-61).
        let x = mod_mersenne61(x as u128);
        let v = mod_mersenne61((self.a as u128) * (x as u128) + self.b as u128);
        (((v as u128) * (self.range as u128)) >> 61).min((self.range - 1) as u128) as u64
    }

    /// The output range.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// A 64-bit fingerprint of the function (coefficients and range),
    /// stable across processes. Snapshot codecs embed it so state from a
    /// sketch built over a *different* hash family is rejected instead of
    /// silently merged.
    pub fn fingerprint(&self) -> u64 {
        mix64(self.a ^ self.b.rotate_left(23) ^ self.range.rotate_left(46))
    }
}

/// An FxHash-style fast hasher for internal `HashMap`s keyed by integers or
/// short keys, where HashDoS is not a threat model (our keys come from our
/// own simulators, not attackers).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

/// `BuildHasher` for [`FastHasher`]; plug into `HashMap::with_hasher`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — drop-in for hot internal maps.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, FastBuildHasher>;

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_bijective_on_samples() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let mut total = 0u32;
        let samples = 256;
        for i in 0..samples {
            let x = mix64(i * 0x9e37_79b9);
            let y = mix64((i * 0x9e37_79b9) ^ 1);
            total += (mix64_pre(x) ^ mix64_pre(y)).count_ones();
        }
        fn mix64_pre(x: u64) -> u64 {
            mix64(x)
        }
        let avg = total as f64 / samples as f64;
        assert!((20.0..44.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn family_respects_range() {
        let fam = HashFamily::new(10);
        for v in 0..1000 {
            for s in 0..8 {
                assert!(fam.hash(v, s) < 10);
            }
        }
    }

    #[test]
    fn family_is_roughly_uniform() {
        let range = 16u64;
        let fam = HashFamily::new(range);
        let n = 64_000u64;
        let mut counts = vec![0u64; range as usize];
        for v in 0..n {
            counts[fam.hash(v, 12345) as usize] += 1;
        }
        let expected = n as f64 / range as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "bucket {bucket} off by {dev:.3}");
        }
    }

    #[test]
    fn family_seeds_decorrelate() {
        let fam = HashFamily::new(2);
        // For a fixed value, the map seed -> bucket should be ~balanced.
        let ones: u64 = (0..1000).map(|s| fam.hash(777, s)).sum();
        assert!((350..650).contains(&(ones as i64 as u64)), "ones={ones}");
    }

    #[test]
    fn hash_bytes_distinguishes_prefixes() {
        assert_ne!(hash_bytes64(b"abc"), hash_bytes64(b"abcd"));
        assert_ne!(hash_bytes64(b""), hash_bytes64(b"\0"));
        assert_ne!(hash_bytes64(b"\0\0"), hash_bytes64(b"\0"));
    }

    #[test]
    fn pairwise_respects_range_and_determinism() {
        let h = PairwiseHash::from_seed(9, 100);
        for x in 0..10_000 {
            assert!(h.hash(x) < 100);
        }
        let h2 = PairwiseHash::from_seed(9, 100);
        assert_eq!(h.hash(31337), h2.hash(31337));
    }

    #[test]
    fn pairwise_collision_rate_near_uniform() {
        // Empirical pairwise collision probability should be ~1/range.
        let range = 64u64;
        let trials = 2000u64;
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = PairwiseHash::from_seed(seed, range);
            if h.hash(1) == h.hash(2) {
                collisions += 1;
            }
        }
        let p = collisions as f64 / trials as f64;
        assert!(p < 3.0 / range as f64, "collision prob {p}");
    }

    #[test]
    fn mod_mersenne61_agrees_with_naive() {
        for &x in &[
            0u128,
            1,
            MERSENNE_61 as u128,
            (MERSENNE_61 as u128) + 5,
            u64::MAX as u128,
            u128::MAX >> 3,
        ] {
            assert_eq!(
                mod_mersenne61(x) as u128,
                x % (MERSENNE_61 as u128),
                "x={x}"
            );
        }
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&500], 1000);
        assert_eq!(m.len(), 1000);
    }
}
