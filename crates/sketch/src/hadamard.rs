//! The fast Walsh–Hadamard transform (FWHT) and Hadamard-matrix utilities.
//!
//! Two of the tutorial's systems lean on the Hadamard basis:
//!
//! * **Apple's HCMS** has each device report a single ±1 *Hadamard
//!   coefficient* of its one-hot row vector instead of the whole row: the
//!   transform spreads a unit spike evenly across all coefficients, so a
//!   uniformly sampled coefficient carries `1/√m` of the signal — the best
//!   possible for a 1-bit message.
//! * **Marginal release** (Cormode–Kulkarni–Srivastava) observes that a
//!   k-way marginal depends on few Fourier (= Hadamard, for binary domains)
//!   coefficients, so collecting noisy coefficients beats collecting noisy
//!   cells.
//!
//! The FWHT here is a blocked, cache-tiled in-place kernel, `O(m log m)`
//! with `m` a power of two, operating on `f64` (the aggregation side) —
//! plus [`hadamard_entry`] for the O(1) client-side single-entry
//! evaluation, which is what makes 1-bit reports cheap: a client never
//! materializes the matrix.
//!
//! # Kernel structure
//!
//! The textbook butterfly ([`fwht_reference`], kept as the frozen
//! baseline) makes `log₂ m` full passes over the buffer, one per stage —
//! for `m` beyond L1 that is `log₂ m` trips through the cache hierarchy.
//! [`fwht`] restructures the same arithmetic:
//!
//! * **Intra-tile phase.** Stages with butterfly span `< T` (the
//!   L1-sized tile, [`FWHT_TILE`] elements) never cross a `T`-aligned
//!   boundary, so they run tile by tile: each tile is loaded once and
//!   all `log₂ T` low stages complete while it sits in L1.
//! * **Radix-4 fusion.** Within both phases, consecutive stage pairs
//!   `(h, 2h)` are fused into one pass over four stride-`h` streams,
//!   halving the number of loads/stores per element and exposing more
//!   instruction-level parallelism.
//!
//! Both transformations reorder *independent* butterflies only: every
//! output value is produced by exactly the same additions in the same
//! association order as the reference butterfly, so the tiled kernel is
//! **bit-identical** to [`fwht_reference`] on every input (proptested
//! below across sizes 1..=4096).

use std::fmt;

/// Tile size (in `f64` elements) for the intra-tile FWHT phase: 2048
/// elements = 16 KiB, half a typical 32 KiB L1d, leaving room for the
/// streamed stores of the cross-tile phase.
pub const FWHT_TILE: usize = 2048;

/// Error returned by [`try_fwht`] for a length that is not a power of
/// two (including zero): the Walsh–Hadamard transform is only defined on
/// `2^k`-length vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwhtSizeError {
    /// The offending buffer length.
    pub len: usize,
}

impl fmt::Display for FwhtSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FWHT length must be a power of two, got {len}",
            len = self.len
        )
    }
}

impl std::error::Error for FwhtSizeError {}

/// In-place fast Walsh–Hadamard transform (no normalization):
/// `data ← H·data` where `H` is the ±1 Hadamard matrix of size `m = 2^k`.
///
/// Applying it twice multiplies by `m` (`H·H = m·I`).
///
/// This is the cache-tiled, radix-4 kernel (see the module docs);
/// bit-identical to the textbook butterfly [`fwht_reference`].
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero). Use
/// [`try_fwht`] for a panic-free typed guard.
///
/// # Examples
/// ```
/// use ldp_sketch::fwht;
/// let mut v = vec![1.0, 0.0, 0.0, 0.0];
/// fwht(&mut v); // a unit spike spreads to all-ones
/// assert_eq!(v, vec![1.0, 1.0, 1.0, 1.0]);
/// fwht(&mut v); // H·H = m·I
/// assert_eq!(v, vec![4.0, 0.0, 0.0, 0.0]);
/// ```
pub fn fwht(data: &mut [f64]) {
    if let Err(e) = try_fwht(data) {
        panic!("{e}");
    }
}

/// Panic-free [`fwht`]: returns [`FwhtSizeError`] instead of panicking
/// when the length is not a power of two, leaving `data` untouched.
///
/// # Examples
/// ```
/// use ldp_sketch::hadamard::try_fwht;
/// let mut v = vec![1.0, 2.0, 3.0];
/// assert_eq!(try_fwht(&mut v).unwrap_err().len, 3);
/// assert_eq!(v, vec![1.0, 2.0, 3.0]); // untouched on error
/// ```
pub fn try_fwht(data: &mut [f64]) -> Result<(), FwhtSizeError> {
    let n = data.len();
    if !n.is_power_of_two() {
        return Err(FwhtSizeError { len: n });
    }
    // Intra-tile phase: all stages with span < tile, tile by tile.
    let tile = FWHT_TILE.min(n);
    for block in data.chunks_exact_mut(tile) {
        fwht_stages(block, 1, tile);
    }
    // Cross-tile phase: remaining stages h = tile, 2·tile, …, n/2.
    fwht_stages(data, tile, n);
    Ok(())
}

/// Runs butterfly stages `h = h0, 2·h0, …, h_end/2` over `data`
/// (radix-4 fused pairs, one trailing radix-2 stage if the count is
/// odd). `h0` and `h_end` are powers of two with `h0 ≤ h_end ≤ len`.
///
/// Stage order is strictly increasing and each fused pair computes the
/// exact expressions of its two sequential stages, so the arithmetic —
/// and hence every output bit — matches the reference butterfly.
#[inline]
fn fwht_stages(data: &mut [f64], h0: usize, h_end: usize) {
    let n = data.len();
    let mut h = h0;
    // Radix-4: fuse stages (h, 2h) while two stages remain.
    while h * 4 <= h_end {
        for chunk in data[..n].chunks_exact_mut(4 * h) {
            let (ab, cd) = chunk.split_at_mut(2 * h);
            let (a, b) = ab.split_at_mut(h);
            let (c, d) = cd.split_at_mut(h);
            for i in 0..h {
                let (x0, x1, x2, x3) = (a[i], b[i], c[i], d[i]);
                // Stage h …
                let s0 = x0 + x1;
                let d0 = x0 - x1;
                let s1 = x2 + x3;
                let d1 = x2 - x3;
                // … then stage 2h, same association as two passes.
                a[i] = s0 + s1;
                b[i] = d0 + d1;
                c[i] = s0 - s1;
                d[i] = d0 - d1;
            }
        }
        h *= 4;
    }
    // Trailing radix-2 stage when the stage count from h0 is odd.
    if h * 2 <= h_end {
        for chunk in data.chunks_exact_mut(2 * h) {
            let (lo, hi) = chunk.split_at_mut(h);
            for i in 0..h {
                let (x, y) = (lo[i], hi[i]);
                lo[i] = x + y;
                hi[i] = x - y;
            }
        }
    }
}

/// The frozen textbook FWHT butterfly: one full pass per stage, exactly
/// the kernel this crate shipped before the tiled rewrite. Kept public
/// as the baseline that `ldp-bench` measures `fwht_tiled_speedup`
/// against and that the bit-identity proptests compare to — do not
/// optimize it.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero).
pub fn fwht_reference(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FWHT length must be a power of two, got {n}"
    );
    let mut h = 1;
    while h < n {
        for chunk_start in (0..n).step_by(h * 2) {
            for i in chunk_start..chunk_start + h {
                let (x, y) = (data[i], data[i + h]);
                data[i] = x + y;
                data[i + h] = x - y;
            }
        }
        h *= 2;
    }
}

/// FWHT normalized by `1/√m`, making the transform orthonormal
/// (applying it twice is the identity).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_normalized(data: &mut [f64]) {
    fwht(data);
    let scale = 1.0 / (data.len() as f64).sqrt();
    for x in data.iter_mut() {
        *x *= scale;
    }
}

/// The `(row, col)` entry of the (un-normalized) Hadamard matrix of any
/// power-of-two size: `H[row][col] = (−1)^{⟨row, col⟩}` where `⟨·,·⟩` is the
/// GF(2) inner product (popcount of AND, mod 2).
///
/// O(1); this is what an HCMS client evaluates instead of a transform.
///
/// # Examples
/// ```
/// use ldp_sketch::hadamard_entry;
/// assert_eq!(hadamard_entry(0, 5), 1);   // first row is all +1
/// assert_eq!(hadamard_entry(1, 1), -1);  // H2 = [[1,1],[1,-1]]
/// ```
#[inline]
pub fn hadamard_entry(row: u64, col: u64) -> i8 {
    if (row & col).count_ones().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// Inverse of [`fwht`]: `data ← H⁻¹·data = (1/m)·H·data`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_inverse(data: &mut [f64]) {
    fwht(data);
    let m = data.len() as f64;
    for x in data.iter_mut() {
        *x /= m;
    }
}

/// Next power of two ≥ `n` (convenience for sizing Hadamard domains).
///
/// # Panics
/// Panics if the result would overflow `usize`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_transform(v: &[f64]) -> Vec<f64> {
        let n = v.len();
        (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| hadamard_entry(r as u64, c as u64) as f64 * v[c])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn fwht_matches_naive_matrix_multiply() {
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let mut fast = v.clone();
        fwht(&mut fast);
        let slow = naive_transform(&v);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn double_transform_scales_by_m() {
        let v = vec![3.0, -1.0, 2.0, 0.5, 1.0, 1.0, -2.0, 4.0];
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - 8.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_is_involution() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let mut w = v.clone();
        fwht_normalized(&mut w);
        fwht_normalized(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let v = vec![5.0, -3.0, 0.0, 7.0, 2.0, 2.0, 2.0, -9.0];
        let mut w = v.clone();
        fwht(&mut w);
        fwht_inverse(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn entry_rows_are_orthogonal() {
        let m = 32u64;
        for r1 in 0..m {
            for r2 in 0..m {
                let dot: i64 = (0..m)
                    .map(|c| hadamard_entry(r1, c) as i64 * hadamard_entry(r2, c) as i64)
                    .sum();
                if r1 == r2 {
                    assert_eq!(dot, m as i64);
                } else {
                    assert_eq!(dot, 0, "rows {r1},{r2} not orthogonal");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        fwht(&mut [1.0, 2.0, 3.0]);
    }

    #[test]
    fn try_fwht_rejects_bad_lengths_without_touching_data() {
        for len in [0usize, 3, 5, 6, 7, 9, 12, 100, 1000, 4095, 4097] {
            let orig: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 - 1.0).collect();
            let mut v = orig.clone();
            let err = try_fwht(&mut v).expect_err("non-power-of-two must error");
            assert_eq!(err.len, len);
            assert!(err.to_string().contains("power of two"), "{err}");
            assert_eq!(v, orig, "buffer must be untouched on error");
        }
    }

    #[test]
    fn try_fwht_accepts_all_powers_of_two() {
        for k in 0..=12 {
            let mut v = vec![1.0; 1usize << k];
            assert!(try_fwht(&mut v).is_ok());
            assert_eq!(v[0], (1usize << k) as f64);
        }
    }

    /// Deterministic pseudo-random fill (splitmix64-style) so the
    /// bit-identity sweep covers irregular mantissas without a rand dep.
    fn scrambled(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect()
    }

    #[test]
    fn tiled_matches_reference_bit_for_bit_all_pow2_sizes() {
        // Exhaustive over every power-of-two size 1..=4096 (and a few
        // beyond the tile boundary so the cross-tile phase is exercised).
        for k in 0..=13 {
            let len = 1usize << k;
            for seed in [1u64, 42, 9999] {
                let v = scrambled(len, seed ^ len as u64);
                let mut tiled = v.clone();
                fwht(&mut tiled);
                let mut reference = v;
                fwht_reference(&mut reference);
                for i in 0..len {
                    assert_eq!(
                        tiled[i].to_bits(),
                        reference[i].to_bits(),
                        "size {len} seed {seed} idx {i}: {} vs {}",
                        tiled[i],
                        reference[i]
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_tiled_bit_identical_to_reference(
            k in 0usize..=12,
            seed in any::<u64>(),
        ) {
            let len = 1usize << k;
            let v = scrambled(len, seed);
            let mut tiled = v.clone();
            fwht(&mut tiled);
            let mut reference = v;
            fwht_reference(&mut reference);
            for i in 0..len {
                prop_assert_eq!(tiled[i].to_bits(), reference[i].to_bits());
            }
        }

        #[test]
        fn prop_tiled_matches_naive_matvec(
            v in proptest::collection::vec(-100.0f64..100.0, 64),
        ) {
            let mut fast = v.clone();
            fwht(&mut fast);
            let slow = naive_transform(&v);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{} vs {}", a, b);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_fwht_linear(a in proptest::collection::vec(-100.0f64..100.0, 8),
                            b in proptest::collection::vec(-100.0f64..100.0, 8)) {
            // H(a + b) = H(a) + H(b)
            let mut sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            fwht(&mut sum);
            let mut ha = a.clone();
            fwht(&mut ha);
            let mut hb = b.clone();
            fwht(&mut hb);
            for i in 0..8 {
                prop_assert!((sum[i] - ha[i] - hb[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_parseval(v in proptest::collection::vec(-10.0f64..10.0, 16)) {
            // Orthonormal transform preserves the L2 norm.
            let before: f64 = v.iter().map(|x| x * x).sum();
            let mut w = v.clone();
            fwht_normalized(&mut w);
            let after: f64 = w.iter().map(|x| x * x).sum();
            prop_assert!((before - after).abs() < 1e-8 * (1.0 + before));
        }
    }
}
