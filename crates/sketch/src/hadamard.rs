//! The fast Walsh–Hadamard transform (FWHT) and Hadamard-matrix utilities.
//!
//! Two of the tutorial's systems lean on the Hadamard basis:
//!
//! * **Apple's HCMS** has each device report a single ±1 *Hadamard
//!   coefficient* of its one-hot row vector instead of the whole row: the
//!   transform spreads a unit spike evenly across all coefficients, so a
//!   uniformly sampled coefficient carries `1/√m` of the signal — the best
//!   possible for a 1-bit message.
//! * **Marginal release** (Cormode–Kulkarni–Srivastava) observes that a
//!   k-way marginal depends on few Fourier (= Hadamard, for binary domains)
//!   coefficients, so collecting noisy coefficients beats collecting noisy
//!   cells.
//!
//! The FWHT here is the standard in-place butterfly, `O(m log m)` with
//! `m` a power of two, operating on `f64` (the aggregation side) — plus
//! [`hadamard_entry`] for the O(1) client-side single-entry evaluation,
//! which is what makes 1-bit reports cheap: a client never materializes the
//! matrix.

/// In-place fast Walsh–Hadamard transform (no normalization):
/// `data ← H·data` where `H` is the ±1 Hadamard matrix of size `m = 2^k`.
///
/// Applying it twice multiplies by `m` (`H·H = m·I`).
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero).
///
/// # Examples
/// ```
/// use ldp_sketch::fwht;
/// let mut v = vec![1.0, 0.0, 0.0, 0.0];
/// fwht(&mut v); // a unit spike spreads to all-ones
/// assert_eq!(v, vec![1.0, 1.0, 1.0, 1.0]);
/// fwht(&mut v); // H·H = m·I
/// assert_eq!(v, vec![4.0, 0.0, 0.0, 0.0]);
/// ```
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FWHT length must be a power of two, got {n}"
    );
    let mut h = 1;
    while h < n {
        for chunk_start in (0..n).step_by(h * 2) {
            for i in chunk_start..chunk_start + h {
                let (x, y) = (data[i], data[i + h]);
                data[i] = x + y;
                data[i + h] = x - y;
            }
        }
        h *= 2;
    }
}

/// FWHT normalized by `1/√m`, making the transform orthonormal
/// (applying it twice is the identity).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_normalized(data: &mut [f64]) {
    fwht(data);
    let scale = 1.0 / (data.len() as f64).sqrt();
    for x in data.iter_mut() {
        *x *= scale;
    }
}

/// The `(row, col)` entry of the (un-normalized) Hadamard matrix of any
/// power-of-two size: `H[row][col] = (−1)^{⟨row, col⟩}` where `⟨·,·⟩` is the
/// GF(2) inner product (popcount of AND, mod 2).
///
/// O(1); this is what an HCMS client evaluates instead of a transform.
///
/// # Examples
/// ```
/// use ldp_sketch::hadamard_entry;
/// assert_eq!(hadamard_entry(0, 5), 1);   // first row is all +1
/// assert_eq!(hadamard_entry(1, 1), -1);  // H2 = [[1,1],[1,-1]]
/// ```
#[inline]
pub fn hadamard_entry(row: u64, col: u64) -> i8 {
    if (row & col).count_ones().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// Inverse of [`fwht`]: `data ← H⁻¹·data = (1/m)·H·data`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_inverse(data: &mut [f64]) {
    fwht(data);
    let m = data.len() as f64;
    for x in data.iter_mut() {
        *x /= m;
    }
}

/// Next power of two ≥ `n` (convenience for sizing Hadamard domains).
///
/// # Panics
/// Panics if the result would overflow `usize`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_transform(v: &[f64]) -> Vec<f64> {
        let n = v.len();
        (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| hadamard_entry(r as u64, c as u64) as f64 * v[c])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn fwht_matches_naive_matrix_multiply() {
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let mut fast = v.clone();
        fwht(&mut fast);
        let slow = naive_transform(&v);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn double_transform_scales_by_m() {
        let v = vec![3.0, -1.0, 2.0, 0.5, 1.0, 1.0, -2.0, 4.0];
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - 8.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_is_involution() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let mut w = v.clone();
        fwht_normalized(&mut w);
        fwht_normalized(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let v = vec![5.0, -3.0, 0.0, 7.0, 2.0, 2.0, 2.0, -9.0];
        let mut w = v.clone();
        fwht(&mut w);
        fwht_inverse(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn entry_rows_are_orthogonal() {
        let m = 32u64;
        for r1 in 0..m {
            for r2 in 0..m {
                let dot: i64 = (0..m)
                    .map(|c| hadamard_entry(r1, c) as i64 * hadamard_entry(r2, c) as i64)
                    .sum();
                if r1 == r2 {
                    assert_eq!(dot, m as i64);
                } else {
                    assert_eq!(dot, 0, "rows {r1},{r2} not orthogonal");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        fwht(&mut [1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn prop_fwht_linear(a in proptest::collection::vec(-100.0f64..100.0, 8),
                            b in proptest::collection::vec(-100.0f64..100.0, 8)) {
            // H(a + b) = H(a) + H(b)
            let mut sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            fwht(&mut sum);
            let mut ha = a.clone();
            fwht(&mut ha);
            let mut hb = b.clone();
            fwht(&mut hb);
            for i in 0..8 {
                prop_assert!((sum[i] - ha[i] - hb[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_parseval(v in proptest::collection::vec(-10.0f64..10.0, 16)) {
            // Orthonormal transform preserves the L2 norm.
            let before: f64 = v.iter().map(|x| x * x).sum();
            let mut w = v.clone();
            fwht_normalized(&mut w);
            let after: f64 = w.iter().map(|x| x * x).sum();
            prop_assert!((before - after).abs() < 1e-8 * (1.0 + before));
        }
    }
}
