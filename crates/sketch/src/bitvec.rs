//! A compact bit vector used as the payload of RAPPOR reports and unary
//! encodings.
//!
//! RAPPOR clients send a perturbed Bloom filter of `k` bits per report; at
//! Internet scale the aggregator holds millions of these, so the
//! representation must be word-packed and the per-bit operations branch-free
//! where possible. This module is deliberately small: just what the LDP
//! protocols need (set/get/flip/count, bitwise accumulate), not a general
//! bitset library.

/// A fixed-length, word-packed vector of bits.
///
/// # Examples
/// ```
/// use ldp_sketch::BitVec;
/// let mut bv = BitVec::zeros(130);
/// bv.set(0, true);
/// bv.set(129, true);
/// assert_eq!(bv.count_ones(), 2);
/// assert!(bv.get(129));
/// bv.flip(129);
/// assert!(!bv.get(129));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Reconstructs a bit vector from little-endian packed bytes (bit
    /// `i` in byte `i/8`, position `i%8`) — the inverse of
    /// [`write_le_bytes`](Self::write_le_bytes), used by the wire
    /// format. Returns `None` when the byte count does not match the bit
    /// length or the padding bits of the last byte are nonzero, so
    /// callers can reject malformed frames without panicking.
    pub fn from_le_bytes(len: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        if !len.is_multiple_of(8) && bytes[bytes.len() - 1] >> (len % 8) != 0 {
            return None;
        }
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, &b) in bytes.iter().enumerate() {
            words[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        Some(Self { words, len })
    }

    /// Overwrites this vector's bits from little-endian packed bytes —
    /// the in-place counterpart of [`from_le_bytes`](Self::from_le_bytes)
    /// for the same bit length, reusing the existing word storage so a
    /// decode loop over a frame stream allocates nothing per report.
    /// Returns `false` (leaving the vector unchanged) when the byte
    /// count does not match or the padding bits of the last byte are
    /// nonzero.
    pub fn copy_from_le_bytes(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() != self.len.div_ceil(8) {
            return false;
        }
        if !self.len.is_multiple_of(8) && bytes[bytes.len() - 1] >> (self.len % 8) != 0 {
            return false;
        }
        let mut chunks = bytes.chunks_exact(8);
        for (w, chunk) in self.words.iter_mut().zip(&mut chunks) {
            *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            *self.words.last_mut().expect("tail byte implies a word") = u64::from_le_bytes(tail);
        }
        true
    }

    /// Appends the bits as little-endian packed bytes (`len.div_ceil(8)`
    /// of them; unused bits of the final byte are zero) — word-at-a-time,
    /// so serializing is a memcpy-grade operation, not a per-bit loop.
    pub fn write_le_bytes(&self, out: &mut Vec<u8>) {
        let mut remaining = self.len.div_ceil(8);
        for w in &self.words {
            let take = remaining.min(8);
            out.extend_from_slice(&w.to_le_bytes()[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut bv = Self::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            bv.set(i, b);
        }
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i & 63);
        if value {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i >> 6] ^= 1u64 << (i & 63);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.words[i >> 6] >> (i & 63)) & 1 == 1)
    }

    /// Iterates over indices of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi << 6;
            let len = self.len;
            BitIter { word: w }
                .map(move |b| base + b)
                .filter(move |&i| i < len)
        })
    }

    /// Adds each bit of `self` into `accumulator` (`accumulator[i] += bit`).
    ///
    /// This is the aggregator hot path: summing millions of reports into a
    /// per-position count vector. Word-at-a-time with an early skip for
    /// all-zero words.
    ///
    /// # Panics
    /// Panics if `accumulator.len() != self.len()`.
    pub fn accumulate_into(&self, accumulator: &mut [u64]) {
        assert_eq!(accumulator.len(), self.len, "accumulator length mismatch");
        for (wi, &w) in self.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                accumulator[(wi << 6) + b] += 1;
                bits &= bits - 1;
            }
        }
    }

    /// Resets every bit to 0, keeping the length (and allocation).
    /// Lets hot loops reuse one report buffer instead of allocating per
    /// report.
    #[inline]
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Index of the `n`-th (0-based, in increasing index order) **set**
    /// bit. The select operation behind class-mapped geometric-skip
    /// sampling: "flip the n-th currently-set position".
    ///
    /// # Panics
    /// Panics if `n >= count_ones()`.
    pub fn nth_one(&self, mut n: usize) -> usize {
        for (wi, &w) in self.words.iter().enumerate() {
            let c = w.count_ones() as usize;
            if n < c {
                return (wi << 6) + select_in_word(w, n);
            }
            n -= c;
        }
        panic!("set-bit rank out of range");
    }

    /// Index of the `n`-th (0-based, in increasing index order) **unset**
    /// bit among the vector's `len()` bits.
    ///
    /// # Panics
    /// Panics if `n >= len() - count_ones()`.
    pub fn nth_zero(&self, mut n: usize) -> usize {
        for (wi, &w) in self.words.iter().enumerate() {
            let bits_here = 64.min(self.len - (wi << 6));
            // Trailing bits beyond len are 0 in the word but not part of
            // the vector; mask them out of the zero count.
            let mask = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
            let zeros = !w & mask;
            let c = zeros.count_ones() as usize;
            if n < c {
                return (wi << 6) + select_in_word(zeros, n);
            }
            n -= c;
        }
        panic!("zero-bit rank out of range");
    }

    /// Bitwise XOR with another vector of the same length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Raw words (little-endian bit order within each word). Trailing bits
    /// beyond `len` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Position of the `n`-th set bit inside one word (`n < popcount(w)`).
#[inline]
fn select_in_word(mut w: u64, mut n: usize) -> usize {
    loop {
        let b = w.trailing_zeros() as usize;
        if n == 0 {
            return b;
        }
        w &= w - 1;
        n -= 1;
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_is_empty_of_ones() {
        let bv = BitVec::zeros(100);
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.len(), 100);
        assert!(!bv.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut bv = BitVec::zeros(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            bv.set(i, true);
            assert!(bv.get(i), "bit {i}");
        }
        assert_eq!(bv.count_ones(), 8);
        bv.set(64, false);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 7);
    }

    #[test]
    fn ones_iterator_matches_gets() {
        let mut bv = BitVec::zeros(150);
        let idx = [3usize, 64, 65, 100, 149];
        for &i in &idx {
            bv.set(i, true);
        }
        let got: Vec<usize> = bv.ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn accumulate_counts_bits() {
        let mut acc = vec![0u64; 70];
        let mut a = BitVec::zeros(70);
        a.set(0, true);
        a.set(69, true);
        let mut b = BitVec::zeros(70);
        b.set(0, true);
        a.accumulate_into(&mut acc);
        b.accumulate_into(&mut acc);
        assert_eq!(acc[0], 2);
        assert_eq!(acc[69], 1);
        assert_eq!(acc[1], 0);
    }

    #[test]
    fn copy_from_le_bytes_matches_owned_decode() {
        let src = BitVec::from_bools((0..130).map(|i| i % 5 == 0));
        let mut bytes = Vec::new();
        src.write_le_bytes(&mut bytes);

        let mut dst = BitVec::from_bools((0..130).map(|i| i % 2 == 0));
        assert!(dst.copy_from_le_bytes(&bytes));
        assert_eq!(dst, src);
        assert_eq!(dst, BitVec::from_le_bytes(130, &bytes).unwrap());

        // Byte-count mismatch and nonzero padding are rejected, like
        // the owned constructor. (Lengths sharing a byte count — 129
        // vs 130 — are the caller's job to compare; see
        // `ldp_core::wire::get_bitvec_into`.)
        let mut wrong_len = BitVec::zeros(100);
        assert!(!wrong_len.copy_from_le_bytes(&bytes));
        assert!(wrong_len.ones().next().is_none(), "unchanged on failure");
        let mut padded = bytes.clone();
        *padded.last_mut().unwrap() |= 0x80; // bit 135 > len 130
        assert!(!dst.copy_from_le_bytes(&padded));
    }

    #[test]
    fn clear_zeroes_everything_and_keeps_len() {
        let mut bv = BitVec::from_bools((0..130).map(|i| i % 3 == 0));
        assert!(bv.count_ones() > 0);
        bv.clear();
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.len(), 130);
    }

    #[test]
    fn select_ones_and_zeros_across_word_boundaries() {
        let mut bv = BitVec::zeros(150);
        let ones = [3usize, 63, 64, 100, 149];
        for &i in &ones {
            bv.set(i, true);
        }
        for (rank, &expect) in ones.iter().enumerate() {
            assert_eq!(bv.nth_one(rank), expect, "rank {rank}");
        }
        // Zeros: ranks walk every unset index in order.
        let zero_indices: Vec<usize> = (0..150).filter(|i| !ones.contains(i)).collect();
        for (rank, &expect) in zero_indices.iter().enumerate().step_by(13) {
            assert_eq!(bv.nth_zero(rank), expect, "zero rank {rank}");
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn nth_one_out_of_range_panics() {
        BitVec::zeros(10).nth_one(0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn nth_zero_out_of_range_panics() {
        let bv = BitVec::zeros(10);
        bv.nth_zero(10);
    }

    #[test]
    fn xor_flips_differences() {
        let a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, false, false]);
        let mut c = a.clone();
        c.xor_with(&b);
        assert_eq!(c, BitVec::from_bools([false, true, true, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    proptest! {
        #[test]
        fn prop_from_bools_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let bv = BitVec::from_bools(bits.clone());
            prop_assert_eq!(bv.len(), bits.len());
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(bv.get(i), b);
            }
            prop_assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
            let via_iter: Vec<bool> = bv.iter().collect();
            prop_assert_eq!(via_iter, bits);
        }

        #[test]
        fn prop_accumulate_equals_scalar_loop(
            rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 97), 1..20)
        ) {
            let mut fast = vec![0u64; 97];
            let mut slow = vec![0u64; 97];
            for row in &rows {
                let bv = BitVec::from_bools(row.iter().copied());
                bv.accumulate_into(&mut fast);
                for (i, &b) in row.iter().enumerate() {
                    if b { slow[i] += 1; }
                }
            }
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_xor_is_involution(bits_a in proptest::collection::vec(any::<bool>(), 128),
                                  bits_b in proptest::collection::vec(any::<bool>(), 128)) {
            let a = BitVec::from_bools(bits_a);
            let b = BitVec::from_bools(bits_b);
            let mut c = a.clone();
            c.xor_with(&b);
            c.xor_with(&b);
            prop_assert_eq!(c, a);
        }
    }
}
