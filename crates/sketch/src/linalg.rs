//! Dense linear algebra for RAPPOR-style decoding: least squares via QR,
//! ridge regression, and LASSO via coordinate descent.
//!
//! RAPPOR's aggregator observes, per cohort, the debiased per-bit counts of
//! millions of perturbed Bloom filters. Each candidate string contributes a
//! known 0/1 signature column; estimating candidate frequencies is the
//! regression `X β ≈ y` where `X` stacks the cohort signatures. The original
//! paper fits LASSO first (to select candidates) and then ordinary least
//! squares on the survivors — both are implemented here, from scratch,
//! because the decoding step *is* part of the system being reproduced.
//!
//! The OLS refit stage sees a small matrix (bits·cohorts × survivors), so
//! dense Householder QR is the right tool there. The LASSO *selection*
//! stage is different: its design matrix is bits·cohorts × *all*
//! candidates, 0/1, and only `h/m` dense (each candidate sets `h` of `m`
//! bits in one cohort), so it gets a dedicated binary-sparse path —
//! [`SparseColMatrix`] plus the active-set solver [`lasso_sparse`].

/// A dense row-major matrix of `f64`.
///
/// Deliberately minimal: construction, indexing, and the operations the
/// decoder needs (transpose-multiply, column norms).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `self · v` for a vector `v`.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `selfᵀ · v` for a vector `v`.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn transpose_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vr) in self.data.chunks_exact(self.cols).zip(v) {
            if vr == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }

    /// Squared L2 norm of column `c`.
    pub fn col_norm_sq(&self, c: usize) -> f64 {
        (0..self.rows).map(|r| self.get(r, c).powi(2)).sum()
    }

    /// Squared L2 norms of *all* columns in one row-major pass.
    ///
    /// Equivalent to calling [`col_norm_sq`](Self::col_norm_sq) per
    /// column (same per-column accumulation order, so bit-identical),
    /// but streams the matrix once instead of making `cols` strided
    /// column walks — the difference between O(rows·cols) cache-friendly
    /// reads and `cols` cache-hostile stride-`cols` scans.
    pub fn col_norms_sq(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * a;
            }
        }
        out
    }
}

/// A binary (0/1) matrix in compressed-sparse-column form: per column,
/// the sorted row indices of its 1-entries.
///
/// This is exactly the shape of RAPPOR's candidate design matrix — each
/// candidate column sets `hashes` bits inside its cohort's block of an
/// otherwise-zero `bits·cohorts` stack, a fill of `h/m` (≈ 1.6% at
/// h=2, m=128) — and the binary restriction means a column's squared
/// norm is just its popcount and a column·vector dot is a gather-sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseColMatrix {
    rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
}

impl SparseColMatrix {
    /// Builds from per-column row-index lists (each list: the rows where
    /// that column is 1). Indices need not be sorted; they are sorted
    /// and deduplicated here so dot products run in ascending-row order.
    ///
    /// # Panics
    /// Panics if any row index is `≥ rows`, or `rows` overflows `u32`.
    pub fn from_columns(rows: usize, columns: &[Vec<u32>]) -> Self {
        assert!(u32::try_from(rows).is_ok(), "rows {rows} overflows u32");
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::with_capacity(columns.iter().map(Vec::len).sum());
        for col in columns {
            let mut sorted = col.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if let Some(&last) = sorted.last() {
                assert!((last as usize) < rows, "row index {last} out of range");
            }
            row_idx.extend_from_slice(&sorted);
            col_ptr.push(row_idx.len());
        }
        Self {
            rows,
            col_ptr,
            row_idx,
        }
    }

    /// Converts a dense 0/1 matrix (entries exactly 0.0 or 1.0).
    ///
    /// # Panics
    /// Panics if any entry is neither 0.0 nor 1.0.
    pub fn from_dense(a: &Matrix) -> Self {
        let columns: Vec<Vec<u32>> = (0..a.cols())
            .map(|c| {
                (0..a.rows())
                    .filter(|&r| {
                        let v = a.get(r, c);
                        assert!(v == 0.0 || v == 1.0, "entry ({r},{c}) = {v} is not binary");
                        v == 1.0
                    })
                    .map(|r| r as u32)
                    .collect()
            })
            .collect();
        Self::from_columns(a.rows(), &columns)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Total number of stored 1-entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The sorted row indices of column `j`'s 1-entries.
    #[inline]
    pub fn col(&self, j: usize) -> &[u32] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// `self · x` for a vector `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols(), "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for &r in self.col(j) {
                out[r as usize] += xj;
            }
        }
        out
    }

    /// Materializes the dense equivalent (test/debug aid).
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.rows, self.cols());
        for j in 0..self.cols() {
            for &r in self.col(j) {
                a.set(r as usize, j, 1.0);
            }
        }
        a
    }
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via Householder QR
/// with column pivoting omitted (the decoder's design matrices are
/// well-conditioned 0/1 signature stacks).
///
/// Returns the minimizer `x` (length `A.cols()`).
///
/// # Panics
/// Panics if `b.len() != A.rows()` or `A.rows() < A.cols()`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    assert!(
        a.rows() >= a.cols(),
        "least_squares requires rows >= cols ({} < {})",
        a.rows(),
        a.cols()
    );
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut qtb = b.to_vec();

    // Householder QR: for each column k, reflect to zero out below-diagonal.
    for k in 0..n {
        // Compute the norm of the k-th column below (and including) row k.
        let mut norm_sq = 0.0;
        for i in k..m {
            norm_sq += r.get(i, k) * r.get(i, k);
        }
        let norm = norm_sq.sqrt();
        if norm < 1e-300 {
            continue; // zero column; leave as-is (coefficient will be 0)
        }
        let alpha = if r.get(k, k) > 0.0 { -norm } else { norm };
        // v = x - alpha e1, stored implicitly.
        let mut v = vec![0.0; m - k];
        for i in k..m {
            v[i - k] = r.get(i, k);
        }
        v[0] -= alpha;
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq < 1e-300 {
            continue;
        }
        // Apply H = I - 2 v vᵀ / ‖v‖² to R (columns k..n) and to qtb.
        for c in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r.get(i, c)).sum();
            let scale = 2.0 * dot / v_norm_sq;
            for i in k..m {
                let val = r.get(i, c) - scale * v[i - k];
                r.set(i, c, val);
            }
        }
        let dot: f64 = (k..m).map(|i| v[i - k] * qtb[i]).sum();
        let scale = 2.0 * dot / v_norm_sq;
        for i in k..m {
            qtb[i] -= scale * v[i - k];
        }
    }

    // Back substitution on the upper-triangular R.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut s = qtb[k];
        for (c, &xc) in x.iter().enumerate().skip(k + 1) {
            s -= r.get(k, c) * xc;
        }
        let diag = r.get(k, k);
        x[k] = if diag.abs() < 1e-12 { 0.0 } else { s / diag };
    }
    x
}

/// Ridge regression `min ‖A x − b‖² + λ‖x‖²`, solved by augmenting the
/// system with `√λ·I` rows and calling [`least_squares`].
///
/// # Panics
/// Panics if `b.len() != A.rows()` or `lambda < 0`.
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let m = a.rows();
    let n = a.cols();
    let mut aug = Matrix::zeros(m + n, n);
    for r in 0..m {
        for c in 0..n {
            aug.set(r, c, a.get(r, c));
        }
    }
    let sqrt_l = lambda.sqrt();
    for k in 0..n {
        aug.set(m + k, k, sqrt_l);
    }
    let mut rhs = b.to_vec();
    rhs.resize(m + n, 0.0);
    least_squares(&aug, &rhs)
}

/// LASSO `min ½‖A x − b‖² + λ‖x‖₁` via cyclic coordinate descent with
/// soft-thresholding, optionally constrained to `x ≥ 0`
/// (candidate frequencies are non-negative, and RAPPOR's decoder uses the
/// non-negative variant).
///
/// Runs until the max coordinate change drops below `tol` or `max_iter`
/// sweeps complete. Returns the coefficient vector.
///
/// # Panics
/// Panics if `b.len() != A.rows()` or `lambda < 0`.
pub fn lasso(
    a: &Matrix,
    b: &[f64],
    lambda: f64,
    nonnegative: bool,
    max_iter: usize,
    tol: f64,
) -> Vec<f64> {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = a.cols();
    let mut x = vec![0.0; n];
    // Residual r = b - A x (x = 0 initially).
    let mut resid = b.to_vec();
    // One streaming pass for every column norm; hoisted out of the
    // sweep loop so the dense fallback stays cheap for tall matrices.
    let col_norms: Vec<f64> = a.col_norms_sq();

    for _ in 0..max_iter {
        let mut max_delta = 0.0f64;
        for j in 0..n {
            let nj = col_norms[j];
            if nj < 1e-300 {
                continue;
            }
            // rho = A_j . (resid + A_j x_j)  — partial residual correlation.
            let mut rho = 0.0;
            for (r, &res) in resid.iter().enumerate() {
                let aij = a.get(r, j);
                if aij != 0.0 {
                    rho += aij * res;
                }
            }
            rho += nj * x[j];
            // Soft threshold.
            let mut new_xj = if rho > lambda {
                (rho - lambda) / nj
            } else if rho < -lambda {
                (rho + lambda) / nj
            } else {
                0.0
            };
            if nonnegative && new_xj < 0.0 {
                new_xj = 0.0;
            }
            let delta = new_xj - x[j];
            if delta != 0.0 {
                for (r, res) in resid.iter_mut().enumerate() {
                    let aij = a.get(r, j);
                    if aij != 0.0 {
                        *res -= aij * delta;
                    }
                }
                x[j] = new_xj;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < tol {
            break;
        }
    }
    x
}

/// Non-negative (or signed) LASSO over a binary sparse design matrix via
/// active-set coordinate descent: the sparse counterpart of [`lasso`].
///
/// Strategy (glmnet-style): run one full cyclic sweep over every
/// coordinate, collect the coordinates that are currently nonzero into
/// the *active set*, then iterate sweeps over only the active set until
/// they stabilize — repeating the full sweep to let new coordinates
/// enter. Converged-zero coordinates are skipped entirely between full
/// sweeps, which is where the win comes from: post-selection, RAPPOR's
/// active set is tens of candidates out of thousands.
///
/// Per-coordinate work exploits the 0/1 structure: the column norm is
/// the column's popcount and the residual correlation is a gather-sum
/// over `nnz(j)` entries, in the same ascending-row order as the dense
/// solver (a lone full-sweep pass here is bit-identical to [`lasso`];
/// the active-set schedule changes sweep order, so end-to-end agreement
/// with the dense path is to convergence tolerance, not to the bit).
///
/// `max_iter` counts sweeps of either kind. Returns the coefficients.
///
/// # Panics
/// Panics if `b.len() != a.rows()` or `lambda < 0`.
pub fn lasso_sparse(
    a: &SparseColMatrix,
    b: &[f64],
    lambda: f64,
    nonnegative: bool,
    max_iter: usize,
    tol: f64,
) -> Vec<f64> {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = a.cols();
    let mut x = vec![0.0; n];
    let mut resid = b.to_vec();
    let mut active: Vec<usize> = Vec::new();
    let mut in_active = vec![false; n];

    // One coordinate update; returns |delta|.
    let update = |j: usize, x: &mut [f64], resid: &mut [f64]| -> f64 {
        let col = a.col(j);
        let nj = col.len() as f64;
        if col.is_empty() {
            return 0.0;
        }
        let mut rho = 0.0;
        for &r in col {
            rho += resid[r as usize];
        }
        rho += nj * x[j];
        let mut new_xj = if rho > lambda {
            (rho - lambda) / nj
        } else if rho < -lambda {
            (rho + lambda) / nj
        } else {
            0.0
        };
        if nonnegative && new_xj < 0.0 {
            new_xj = 0.0;
        }
        let delta = new_xj - x[j];
        if delta != 0.0 {
            for &r in col {
                resid[r as usize] -= delta;
            }
            x[j] = new_xj;
        }
        delta.abs()
    };

    let mut sweeps = 0;
    while sweeps < max_iter {
        // Full sweep: every coordinate gets a chance to enter.
        let mut max_delta = 0.0f64;
        for j in 0..n {
            max_delta = max_delta.max(update(j, &mut x, &mut resid));
            if x[j] != 0.0 && !in_active[j] {
                in_active[j] = true;
                active.push(j);
            }
        }
        sweeps += 1;
        if max_delta < tol {
            break;
        }
        // Inner sweeps: only the active set, until it stabilizes.
        while sweeps < max_iter {
            let mut inner_delta = 0.0f64;
            for &j in &active {
                inner_delta = inner_delta.max(update(j, &mut x, &mut resid));
            }
            sweeps += 1;
            if inner_delta < tol {
                break;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matvec_basics() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.transpose_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn least_squares_exact_square_system() {
        // [2 0; 0 3] x = [4, 9] -> x = [2, 3]
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 3.0]);
        let x = least_squares(&a, &[4.0, 9.0]);
        assert_close(&x, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_recovers_truth() {
        // y = 3 a - 2 b with noise-free rows.
        let mut rng = StdRng::seed_from_u64(42);
        let m = 50;
        let mut data = Vec::with_capacity(m * 2);
        let mut b = Vec::with_capacity(m);
        for _ in 0..m {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            data.push(u);
            data.push(v);
            b.push(3.0 * u - 2.0 * v);
        }
        let a = Matrix::from_vec(m, 2, data);
        let x = least_squares(&a, &b);
        assert_close(&x, &[3.0, -2.0], 1e-8);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Compare residual against small perturbations of the solution.
        let a = Matrix::from_vec(4, 2, vec![1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0]);
        let b = [6.0, 5.0, 7.0, 10.0];
        let x = least_squares(&a, &b);
        let res = |x: &[f64]| -> f64 {
            a.matvec(x)
                .iter()
                .zip(&b)
                .map(|(p, y)| (p - y).powi(2))
                .sum()
        };
        let base = res(&x);
        for d in [-0.01, 0.01] {
            for k in 0..2 {
                let mut xp = x.clone();
                xp[k] += d;
                assert!(res(&xp) >= base - 1e-9);
            }
        }
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let b = [3.0, 3.0, 3.0];
        let ols = least_squares(&a, &b);
        let r1 = ridge(&a, &b, 1.0);
        let r10 = ridge(&a, &b, 10.0);
        assert!((ols[0] - 3.0).abs() < 1e-10);
        assert!(r1[0] < ols[0]);
        assert!(r10[0] < r1[0]);
        assert!(r10[0] > 0.0);
    }

    #[test]
    fn lasso_recovers_sparse_signal() {
        // 40 candidates, 3 truly active; 60 observations.
        let mut rng = StdRng::seed_from_u64(1);
        let (m, n) = (60, 40);
        let mut data = vec![0.0; m * n];
        for v in data.iter_mut() {
            *v = if rng.gen_bool(0.3) { 1.0 } else { 0.0 };
        }
        let a = Matrix::from_vec(m, n, data);
        let mut truth = vec![0.0; n];
        truth[3] = 10.0;
        truth[17] = 6.0;
        truth[29] = 8.0;
        let b = a.matvec(&truth);
        let x = lasso(&a, &b, 0.5, true, 500, 1e-9);
        // Active coordinates should dominate.
        for (j, (&xi, &ti)) in x.iter().zip(&truth).enumerate() {
            if ti > 0.0 {
                assert!(xi > ti * 0.5, "missed active coord {j}: {xi}");
            } else {
                assert!(xi < 1.5, "spurious coord {j}: {xi}");
            }
        }
    }

    #[test]
    fn lasso_zero_lambda_close_to_ols() {
        let a = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, -1.0]);
        let b = [2.0, 1.0, 3.0, 1.0];
        let ols = least_squares(&a, &b);
        let l0 = lasso(&a, &b, 0.0, false, 2000, 1e-12);
        assert_close(&l0, &ols, 1e-6);
    }

    #[test]
    fn lasso_nonnegative_clamps() {
        // Truth is negative; non-negative LASSO must return 0, not negative.
        let a = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let b = [-5.0, -5.0];
        let x = lasso(&a, &b, 0.1, true, 100, 1e-10);
        assert_eq!(x[0], 0.0);
        let x_free = lasso(&a, &b, 0.1, false, 100, 1e-10);
        assert!(x_free[0] < -4.0);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn least_squares_dim_mismatch_panics() {
        let a = Matrix::zeros(3, 2);
        least_squares(&a, &[1.0, 2.0]);
    }

    #[test]
    fn col_norms_sq_matches_per_column_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, n) = (37, 11);
        let data: Vec<f64> = (0..m * n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let a = Matrix::from_vec(m, n, data);
        let all = a.col_norms_sq();
        for (c, &v) in all.iter().enumerate() {
            assert_eq!(v.to_bits(), a.col_norm_sq(c).to_bits(), "column {c}");
        }
    }

    fn random_binary(m: usize, n: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0.0; m * n];
        for v in data.iter_mut() {
            *v = if rng.gen_bool(density) { 1.0 } else { 0.0 };
        }
        Matrix::from_vec(m, n, data)
    }

    #[test]
    fn sparse_roundtrip_and_matvec() {
        let a = random_binary(23, 9, 0.2, 5);
        let s = SparseColMatrix::from_dense(&a);
        assert_eq!(s.rows(), 23);
        assert_eq!(s.cols(), 9);
        assert_eq!(s.to_dense(), a);
        let x: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let dense_y = a.matvec(&x);
        let sparse_y = s.matvec(&x);
        assert_close(&sparse_y, &dense_y, 1e-12);
    }

    #[test]
    fn sparse_from_columns_sorts_and_dedups() {
        let s = SparseColMatrix::from_columns(6, &[vec![5, 1, 1, 3], vec![]]);
        assert_eq!(s.col(0), &[1, 3, 5]);
        assert_eq!(s.col(1), &[] as &[u32]);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_rejects_out_of_range_rows() {
        SparseColMatrix::from_columns(4, &[vec![4]]);
    }

    #[test]
    fn lasso_sparse_matches_dense_on_rappor_shaped_problems() {
        // Tall sparse binary design, sparse non-negative ground truth —
        // the RAPPOR decode shape. The two solvers must select the same
        // support and agree to well within the convergence tolerance.
        for seed in [11u64, 12, 13] {
            let (m, n) = (96, 200);
            let a = random_binary(m, n, 0.05, seed);
            let s = SparseColMatrix::from_dense(&a);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
            let mut truth = vec![0.0; n];
            for _ in 0..5 {
                truth[rng.gen_range(0..n)] = rng.gen_range(5.0..50.0);
            }
            let mut b = a.matvec(&truth);
            for v in b.iter_mut() {
                *v += rng.gen_range(-0.5..0.5);
            }
            let lambda = 2.0;
            let dense = lasso(&a, &b, lambda, true, 500, 1e-9);
            let sparse = lasso_sparse(&s, &b, lambda, true, 500, 1e-9);
            for j in 0..n {
                assert!(
                    (dense[j] - sparse[j]).abs() < 1e-6,
                    "seed {seed} coord {j}: dense {} vs sparse {}",
                    dense[j],
                    sparse[j]
                );
                assert_eq!(
                    dense[j].abs() > 1e-9,
                    sparse[j].abs() > 1e-9,
                    "seed {seed} coord {j}: support mismatch"
                );
            }
        }
    }

    #[test]
    fn lasso_sparse_single_full_sweep_is_bit_identical_to_dense() {
        // With max_iter = 1 both solvers run exactly one cyclic sweep in
        // the same coordinate order with the same 0/1 arithmetic, so the
        // results must match to the bit.
        let a = random_binary(48, 60, 0.1, 21);
        let s = SparseColMatrix::from_dense(&a);
        let b: Vec<f64> = (0..48).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let dense = lasso(&a, &b, 1.5, true, 1, 0.0);
        let sparse = lasso_sparse(&s, &b, 1.5, true, 1, 0.0);
        for j in 0..60 {
            assert_eq!(dense[j].to_bits(), sparse[j].to_bits(), "coord {j}");
        }
    }
}
