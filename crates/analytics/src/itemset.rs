//! Set-valued data: frequency estimation when each user holds a *set* of
//! items (Qin et al., "Heavy Hitter Estimation over Set-Valued Data with
//! Local Differential Privacy", CCS 2016 — reference \[19\] of the
//! tutorial).
//!
//! The new difficulty: a user's record is a variable-size set (apps
//! installed, URLs visited), so naive per-item reporting either leaks the
//! set size or forces the budget to be split across an unbounded number
//! of items. The LDPMiner recipe:
//!
//! 1. **Padding and sampling** ([`PaddingSampleOracle`]): pad every set
//!    to a fixed size `l` with dummy items (truncating larger sets),
//!    sample *one* uniformly random element of the padded set, and report
//!    it through a standard frequency oracle at full ε. The estimate is
//!    rescaled by `l`. Sampling keeps sensitivity at one report; padding
//!    hides the set size.
//! 2. **Two-phase mining** ([`LdpMiner`]): phase 1 uses
//!    padding-and-sampling on half the users to find a candidate set of
//!    heavy items; phase 2 asks the rest to report, again via
//!    pad-and-sample, their intersection with the (small) candidate set —
//!    a much smaller domain, so the final estimates are sharp.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// Padding-and-sampling frequency oracle for set-valued records.
///
/// The reserved dummy item is encoded as domain value `d` (so the
/// underlying oracle runs over `d + 1` values).
#[derive(Debug, Clone, Copy)]
pub struct PaddingSampleOracle {
    d: u64,
    pad_to: usize,
    epsilon: Epsilon,
}

impl PaddingSampleOracle {
    /// Creates the oracle over item domain `[0, d)` with padding length
    /// `pad_to`.
    ///
    /// # Errors
    /// Rejects `d < 2` or `pad_to == 0`.
    pub fn new(d: u64, pad_to: usize, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!("need d >= 2, got {d}")));
        }
        if pad_to == 0 {
            return Err(Error::InvalidParameter("pad_to must be positive".into()));
        }
        Ok(Self { d, pad_to, epsilon })
    }

    /// The padding length `l`.
    pub fn pad_to(&self) -> usize {
        self.pad_to
    }

    /// Client side: sample one element of the padded set and privatize
    /// it. Sets larger than `pad_to` are truncated (uniformly sampled
    /// within the first `pad_to` after an implicit shuffle via sampling).
    ///
    /// # Panics
    /// Panics if any item is outside the domain.
    pub fn randomize<R: Rng>(&self, set: &[u64], rng: &mut R) -> ldp_core::fo::hashing::LhReport {
        for &item in set {
            assert!(item < self.d, "item {item} outside domain {}", self.d);
        }
        let effective = set.len().min(self.pad_to);
        // Sample a slot in the padded set; slots >= |set| are dummies.
        let slot = rng.gen_range(0..self.pad_to);
        let value = if slot < effective {
            // Uniform element of the (possibly truncated) set.
            set[rng.gen_range(0..effective)]
        } else {
            self.d // dummy
        };
        let oracle = OptimizedLocalHashing::new(self.d + 1, self.epsilon);
        oracle.randomize(value, rng)
    }

    /// Creates the matching aggregator.
    pub fn new_aggregator(&self) -> PaddingSampleAggregator {
        let oracle = OptimizedLocalHashing::new(self.d + 1, self.epsilon);
        PaddingSampleAggregator {
            inner: oracle.new_aggregator(),
            d: self.d,
            pad_to: self.pad_to,
        }
    }
}

/// Aggregator for [`PaddingSampleOracle`].
#[derive(Debug, Clone)]
pub struct PaddingSampleAggregator {
    inner: ldp_core::fo::hashing::LhAggregator,
    d: u64,
    pad_to: usize,
}

impl PaddingSampleAggregator {
    /// Folds one report in.
    pub fn accumulate(&mut self, report: &ldp_core::fo::hashing::LhReport) {
        self.inner.accumulate(report);
    }

    /// Reports accumulated.
    pub fn reports(&self) -> usize {
        self.inner.reports()
    }

    /// Estimated number of users whose set contains each queried item:
    /// oracle estimate × `pad_to` (undoing the 1-of-l sampling).
    ///
    /// Items with true multiplicity above `pad_to` per set are
    /// underestimated by the truncation — the bias the padding length
    /// trades against variance.
    pub fn estimate_items(&self, items: &[u64]) -> Vec<f64> {
        debug_assert!(items.iter().all(|&i| i < self.d));
        self.inner
            .estimate_items(items)
            .into_iter()
            .map(|e| e * self.pad_to as f64)
            .collect()
    }
}

/// A discovered heavy item with its estimated support count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyItem {
    /// The item.
    pub item: u64,
    /// Estimated number of users whose set contains it.
    pub estimate: f64,
}

/// The two-phase LDPMiner protocol.
#[derive(Debug, Clone, Copy)]
pub struct LdpMiner {
    d: u64,
    pad_to: usize,
    k: usize,
    epsilon: Epsilon,
}

impl LdpMiner {
    /// Creates the miner: item domain `[0, d)`, padding length, and the
    /// number of heavy items to return.
    ///
    /// # Errors
    /// Propagates [`PaddingSampleOracle`] validation; rejects `k == 0`.
    pub fn new(d: u64, pad_to: usize, k: usize, epsilon: Epsilon) -> Result<Self> {
        PaddingSampleOracle::new(d, pad_to, epsilon)?;
        if k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        Ok(Self {
            d,
            pad_to,
            k,
            epsilon,
        })
    }

    /// Runs both phases over the users' sets (each user participates in
    /// exactly one phase, by index parity). Returns up to `k` heavy
    /// items, sorted by estimate descending, with phase-2 sharpened
    /// estimates scaled to the full population.
    pub fn run<R: Rng>(&self, sets: &[Vec<u64>], rng: &mut R) -> Vec<HeavyItem> {
        if sets.is_empty() {
            return Vec::new();
        }
        let (phase1, phase2): (Vec<_>, Vec<_>) =
            sets.iter().enumerate().partition(|(i, _)| i % 2 == 0);

        // ---- Phase 1: candidate discovery over the full domain. ----
        let oracle1 =
            PaddingSampleOracle::new(self.d, self.pad_to, self.epsilon).expect("validated");
        let mut agg1 = oracle1.new_aggregator();
        for (_, set) in &phase1 {
            agg1.accumulate(&oracle1.randomize(set, rng));
        }
        let all_items: Vec<u64> = (0..self.d).collect();
        let est1 = agg1.estimate_items(&all_items);
        let mut ranked: Vec<u64> = all_items;
        ranked.sort_by(|&a, &b| est1[b as usize].total_cmp(&est1[a as usize]));
        // Candidate set: 2k items to survive phase-1 noise.
        let candidates: Vec<u64> = ranked.into_iter().take(2 * self.k).collect();

        // ---- Phase 2: re-estimate over the candidate domain. ----
        // Users project their set onto the candidates (mapping to local
        // indices) and pad-and-sample over the small domain.
        let cd = candidates.len() as u64;
        let oracle2 =
            PaddingSampleOracle::new(cd.max(2), self.pad_to, self.epsilon).expect("validated");
        let mut agg2 = oracle2.new_aggregator();
        for (_, set) in &phase2 {
            let projected: Vec<u64> = set
                .iter()
                .filter_map(|item| candidates.iter().position(|&c| c == *item))
                .map(|i| i as u64)
                .collect();
            agg2.accumulate(&oracle2.randomize(&projected, rng));
        }
        let local: Vec<u64> = (0..cd).collect();
        let est2 = agg2.estimate_items(&local);
        let scale = sets.len() as f64 / phase2.len().max(1) as f64;

        let mut out: Vec<HeavyItem> = candidates
            .iter()
            .zip(&est2)
            .map(|(&item, &e)| HeavyItem {
                item,
                estimate: e * scale,
            })
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate));
        out.truncate(self.k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Synthetic app-install sets: everyone has item 0 w.p. 0.8, item 1
    /// w.p. 0.5, item 2 w.p. 0.2; plus one random tail item.
    fn sets(n: usize, d: u64, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut s = Vec::new();
                if rng.gen_bool(0.8) {
                    s.push(0);
                }
                if rng.gen_bool(0.5) {
                    s.push(1);
                }
                if rng.gen_bool(0.2) {
                    s.push(2);
                }
                s.push(rng.gen_range(3..d));
                s
            })
            .collect()
    }

    #[test]
    fn padding_sample_estimates_support() {
        let oracle = PaddingSampleOracle::new(64, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = sets(60_000, 64, 7);
        let mut agg = oracle.new_aggregator();
        for s in &data {
            agg.accumulate(&oracle.randomize(s, &mut rng));
        }
        let est = agg.estimate_items(&[0, 1, 2]);
        let n = data.len() as f64;
        // True supports ~ 0.8n, 0.5n, 0.2n.
        assert!((est[0] - 0.8 * n).abs() < 0.12 * n, "item0 {}", est[0]);
        assert!((est[1] - 0.5 * n).abs() < 0.12 * n, "item1 {}", est[1]);
        assert!((est[2] - 0.2 * n).abs() < 0.12 * n, "item2 {}", est[2]);
    }

    #[test]
    fn empty_sets_report_dummies_only() {
        let oracle = PaddingSampleOracle::new(16, 2, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut agg = oracle.new_aggregator();
        for _ in 0..20_000 {
            agg.accumulate(&oracle.randomize(&[], &mut rng));
        }
        let est = agg.estimate_items(&(0..16).collect::<Vec<_>>());
        let sd =
            (2.0 * OptimizedLocalHashing::new(17, eps(2.0)).noise_floor_variance(20_000)).sqrt();
        for (i, &e) in est.iter().enumerate() {
            assert!(e.abs() < 5.0 * sd, "item {i}: {e}");
        }
    }

    #[test]
    fn truncation_bounds_large_sets() {
        // A set larger than pad_to must not crash and contributes at most
        // pad_to item-slots.
        let oracle = PaddingSampleOracle::new(32, 2, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let big: Vec<u64> = (0..20).collect();
        for _ in 0..100 {
            oracle.randomize(&big, &mut rng);
        }
    }

    #[test]
    fn miner_finds_heavy_items() {
        let miner = LdpMiner::new(128, 4, 3, eps(3.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let data = sets(80_000, 128, 11);
        let found = miner.run(&data, &mut rng);
        assert_eq!(found.len(), 3);
        let items: Vec<u64> = found.iter().map(|h| h.item).collect();
        assert!(items.contains(&0), "item 0 missing: {found:?}");
        assert!(items.contains(&1), "item 1 missing: {found:?}");
        // Estimates ordered and plausible.
        assert!(found[0].estimate >= found[1].estimate);
        assert!(
            (found[0].estimate - 0.8 * data.len() as f64).abs() < 0.2 * data.len() as f64,
            "top estimate {}",
            found[0].estimate
        );
    }

    #[test]
    fn validation() {
        assert!(PaddingSampleOracle::new(1, 2, eps(1.0)).is_err());
        assert!(PaddingSampleOracle::new(8, 0, eps(1.0)).is_err());
        assert!(LdpMiner::new(8, 2, 0, eps(1.0)).is_err());
    }

    #[test]
    fn empty_population() {
        let miner = LdpMiner::new(16, 2, 3, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(miner.run(&[], &mut rng).is_empty());
    }

    use ldp_core::fo::{FrequencyOracle, OptimizedLocalHashing};
}
