//! Private language modeling: n-gram statistics under LDP.
//!
//! §1.3's last research direction: "build better prediction models e.g.
//! for typing on mobile devices". The deep-learning route (McMahan et
//! al. \[17\]) needs a federated-learning substrate; the tutorial's LDP
//! toolkit supports the classical counterpart, which this module
//! implements: collect **bigram transition counts** privately, normalize
//! them into a Markov model, and use it for next-token prediction — the
//! backbone of a keyboard suggestion engine.
//!
//! Protocol: each user contributes one (sampled) bigram from their text
//! through OLH over the `V²` bigram space (constant-size reports, the
//! sketching insight from Apple's deployment applies unchanged). The
//! server debiases, clamps and row-normalizes into transition
//! probabilities.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::postprocess::normalize_to_total;
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// A privately estimated first-order Markov (bigram) language model over
/// a vocabulary `[0, v)`.
#[derive(Debug, Clone)]
pub struct BigramModel {
    vocab: u64,
    /// `transitions[a][b]` = P(next = b | current = a).
    transitions: Vec<Vec<f64>>,
}

impl BigramModel {
    /// Vocabulary size.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }

    /// The transition probability `P(b | a)`.
    ///
    /// # Panics
    /// Panics if either token is out of vocabulary.
    pub fn transition(&self, a: u64, b: u64) -> f64 {
        assert!(a < self.vocab && b < self.vocab, "token out of vocabulary");
        self.transitions[a as usize][b as usize]
    }

    /// Top-`k` predicted next tokens after `a`, most probable first.
    pub fn predict(&self, a: u64, k: usize) -> Vec<u64> {
        assert!(a < self.vocab, "token out of vocabulary");
        let mut idx: Vec<u64> = (0..self.vocab).collect();
        idx.sort_by(|&x, &y| {
            self.transitions[a as usize][y as usize]
                .total_cmp(&self.transitions[a as usize][x as usize])
        });
        idx.truncate(k);
        idx
    }

    /// Perplexity of the model on a token sequence (lower is better);
    /// probabilities are floored at `1e-6` to stay finite.
    pub fn perplexity(&self, text: &[u64]) -> f64 {
        if text.len() < 2 {
            return 1.0;
        }
        let log_sum: f64 = text
            .windows(2)
            .map(|w| self.transition(w[0], w[1]).max(1e-6).ln())
            .sum();
        (-log_sum / (text.len() - 1) as f64).exp()
    }
}

/// The private bigram collection protocol.
#[derive(Debug, Clone, Copy)]
pub struct PrivateBigramCollector {
    vocab: u64,
    epsilon: Epsilon,
}

impl PrivateBigramCollector {
    /// Creates the collector for a vocabulary `[0, v)`.
    ///
    /// # Errors
    /// Rejects `v < 2` or vocabularies whose bigram space exceeds 2^32.
    pub fn new(vocab: u64, epsilon: Epsilon) -> Result<Self> {
        if vocab < 2 {
            return Err(Error::InvalidDomain(format!(
                "need vocab >= 2, got {vocab}"
            )));
        }
        if vocab.checked_mul(vocab).is_none() || vocab * vocab > (1 << 32) {
            return Err(Error::InvalidDomain(format!(
                "bigram space {vocab}^2 too large; use a sketch-backed collector"
            )));
        }
        Ok(Self { vocab, epsilon })
    }

    /// Client side: sample one bigram from the user's text and privatize
    /// it. Returns `None` for texts shorter than two tokens.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary tokens.
    pub fn randomize<R: Rng>(
        &self,
        text: &[u64],
        rng: &mut R,
    ) -> Option<ldp_core::fo::hashing::LhReport> {
        if text.len() < 2 {
            return None;
        }
        for &t in text {
            assert!(t < self.vocab, "token {t} out of vocabulary {}", self.vocab);
        }
        let i = rng.gen_range(0..text.len() - 1);
        let bigram = text[i] * self.vocab + text[i + 1];
        let oracle = OptimizedLocalHashing::new(self.vocab * self.vocab, self.epsilon);
        Some(oracle.randomize(bigram, rng))
    }

    /// Server side: aggregates reports into a row-normalized bigram model
    /// with Jelinek–Mercer smoothing (`λ = 0.1` mixed with uniform) —
    /// debiased LDP counts clamp rare transitions to zero, and unsmoothed
    /// zeros would make perplexity explode on held-out text.
    pub fn build_model(&self, reports: &[ldp_core::fo::hashing::LhReport]) -> BigramModel {
        self.build_model_smoothed(reports, 0.1)
    }

    /// [`build_model`](Self::build_model) with an explicit smoothing
    /// weight `λ ∈ [0, 1]`: `P(b|a) = (1−λ)·P̂(b|a) + λ/v`.
    ///
    /// # Panics
    /// Panics if `λ` is outside `[0, 1]`.
    pub fn build_model_smoothed(
        &self,
        reports: &[ldp_core::fo::hashing::LhReport],
        lambda: f64,
    ) -> BigramModel {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        let oracle = OptimizedLocalHashing::new(self.vocab * self.vocab, self.epsilon);
        let mut agg = oracle.new_aggregator();
        for r in reports {
            agg.accumulate(r);
        }
        let v = self.vocab as usize;
        let mut transitions = Vec::with_capacity(v);
        for a in 0..v {
            let row_items: Vec<u64> = (0..v).map(|b| (a * v + b) as u64).collect();
            let row_counts = agg.estimate_items(&row_items);
            let row = normalize_to_total(&row_counts, 1.0);
            let total: f64 = row.iter().sum();
            let uniform = 1.0 / v as f64;
            if total <= 0.0 {
                transitions.push(vec![uniform; v]);
            } else {
                transitions.push(
                    row.iter()
                        .map(|&p| (1.0 - lambda) * p + lambda * uniform)
                        .collect(),
                );
            }
        }
        BigramModel {
            vocab: self.vocab,
            transitions,
        }
    }
}

/// Exact (non-private) bigram model from raw texts — the fidelity
/// ceiling for experiments.
pub fn exact_bigram_model(texts: &[Vec<u64>], vocab: u64) -> BigramModel {
    let v = vocab as usize;
    let mut counts = vec![vec![0.0f64; v]; v];
    for text in texts {
        for w in text.windows(2) {
            counts[w[0] as usize][w[1] as usize] += 1.0;
        }
    }
    let transitions = counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                vec![1.0 / v as f64; v]
            } else {
                row.into_iter().map(|c| c / total).collect()
            }
        })
        .collect();
    BigramModel { vocab, transitions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Synthetic "texts" over a 12-token vocabulary with a strong pattern:
    /// token t is usually followed by (t+1) mod 12.
    fn texts(n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut t = rng.gen_range(0..12u64);
                let mut out = vec![t];
                for _ in 0..10 {
                    t = if rng.gen_bool(0.8) {
                        (t + 1) % 12
                    } else {
                        rng.gen_range(0..12)
                    };
                    out.push(t);
                }
                out
            })
            .collect()
    }

    #[test]
    fn exact_model_learns_pattern() {
        let model = exact_bigram_model(&texts(2000, 1), 12);
        for a in 0..12u64 {
            assert!(model.transition(a, (a + 1) % 12) > 0.5, "token {a}");
            assert_eq!(model.predict(a, 1)[0], (a + 1) % 12);
        }
    }

    #[test]
    fn private_model_learns_pattern() {
        let collector = PrivateBigramCollector::new(12, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data = texts(60_000, 3);
        let reports: Vec<_> = data
            .iter()
            .filter_map(|t| collector.randomize(t, &mut rng))
            .collect();
        let model = collector.build_model(&reports);
        let mut hits = 0;
        for a in 0..12u64 {
            if model.predict(a, 1)[0] == (a + 1) % 12 {
                hits += 1;
            }
        }
        assert!(hits >= 10, "next-token prediction hits: {hits}/12");
    }

    #[test]
    fn private_perplexity_near_exact() {
        let collector = PrivateBigramCollector::new(12, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let data = texts(60_000, 5);
        let reports: Vec<_> = data
            .iter()
            .filter_map(|t| collector.randomize(t, &mut rng))
            .collect();
        let private = collector.build_model(&reports);
        let exact = exact_bigram_model(&data, 12);
        let test = texts(50, 77);
        let flat: Vec<u64> = test.concat();
        let (pp, pe) = (private.perplexity(&flat), exact.perplexity(&flat));
        assert!(pp < pe * 1.8, "private {pp} vs exact {pe}");
        // Both far better than uniform (perplexity 12).
        assert!(pp < 9.0, "private perplexity {pp}");
    }

    #[test]
    fn rows_are_distributions() {
        let collector = PrivateBigramCollector::new(6, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let data = texts(5000, 7)
            .into_iter()
            .map(|t| t.into_iter().map(|x| x % 6).collect::<Vec<_>>())
            .collect::<Vec<_>>();
        let reports: Vec<_> = data
            .iter()
            .filter_map(|t| collector.randomize(t, &mut rng))
            .collect();
        let model = collector.build_model(&reports);
        for a in 0..6u64 {
            let row_sum: f64 = (0..6).map(|b| model.transition(a, b)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {a} sums to {row_sum}");
        }
    }

    #[test]
    fn short_texts_skipped() {
        let collector = PrivateBigramCollector::new(4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(collector.randomize(&[], &mut rng).is_none());
        assert!(collector.randomize(&[1], &mut rng).is_none());
        assert!(collector.randomize(&[1, 2], &mut rng).is_some());
    }

    #[test]
    fn validation() {
        assert!(PrivateBigramCollector::new(1, eps(1.0)).is_err());
        assert!(PrivateBigramCollector::new(1 << 20, eps(1.0)).is_err());
    }
}
