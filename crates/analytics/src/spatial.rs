//! Private location collection: grids, range queries, hot spots.
//!
//! §1.3's first research direction. Users hold points in `[0,1]²`; the
//! aggregator wants spatial density — for rectilinear ("how many users in
//! this rectangle?") queries and hot-spot detection — without learning any
//! individual location. Following Chen et al. (ICDE 2016), space is
//! discretized into a grid and cell occupancy becomes a frequency-oracle
//! problem:
//!
//! * [`UniformGrid`] — a `g × g` grid collected through OLH; supports
//!   unbiased rectilinear range queries (with fractional cell weighting)
//!   and top-k hot-spot extraction.
//! * [`AdaptiveGrid`] — a two-round refinement: a coarse pass with half
//!   the users finds dense cells; the second half's budget is spent
//!   subdividing only those, improving hot-spot resolution for the same ε
//!   (the granularity trade-off experiment E8 sweeps).

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// A point in the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// Creates a point, validating both coordinates.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if a coordinate leaves `[0,1]`.
    pub fn new(x: f64, y: f64) -> Result<Self> {
        if !((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y)) {
            return Err(Error::InvalidParameter(format!(
                "point ({x}, {y}) outside unit square"
            )));
        }
        Ok(Self { x, y })
    }
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` inside the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle, validating ordering and bounds.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] for inverted or out-of-range
    /// rectangles.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self> {
        if !(0.0 <= x0 && x0 <= x1 && x1 <= 1.0 && 0.0 <= y0 && y0 <= y1 && y1 <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "invalid rectangle [{x0},{x1}]x[{y0},{y1}]"
            )));
        }
        Ok(Self { x0, y0, x1, y1 })
    }

    fn overlap_1d(lo: f64, hi: f64, cell_lo: f64, cell_hi: f64) -> f64 {
        let inter = (hi.min(cell_hi) - lo.max(cell_lo)).max(0.0);
        let width = cell_hi - cell_lo;
        if width <= 0.0 {
            0.0
        } else {
            inter / width
        }
    }
}

/// A `g × g` uniform grid collected privately through OLH.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    g: u32,
    epsilon: Epsilon,
    oracle: OptimizedLocalHashing,
}

impl UniformGrid {
    /// Creates a grid of `g × g` cells.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] unless `1 ≤ g ≤ 256`.
    pub fn new(g: u32, epsilon: Epsilon) -> Result<Self> {
        if g == 0 || g > 256 {
            return Err(Error::InvalidParameter(format!(
                "g must be in [1, 256], got {g}"
            )));
        }
        Ok(Self {
            g,
            epsilon,
            oracle: OptimizedLocalHashing::new(g as u64 * g as u64, epsilon),
        })
    }

    /// Grid granularity `g`.
    pub fn granularity(&self) -> u32 {
        self.g
    }

    /// Per-user privacy budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The cell index of a point (row-major).
    pub fn cell_of(&self, p: Point) -> u64 {
        let g = self.g as f64;
        let cx = ((p.x * g) as u32).min(self.g - 1);
        let cy = ((p.y * g) as u32).min(self.g - 1);
        (cy * self.g + cx) as u64
    }

    /// Collects the grid: each user reports their cell through OLH.
    /// Returns a [`GridEstimate`].
    pub fn collect<R: Rng>(&self, points: &[Point], rng: &mut R) -> GridEstimate {
        let mut agg = self.oracle.new_aggregator();
        for &p in points {
            agg.accumulate(&self.oracle.randomize(self.cell_of(p), rng));
        }
        GridEstimate {
            g: self.g,
            counts: agg.estimate(),
            n: points.len(),
        }
    }

    /// Analytical per-cell count variance (noise floor) for `n` users.
    pub fn cell_variance(&self, n: usize) -> f64 {
        self.oracle.noise_floor_variance(n)
    }
}

/// The decoded density grid.
#[derive(Debug, Clone)]
pub struct GridEstimate {
    g: u32,
    counts: Vec<f64>,
    n: usize,
}

impl GridEstimate {
    /// Estimated count in cell `(cx, cy)`.
    ///
    /// # Panics
    /// Panics if the cell is out of range.
    pub fn cell(&self, cx: u32, cy: u32) -> f64 {
        assert!(cx < self.g && cy < self.g, "cell out of range");
        self.counts[(cy * self.g + cx) as usize]
    }

    /// All estimated counts, row-major.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Reports collected.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Unbiased rectilinear range query: sums cells weighted by their
    /// fractional overlap with `rect` (the uniformity-within-cell
    /// approximation standard in grid methods).
    pub fn range_query(&self, rect: Rect) -> f64 {
        let g = self.g as f64;
        let mut total = 0.0;
        for cy in 0..self.g {
            let (cy0, cy1) = (cy as f64 / g, (cy + 1) as f64 / g);
            let wy = Rect::overlap_1d(rect.y0, rect.y1, cy0, cy1);
            if wy == 0.0 {
                continue;
            }
            for cx in 0..self.g {
                let (cx0, cx1) = (cx as f64 / g, (cx + 1) as f64 / g);
                let wx = Rect::overlap_1d(rect.x0, rect.x1, cx0, cx1);
                if wx > 0.0 {
                    total += wx * wy * self.cell(cx, cy);
                }
            }
        }
        total
    }

    /// The `k` densest cells as `(cx, cy, estimate)`, descending.
    pub fn hot_spots(&self, k: usize) -> Vec<(u32, u32, f64)> {
        let mut cells: Vec<(u32, u32, f64)> = (0..self.counts.len())
            .map(|i| {
                let cy = i as u32 / self.g;
                let cx = i as u32 % self.g;
                (cx, cy, self.counts[i])
            })
            .collect();
        cells.sort_by(|a, b| b.2.total_cmp(&a.2));
        cells.truncate(k);
        cells
    }
}

/// Two-round adaptive grid: coarse pass, then subdivision of dense cells.
#[derive(Debug, Clone)]
pub struct AdaptiveGrid {
    coarse_g: u32,
    refine_factor: u32,
    dense_cells: usize,
    epsilon: Epsilon,
}

/// The adaptive estimate: the coarse grid plus refined sub-grids for the
/// selected dense cells.
#[derive(Debug, Clone)]
pub struct AdaptiveEstimate {
    /// Coarse-level estimate.
    pub coarse: GridEstimate,
    /// Refined cells: `(cx, cy, sub-grid counts)` where the sub-grid is
    /// `refine_factor × refine_factor`, scaled to full-population counts.
    pub refined: Vec<(u32, u32, Vec<f64>)>,
    refine_factor: u32,
}

impl AdaptiveGrid {
    /// Creates the two-round protocol: a `coarse_g²` first round, then
    /// the top `dense_cells` cells subdivided `refine_factor ×`.
    ///
    /// # Errors
    /// Validates each granularity like [`UniformGrid::new`].
    pub fn new(
        coarse_g: u32,
        refine_factor: u32,
        dense_cells: usize,
        epsilon: Epsilon,
    ) -> Result<Self> {
        if coarse_g == 0 || coarse_g > 64 || !(2..=16).contains(&refine_factor) {
            return Err(Error::InvalidParameter(
                "need 1 <= coarse_g <= 64 and 2 <= refine_factor <= 16".into(),
            ));
        }
        if dense_cells == 0 {
            return Err(Error::InvalidParameter(
                "dense_cells must be positive".into(),
            ));
        }
        Ok(Self {
            coarse_g,
            refine_factor,
            dense_cells,
            epsilon,
        })
    }

    /// Runs both rounds, splitting users half/half.
    ///
    /// # Errors
    /// Propagates grid construction failures (cannot occur for validated
    /// parameters).
    pub fn collect<R: Rng>(&self, points: &[Point], rng: &mut R) -> Result<AdaptiveEstimate> {
        let half = points.len() / 2;
        let (first, second) = points.split_at(half);

        let coarse_grid = UniformGrid::new(self.coarse_g, self.epsilon)?;
        let mut coarse = coarse_grid.collect(first, rng);
        // Scale round-1 estimates to the full population.
        let scale1 = points.len() as f64 / first.len().max(1) as f64;
        for c in coarse.counts.iter_mut() {
            *c *= scale1;
        }
        coarse.n = points.len();

        let dense = coarse.hot_spots(self.dense_cells);

        // Round 2: users in a dense cell report (dense index, sub-cell);
        // others report a reserved "elsewhere" value.
        let rf = self.refine_factor;
        let sub_domain = dense.len() as u64 * (rf as u64 * rf as u64);
        let oracle = OptimizedLocalHashing::new(sub_domain + 1, self.epsilon);
        let mut agg = oracle.new_aggregator();
        let g = self.coarse_g as f64;
        let locate = |p: &Point| -> u64 {
            for (i, &(cx, cy, _)) in dense.iter().enumerate() {
                let (x0, y0) = (cx as f64 / g, cy as f64 / g);
                let (x1, y1) = ((cx + 1) as f64 / g, (cy + 1) as f64 / g);
                if p.x >= x0 && p.x < x1 + 1e-12 && p.y >= y0 && p.y < y1 + 1e-12 {
                    let sx = (((p.x - x0) / (x1 - x0) * rf as f64) as u32).min(rf - 1);
                    let sy = (((p.y - y0) / (y1 - y0) * rf as f64) as u32).min(rf - 1);
                    return i as u64 * (rf as u64 * rf as u64) + (sy * rf + sx) as u64;
                }
            }
            sub_domain // elsewhere
        };
        for p in second {
            agg.accumulate(&oracle.randomize(locate(p), rng));
        }
        let items: Vec<u64> = (0..sub_domain).collect();
        let sub_counts = agg.estimate_items(&items);
        let scale2 = points.len() as f64 / second.len().max(1) as f64;

        let refined = dense
            .iter()
            .enumerate()
            .map(|(i, &(cx, cy, _))| {
                let base = i * (rf as usize * rf as usize);
                let cells: Vec<f64> = sub_counts[base..base + (rf as usize * rf as usize)]
                    .iter()
                    .map(|&c| c * scale2)
                    .collect();
                (cx, cy, cells)
            })
            .collect();

        Ok(AdaptiveEstimate {
            coarse,
            refined,
            refine_factor: rf,
        })
    }
}

impl AdaptiveEstimate {
    /// The densest refined sub-cell overall, as
    /// `(coarse cx, coarse cy, sub cx, sub cy, estimate)`.
    pub fn peak(&self) -> Option<(u32, u32, u32, u32, f64)> {
        let rf = self.refine_factor;
        self.refined
            .iter()
            .flat_map(|(cx, cy, cells)| {
                cells
                    .iter()
                    .enumerate()
                    .map(move |(i, &c)| (*cx, *cy, i as u32 % rf, i as u32 / rf, c))
            })
            .max_by(|a, b| a.4.total_cmp(&b.4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Gaussian blob around (mx, my), clipped to the unit square.
    fn blob(n: usize, mx: f64, my: f64, sd: f64, rng: &mut StdRng) -> Vec<Point> {
        (0..n)
            .map(|_| {
                // Box-Muller.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt();
                let (dx, dy) = (
                    r * (2.0 * std::f64::consts::PI * u2).cos(),
                    r * (2.0 * std::f64::consts::PI * u2).sin(),
                );
                Point {
                    x: (mx + sd * dx).clamp(0.0, 1.0),
                    y: (my + sd * dy).clamp(0.0, 1.0),
                }
            })
            .collect()
    }

    #[test]
    fn cell_of_respects_bounds() {
        let grid = UniformGrid::new(4, eps(1.0)).unwrap();
        assert_eq!(grid.cell_of(Point { x: 0.0, y: 0.0 }), 0);
        assert_eq!(grid.cell_of(Point { x: 1.0, y: 1.0 }), 15);
        assert_eq!(grid.cell_of(Point { x: 0.3, y: 0.0 }), 1);
        assert_eq!(grid.cell_of(Point { x: 0.0, y: 0.3 }), 4);
    }

    #[test]
    fn range_query_tracks_truth() {
        let grid = UniformGrid::new(8, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Uniform points.
        let points: Vec<Point> = (0..40_000)
            .map(|_| Point {
                x: rng.gen_range(0.0..1.0),
                y: rng.gen_range(0.0..1.0),
            })
            .collect();
        let est = grid.collect(&points, &mut rng);
        let rect = Rect::new(0.25, 0.25, 0.75, 0.75).unwrap();
        let got = est.range_query(rect);
        let truth = points
            .iter()
            .filter(|p| p.x >= 0.25 && p.x <= 0.75 && p.y >= 0.25 && p.y <= 0.75)
            .count() as f64;
        assert!((got - truth).abs() < 2500.0, "got={got} truth={truth}");
    }

    #[test]
    fn hot_spot_found() {
        let grid = UniformGrid::new(8, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut points = blob(20_000, 0.8, 0.2, 0.05, &mut rng);
        points.extend((0..10_000).map(|_| Point {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        }));
        let est = grid.collect(&points, &mut rng);
        let hot = est.hot_spots(3);
        // The blob sits in cell (~6, ~1).
        assert!(
            hot.iter()
                .any(|&(cx, cy, _)| (5..=7).contains(&cx) && cy <= 2),
            "hot spots {hot:?}"
        );
    }

    #[test]
    fn adaptive_refines_peak() {
        let ag = AdaptiveGrid::new(4, 4, 2, eps(3.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut points = blob(30_000, 0.62, 0.62, 0.02, &mut rng);
        points.extend((0..10_000).map(|_| Point {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        }));
        let est = ag.collect(&points, &mut rng).unwrap();
        let peak = est.peak().expect("refined cells exist");
        // Blob at (0.62, 0.62): coarse cell (2, 2); sub-cell around
        // ((0.62-0.5)/0.25*4)=1.92 -> 1 or 2.
        assert_eq!((peak.0, peak.1), (2, 2), "peak={peak:?}");
        assert!(
            (1..=2).contains(&peak.2) && (1..=2).contains(&peak.3),
            "peak={peak:?}"
        );
    }

    #[test]
    fn rect_validation() {
        assert!(Rect::new(0.5, 0.0, 0.4, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 1.1, 1.0).is_err());
        assert!(Point::new(1.2, 0.0).is_err());
    }

    #[test]
    fn grid_validation() {
        assert!(UniformGrid::new(0, eps(1.0)).is_err());
        assert!(UniformGrid::new(300, eps(1.0)).is_err());
        assert!(AdaptiveGrid::new(4, 1, 2, eps(1.0)).is_err());
        assert!(AdaptiveGrid::new(4, 4, 0, eps(1.0)).is_err());
    }
}
