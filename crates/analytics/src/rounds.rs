//! Multi-round interactive collection: §1.4's first open problem.
//!
//! Deployed LDP protocols are one-shot: a fixed randomizer, one report.
//! The tutorial asks what *interaction* buys — the aggregator poses new
//! queries in light of previous answers. This module implements the
//! canonical two-round win for skewed frequency estimation:
//!
//! * **Round 1** (fraction `φ` of users): a standard full-domain oracle
//!   identifies the apparent top-k items.
//! * **Round 2** (remaining users): the domain is *collapsed* to those k
//!   items plus an "other" bucket, and users answer with GRR over `k+1`
//!   values — whose variance scales with `k`, not `d`.
//!
//! For Zipf-like data with `k ≪ d`, the refined head estimates beat the
//! one-round protocol at equal total budget (experiment E12), while tail
//! items keep their round-1 estimates.
//!
//! **Regime note** (the interesting finding E12 sweeps): the win only
//! materializes when the collapsed domain is *well inside* GRR's optimal
//! region, `k + 1 ≪ 3e^ε + 2`, and round 2 keeps most of the users.
//! At `ε = 1, k = 8` the two-round protocol *loses* — collapsing the
//! domain buys less than splitting the population costs. Interactivity is
//! not free; it must out-earn its user split.

use ldp_core::fo::{DirectEncoding, FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// Result of the two-round protocol.
#[derive(Debug, Clone)]
pub struct TwoRoundEstimate {
    /// Estimated counts for every domain item (head refined, tail from
    /// round 1), full-population scale.
    pub counts: Vec<f64>,
    /// The head items selected after round 1.
    pub head: Vec<u64>,
}

/// The adaptive two-round frequency protocol.
#[derive(Debug, Clone, Copy)]
pub struct TwoRoundProtocol {
    d: u64,
    k: usize,
    round1_fraction: f64,
    epsilon: Epsilon,
}

impl TwoRoundProtocol {
    /// Creates the protocol: domain `[0, d)`, head size `k`, fraction of
    /// users assigned to round 1, per-user budget `epsilon` (each user
    /// participates in exactly one round, so reports are ε-LDP).
    ///
    /// # Errors
    /// Validates `d ≥ 2`, `1 ≤ k < d`, and the fraction in `(0, 1)`.
    pub fn new(d: u64, k: usize, round1_fraction: f64, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!("need d >= 2, got {d}")));
        }
        if k == 0 || k as u64 >= d {
            return Err(Error::InvalidParameter(format!(
                "need 1 <= k < d, got k={k}"
            )));
        }
        if !(round1_fraction > 0.0 && round1_fraction < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "round1_fraction must be in (0,1), got {round1_fraction}"
            )));
        }
        Ok(Self {
            d,
            k,
            round1_fraction,
            epsilon,
        })
    }

    /// Runs both rounds. Users are assigned to rounds by a hash of their
    /// index (the deployment analogue of random assignment, and robust to
    /// populations that arrive sorted by value).
    pub fn collect<R: Rng>(&self, values: &[u64], rng: &mut R) -> TwoRoundEstimate {
        let n = values.len();
        let threshold = (self.round1_fraction * u64::MAX as f64) as u64;
        let (mut round1, mut round2) = (Vec::new(), Vec::new());
        for (i, &v) in values.iter().enumerate() {
            if ldp_sketch::hash::mix64(i as u64 ^ 0x2b992ddf) < threshold {
                round1.push(v);
            } else {
                round2.push(v);
            }
        }
        let (round1, round2) = (&round1[..], &round2[..]);

        // Round 1: full-domain OLH.
        let oracle1 = OptimizedLocalHashing::new(self.d, self.epsilon);
        let mut agg1 = oracle1.new_aggregator();
        for &v in round1 {
            agg1.accumulate(&oracle1.randomize(v, rng));
        }
        let est1 = agg1.estimate();
        let scale1 = n as f64 / round1.len().max(1) as f64;

        // Select head.
        let mut idx: Vec<u64> = (0..self.d).collect();
        idx.sort_by(|&a, &b| est1[b as usize].total_cmp(&est1[a as usize]));
        let head: Vec<u64> = idx.into_iter().take(self.k).collect();

        // Round 2: GRR over head + other.
        let oracle2 = DirectEncoding::new(self.k as u64 + 1, self.epsilon).expect("k+1 >= 2");
        let mut agg2 = oracle2.new_aggregator();
        let head_index = |v: u64| -> u64 {
            head.iter()
                .position(|&h| h == v)
                .map(|i| i as u64)
                .unwrap_or(self.k as u64)
        };
        for &v in round2 {
            agg2.accumulate(&oracle2.randomize(head_index(v), rng));
        }
        let est2 = agg2.estimate();
        let scale2 = n as f64 / round2.len().max(1) as f64;

        // Merge: head from round 2 (low variance), tail from round 1.
        let mut counts: Vec<f64> = est1.iter().map(|&c| c * scale1).collect();
        for (i, &h) in head.iter().enumerate() {
            counts[h as usize] = est2[i] * scale2;
        }
        TwoRoundEstimate { counts, head }
    }

    /// One-round baseline at the same budget: full-domain OLH over all
    /// users.
    pub fn one_round_baseline<R: Rng>(&self, values: &[u64], rng: &mut R) -> Vec<f64> {
        let oracle = OptimizedLocalHashing::new(self.d, self.epsilon);
        let mut agg = oracle.new_aggregator();
        for &v in values {
            agg.accumulate(&oracle.randomize(v, rng));
        }
        agg.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Zipf-ish values over [0, d): item i with weight 1/(i+1).
    fn skewed(n: usize, d: u64) -> Vec<u64> {
        let weights: Vec<f64> = (0..d).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut values = Vec::with_capacity(n);
        let mut acc = vec![0.0; d as usize];
        let mut run = 0.0;
        for i in 0..d as usize {
            run += weights[i] / total;
            acc[i] = run;
        }
        for u in 0..n {
            let t = (u as f64 + 0.5) / n as f64;
            let v = acc.iter().position(|&a| t <= a).unwrap_or(d as usize - 1);
            values.push(v as u64);
        }
        values
    }

    #[test]
    fn head_contains_true_top_items() {
        let proto = TwoRoundProtocol::new(256, 8, 0.5, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let values = skewed(60_000, 256);
        let est = proto.collect(&values, &mut rng);
        // True top-3 are items 0, 1, 2.
        for i in 0..3u64 {
            assert!(
                est.head.contains(&i),
                "item {i} missing from head {:?}",
                est.head
            );
        }
    }

    #[test]
    fn two_rounds_beat_one_round_on_head_mse_in_winning_regime() {
        // Winning regime: k+1 = 5 well under 3e^2+2 ≈ 24, and round 2
        // keeps 70% of users.
        let d = 512u64;
        let k = 4usize;
        let proto = TwoRoundProtocol::new(d, k, 0.3, eps(2.0)).unwrap();
        let values = skewed(40_000, d);
        let mut truth = vec![0f64; d as usize];
        for &v in &values {
            truth[v as usize] += 1.0;
        }
        let trials = 6;
        let (mut mse_two, mut mse_one) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let two = proto.collect(&values, &mut rng);
            let one = proto.one_round_baseline(&values, &mut rng);
            for i in 0..k {
                mse_two += (two.counts[i] - truth[i]).powi(2);
                mse_one += (one[i] - truth[i]).powi(2);
            }
        }
        assert!(
            mse_two < mse_one,
            "two-round MSE {mse_two} should beat one-round {mse_one}"
        );
    }

    #[test]
    fn two_rounds_lose_outside_winning_regime() {
        // At eps=1 with k=8 the collapsed domain (9) sits at the GRR/OUE
        // crossover (3e+2 ≈ 10.2) and the user split dominates: the
        // adaptive protocol should NOT be meaningfully better. This pins
        // the regime boundary the module docs describe.
        let d = 512u64;
        let proto = TwoRoundProtocol::new(d, 8, 0.5, eps(1.0)).unwrap();
        let values = skewed(40_000, d);
        let mut truth = vec![0f64; d as usize];
        for &v in &values {
            truth[v as usize] += 1.0;
        }
        let trials = 6;
        let (mut mse_two, mut mse_one) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(300 + t);
            let two = proto.collect(&values, &mut rng);
            let one = proto.one_round_baseline(&values, &mut rng);
            for i in 0..8usize {
                mse_two += (two.counts[i] - truth[i]).powi(2);
                mse_one += (one[i] - truth[i]).powi(2);
            }
        }
        assert!(
            mse_two > mse_one * 0.8,
            "two-round should not win big here: {mse_two} vs {mse_one}"
        );
    }

    #[test]
    fn counts_total_reasonable() {
        let proto = TwoRoundProtocol::new(64, 4, 0.5, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let values = skewed(30_000, 64);
        let est = proto.collect(&values, &mut rng);
        let total: f64 = est.counts.iter().sum();
        assert!((total - 30_000.0).abs() < 6_000.0, "total={total}");
    }

    #[test]
    fn validation() {
        assert!(TwoRoundProtocol::new(1, 1, 0.5, eps(1.0)).is_err());
        assert!(TwoRoundProtocol::new(8, 0, 0.5, eps(1.0)).is_err());
        assert!(TwoRoundProtocol::new(8, 8, 0.5, eps(1.0)).is_err());
        assert!(TwoRoundProtocol::new(8, 2, 0.0, eps(1.0)).is_err());
        assert!(TwoRoundProtocol::new(8, 2, 1.0, eps(1.0)).is_err());
    }
}
