//! The hybrid (BLENDER) trust model: blending opt-in users under central
//! DP with the LDP majority.
//!
//! §1.4's "Hybrid models" direction (Avent et al., USENIX Security 2017):
//! a small fraction of users trusts the aggregator with raw data (their
//! histogram gets cheap central-DP noise); everyone else runs an LDP
//! frequency oracle. Because the two estimators are independent and
//! unbiased, the minimum-variance blend is the inverse-variance weighted
//! average — so even a few percent of opt-in users can dominate accuracy,
//! which is exactly the effect experiment E9 sweeps.

use crate::central::CentralHistogram;
use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// The blended estimate for one collection round.
#[derive(Debug, Clone)]
pub struct BlendedEstimate {
    /// Final blended count estimates (full-population scale).
    pub counts: Vec<f64>,
    /// The weight given to the opt-in (central) estimator per item.
    pub central_weight: Vec<f64>,
}

/// The BLENDER-style hybrid protocol.
#[derive(Debug, Clone, Copy)]
pub struct Blender {
    d: u64,
    epsilon: Epsilon,
    opt_in_fraction: f64,
}

impl Blender {
    /// Creates the protocol: domain `[0, d)`, per-user budget `epsilon`,
    /// and the fraction of users who opt in to the trusted aggregator.
    ///
    /// # Errors
    /// Rejects `d < 2` or fractions outside `[0, 1]`.
    pub fn new(d: u64, epsilon: Epsilon, opt_in_fraction: f64) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!("need d >= 2, got {d}")));
        }
        if !(0.0..=1.0).contains(&opt_in_fraction) {
            return Err(Error::InvalidParameter(format!(
                "opt_in_fraction must be in [0, 1], got {opt_in_fraction}"
            )));
        }
        Ok(Self {
            d,
            epsilon,
            opt_in_fraction,
        })
    }

    /// Runs one collection round over the users' values. The first
    /// `⌊n·ρ⌋` users are the opt-in group (in a deployment, opt-in status
    /// is a user property; index order stands in for it).
    pub fn collect<R: Rng>(&self, values: &[u64], rng: &mut R) -> BlendedEstimate {
        let n = values.len();
        let n_opt = (n as f64 * self.opt_in_fraction) as usize;
        let (opt_in, local) = values.split_at(n_opt);

        // Opt-in side: exact histogram + central DP noise.
        let central = CentralHistogram::new(self.d, self.epsilon);
        let central_counts = if opt_in.is_empty() {
            vec![0.0; self.d as usize]
        } else {
            central.release(opt_in, rng)
        };
        let central_var = central.count_variance();

        // Local side: OLH.
        let oracle = OptimizedLocalHashing::new(self.d, self.epsilon);
        let local_counts = if local.is_empty() {
            vec![0.0; self.d as usize]
        } else {
            let mut agg = oracle.new_aggregator();
            for &v in local {
                agg.accumulate(&oracle.randomize(v, rng));
            }
            agg.estimate()
        };
        let local_var_floor = oracle.noise_floor_variance(local.len().max(1));

        // Blend per item: scale each group's count to the full population,
        // weight by inverse variance of the scaled estimators.
        let mut counts = Vec::with_capacity(self.d as usize);
        let mut weights = Vec::with_capacity(self.d as usize);
        for i in 0..self.d as usize {
            let (c_est, c_var, have_c) = if n_opt > 0 {
                let scale = n as f64 / n_opt as f64;
                (central_counts[i] * scale, central_var * scale * scale, true)
            } else {
                (0.0, f64::INFINITY, false)
            };
            let (l_est, l_var, have_l) = if n - n_opt > 0 {
                let scale = n as f64 / (n - n_opt) as f64;
                (
                    local_counts[i] * scale,
                    local_var_floor * scale * scale,
                    true,
                )
            } else {
                (0.0, f64::INFINITY, false)
            };
            let (blended, w_c) = match (have_c, have_l) {
                (true, true) => {
                    let w = l_var / (c_var + l_var);
                    (w * c_est + (1.0 - w) * l_est, w)
                }
                (true, false) => (c_est, 1.0),
                (false, true) => (l_est, 0.0),
                (false, false) => (0.0, 0.0),
            };
            counts.push(blended);
            weights.push(w_c);
        }
        BlendedEstimate {
            counts,
            central_weight: weights,
        }
    }

    /// Analytical variance of the blended count estimate at the noise
    /// floor, for `n` total users: `1/(1/v_c + 1/v_l)` of the scaled
    /// group variances.
    pub fn blended_variance(&self, n: usize) -> f64 {
        let n_opt = (n as f64 * self.opt_in_fraction) as usize;
        let n_loc = n - n_opt;
        let mut inv = 0.0;
        if n_opt > 0 {
            let central = CentralHistogram::new(self.d, self.epsilon);
            let scale = n as f64 / n_opt as f64;
            inv += 1.0 / (central.count_variance() * scale * scale);
        }
        if n_loc > 0 {
            let oracle = OptimizedLocalHashing::new(self.d, self.epsilon);
            let scale = n as f64 / n_loc as f64;
            inv += 1.0 / (oracle.noise_floor_variance(n_loc) * scale * scale);
        }
        if inv == 0.0 {
            f64::INFINITY
        } else {
            1.0 / inv
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn workload(n: usize, d: u64) -> Vec<u64> {
        (0..n).map(|i| (i as u64 * 7) % d).collect()
    }

    #[test]
    fn pure_local_and_pure_central_edges() {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(1);
        let values = workload(20_000, d);
        for &rho in &[0.0, 1.0] {
            let b = Blender::new(d, eps(1.0), rho).unwrap();
            let est = b.collect(&values, &mut rng);
            let total: f64 = est.counts.iter().sum();
            assert!(
                (total - 20_000.0).abs() < 4000.0,
                "rho={rho}: total={total}"
            );
        }
    }

    #[test]
    fn blending_beats_pure_local() {
        let d = 64;
        let n = 50_000;
        let pure_local = Blender::new(d, eps(1.0), 0.0).unwrap().blended_variance(n);
        let small_optin = Blender::new(d, eps(1.0), 0.05).unwrap().blended_variance(n);
        let big_optin = Blender::new(d, eps(1.0), 0.5).unwrap().blended_variance(n);
        assert!(small_optin < pure_local, "5% opt-in should already help");
        assert!(big_optin < small_optin);
    }

    #[test]
    fn central_weight_grows_with_opt_in() {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let values = workload(30_000, d);
        let w_small = Blender::new(d, eps(1.0), 0.02)
            .unwrap()
            .collect(&values, &mut rng)
            .central_weight[0];
        let w_big = Blender::new(d, eps(1.0), 0.3)
            .unwrap()
            .collect(&values, &mut rng)
            .central_weight[0];
        assert!(w_big > w_small, "w_small={w_small} w_big={w_big}");
        assert!(w_small > 0.5, "even 2% opt-in dominates: {w_small}");
    }

    #[test]
    fn estimates_accurate() {
        let d = 16;
        let n = 40_000usize;
        let mut rng = StdRng::seed_from_u64(5);
        let values = workload(n, d);
        let b = Blender::new(d, eps(1.0), 0.1).unwrap();
        let est = b.collect(&values, &mut rng);
        let mut truth = vec![0f64; d as usize];
        for &v in &values {
            truth[v as usize] += 1.0;
        }
        let sd = b.blended_variance(n).sqrt();
        for (i, (&e, &t)) in est.counts.iter().zip(truth.iter()).enumerate() {
            assert!(
                (e - t).abs() < 6.0 * sd + 50.0,
                "item {i}: est={e} truth={t} sd={sd}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(Blender::new(1, eps(1.0), 0.5).is_err());
        assert!(Blender::new(8, eps(1.0), -0.1).is_err());
        assert!(Blender::new(8, eps(1.0), 1.1).is_err());
    }
}
