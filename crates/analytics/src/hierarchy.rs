//! Hierarchical interval decomposition: range queries and quantiles over
//! ordered domains.
//!
//! §1.3 calls out "rectilinear counting queries" as a primitive. A flat
//! histogram answers a range query by summing cells, accumulating one
//! noise term per cell — error `Θ(√r)` for range length `r`. The
//! hierarchical method (the local-model analogue of the central-DP
//! binary-tree technique) materializes a `b`-ary tree of dyadic
//! intervals; each user is assigned one level uniformly and reports which
//! node of that level contains their value. Any range decomposes into
//! `O(b·log_b d)` nodes, so the error is `O(log d)` noise terms instead
//! of `O(r)` — and monotone prefix sums give quantile/CDF estimates.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// A hierarchical histogram over the ordered domain `[0, d)`.
#[derive(Debug, Clone)]
pub struct HierarchicalHistogram {
    d: u64,
    branching: u64,
    levels: Vec<u64>, // node counts per level, root (1) .. leaves (d)
    epsilon: Epsilon,
}

/// The collected tree: per-level estimated node counts, scaled to the
/// full population.
#[derive(Debug, Clone)]
pub struct HierarchicalEstimate {
    d: u64,
    /// `levels[l][node]` = estimated users in that node's interval.
    levels: Vec<Vec<f64>>,
    n: usize,
}

impl HierarchicalHistogram {
    /// Creates the decomposition with branching factor `b ≥ 2`; `d` is
    /// rounded up to the next power of `b` internally.
    ///
    /// # Errors
    /// Rejects `d < 2` or `b < 2`.
    pub fn new(d: u64, branching: u64, epsilon: Epsilon) -> Result<Self> {
        if d < 2 {
            return Err(Error::InvalidDomain(format!("need d >= 2, got {d}")));
        }
        if branching < 2 {
            return Err(Error::InvalidParameter(format!(
                "need branching >= 2, got {branching}"
            )));
        }
        // Level sizes: 1 = root excluded (it's always n); start from b.
        let mut levels = Vec::new();
        let mut width = branching;
        while width < d {
            levels.push(width);
            width *= branching;
        }
        levels.push(width); // leaf level covers [0, width) >= d
        Ok(Self {
            d,
            branching,
            levels,
            epsilon,
        })
    }

    /// Number of levels (excluding the trivial root).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The branching factor `b`.
    pub fn branching(&self) -> u64 {
        self.branching
    }

    /// Runs collection: each user is assigned one level (round-robin by
    /// a hash of the index, i.e. uniform) and reports their node at that
    /// level through OLH.
    pub fn collect<R: Rng>(&self, values: &[u64], rng: &mut R) -> HierarchicalEstimate {
        let depth = self.depth();
        let leaf_width = *self.levels.last().expect("non-empty levels");
        let mut estimates = Vec::with_capacity(depth);
        // Group users per level by index hash.
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); depth];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v < self.d, "value outside domain");
            let g = (ldp_sketch::hash::mix64(i as u64 ^ 0x5ca1ab1e) % depth as u64) as usize;
            groups[g].push(v);
        }
        for (level, nodes) in self.levels.iter().enumerate() {
            let group = &groups[level];
            let oracle = OptimizedLocalHashing::new(*nodes, self.epsilon);
            let mut agg = oracle.new_aggregator();
            let cell_width = leaf_width / nodes;
            for &v in group {
                agg.accumulate(&oracle.randomize(v / cell_width, rng));
            }
            let scale = values.len() as f64 / group.len().max(1) as f64;
            let est: Vec<f64> = agg.estimate().into_iter().map(|c| c * scale).collect();
            estimates.push(est);
        }
        HierarchicalEstimate {
            d: self.d,
            levels: estimates,
            n: values.len(),
        }
    }
}

impl HierarchicalEstimate {
    /// Population size.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Estimated count in `[lo, hi)` via greedy dyadic decomposition:
    /// cover the range with the fewest tree nodes, summing their
    /// estimates.
    ///
    /// # Panics
    /// Panics unless `lo < hi ≤ d`.
    pub fn range_count(&self, lo: u64, hi: u64) -> f64 {
        assert!(lo < hi && hi <= self.d, "invalid range [{lo}, {hi})");
        self.decompose(lo, hi, 0, 0)
    }

    /// Recursive decomposition starting at `level` within node `node`.
    fn decompose(&self, lo: u64, hi: u64, level: usize, _node: u64) -> f64 {
        let leaf_width = self.leaf_width();
        let nodes = self.levels[level].len() as u64;
        let cell = leaf_width / nodes;
        let mut total = 0.0;
        let mut pos = lo;
        while pos < hi {
            let node_idx = pos / cell;
            let node_start = node_idx * cell;
            let node_end = node_start + cell;
            if pos == node_start && node_end <= hi {
                // Whole node covered: take its estimate at this level.
                total += self.levels[level][node_idx as usize];
                pos = node_end;
            } else if level + 1 < self.levels.len() {
                // Partial: recurse into the next level for this node only.
                let sub_hi = hi.min(node_end);
                total += self.decompose(pos, sub_hi, level + 1, node_idx);
                pos = sub_hi;
            } else {
                // Leaf level partial can't happen (cell == 1 at leaves for
                // pow-of-b domains); fall back proportionally.
                let frac = (hi.min(node_end) - pos) as f64 / cell as f64;
                total += self.levels[level][node_idx as usize] * frac;
                pos = node_end.min(hi);
            }
        }
        total
    }

    fn leaf_width(&self) -> u64 {
        self.levels.last().expect("non-empty").len() as u64
    }

    /// Estimated CDF at `x`: fraction of users with value `< x`.
    pub fn cdf(&self, x: u64) -> f64 {
        if x == 0 {
            return 0.0;
        }
        (self.range_count(0, x.min(self.d)) / self.n.max(1) as f64).clamp(0.0, 1.0)
    }

    /// Estimated `q`-quantile (smallest `x` with `CDF(x+1) ≥ q`), by
    /// binary search over the monotone-ized CDF.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        // Build monotone CDF over leaves once (isotonic via running max).
        let mut best = self.d - 1;
        let (mut lo, mut hi) = (0u64, self.d - 1);
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid + 1) >= q {
                best = mid;
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            } else {
                lo = mid + 1;
            }
        }
        best
    }
}

/// Flat baseline: answer the same range query from a single-level OLH
/// histogram (error grows with range length).
pub fn flat_range_count<R: Rng>(
    values: &[u64],
    d: u64,
    lo: u64,
    hi: u64,
    epsilon: Epsilon,
    rng: &mut R,
) -> f64 {
    assert!(lo < hi && hi <= d, "invalid range");
    let oracle = OptimizedLocalHashing::new(d, epsilon);
    let mut agg = oracle.new_aggregator();
    for &v in values {
        agg.accumulate(&oracle.randomize(v, rng));
    }
    let est = agg.estimate();
    (lo..hi).map(|i| est[i as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn skewed_values(n: usize, d: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Triangular-ish: concentrated at low values.
                let a: u64 = rng.gen_range(0..d);
                let b: u64 = rng.gen_range(0..d);
                a.min(b)
            })
            .collect()
    }

    #[test]
    fn construction_and_depth() {
        let h = HierarchicalHistogram::new(256, 4, eps(1.0)).unwrap();
        assert_eq!(h.depth(), 4); // 4, 16, 64, 256
        let h2 = HierarchicalHistogram::new(100, 2, eps(1.0)).unwrap();
        assert_eq!(h2.depth(), 7); // 2..128
        assert!(HierarchicalHistogram::new(1, 2, eps(1.0)).is_err());
        assert!(HierarchicalHistogram::new(8, 1, eps(1.0)).is_err());
    }

    #[test]
    fn range_counts_track_truth() {
        let d = 256u64;
        let h = HierarchicalHistogram::new(d, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let values = skewed_values(80_000, d, 3);
        let est = h.collect(&values, &mut rng);
        for &(lo, hi) in &[(0u64, 64u64), (0, 128), (32, 200), (100, 101)] {
            let truth = values.iter().filter(|&&v| v >= lo && v < hi).count() as f64;
            let got = est.range_count(lo, hi);
            let slack = 3000.0 + truth * 0.1;
            assert!(
                (got - truth).abs() < slack,
                "range [{lo},{hi}): got {got} truth {truth}"
            );
        }
    }

    #[test]
    fn hierarchy_beats_flat_on_long_ranges() {
        let d = 256u64;
        let n = 60_000;
        let (lo, hi) = (10u64, 230u64); // long range: flat sums 220 noisy cells
        let values = skewed_values(n, d, 5);
        let truth = values.iter().filter(|&&v| v >= lo && v < hi).count() as f64;
        let trials = 5;
        let (mut err_h, mut err_f) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let h = HierarchicalHistogram::new(d, 4, eps(1.0)).unwrap();
            let est = h.collect(&values, &mut rng);
            err_h += (est.range_count(lo, hi) - truth).abs();
            let mut rng2 = StdRng::seed_from_u64(500 + t);
            err_f += (flat_range_count(&values, d, lo, hi, eps(1.0), &mut rng2) - truth).abs();
        }
        assert!(
            err_h < err_f,
            "hierarchical {err_h} should beat flat {err_f} on long ranges"
        );
    }

    #[test]
    fn cdf_monotone_endpoints() {
        let d = 64u64;
        let h = HierarchicalHistogram::new(d, 2, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let values = skewed_values(40_000, d, 9);
        let est = h.collect(&values, &mut rng);
        assert_eq!(est.cdf(0), 0.0);
        assert!((est.cdf(64) - 1.0).abs() < 0.15, "cdf(d) = {}", est.cdf(64));
    }

    #[test]
    fn quantiles_reasonable() {
        let d = 128u64;
        let h = HierarchicalHistogram::new(d, 4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let values = skewed_values(80_000, d, 13);
        let est = h.collect(&values, &mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[values.len() / 2];
        let got = est.quantile(0.5);
        assert!(
            (got as i64 - true_median as i64).abs() < 15,
            "median: got {got}, true {true_median}"
        );
        assert!(est.quantile(0.1) <= est.quantile(0.9));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let h = HierarchicalHistogram::new(16, 2, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let est = h.collect(&[1, 2, 3], &mut rng);
        est.range_count(5, 5);
    }
}
