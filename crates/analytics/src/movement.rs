//! User movement models: origin–destination flows under LDP.
//!
//! §1.3 leaves "more sophisticated user movement models" as an open
//! extension of private location collection. This module implements the
//! natural first step beyond static densities: the **origin–destination
//! (OD) matrix** — how many users travel from grid cell `a` to grid cell
//! `b` — collected privately by treating each user's (origin, destination)
//! pair as a single value in the `g⁴`-sized product domain and running
//! OLH over it (constant-size reports; the product-domain trick is the
//! same one the marginal literature uses).
//!
//! On top of the OD matrix we derive a first-order *mobility Markov
//! chain* (row-normalized transition probabilities) and the stationary
//! flow profile — the "movement model" an urban-planning consumer would
//! actually want.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::postprocess::clamp_nonnegative;
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

use crate::spatial::Point;

/// A single user's trip: where they started and where they ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Trip origin.
    pub origin: Point,
    /// Trip destination.
    pub destination: Point,
}

/// The private OD-matrix collection protocol over a `g × g` grid.
#[derive(Debug, Clone, Copy)]
pub struct OdMatrixCollector {
    g: u32,
    epsilon: Epsilon,
}

/// The estimated origin–destination flows.
#[derive(Debug, Clone)]
pub struct OdMatrix {
    g: u32,
    /// `flows[origin_cell][dest_cell]`, full-population counts.
    flows: Vec<Vec<f64>>,
    n: usize,
}

impl OdMatrixCollector {
    /// Creates the collector; the OD domain is `g⁴`, so `g ≤ 32` keeps
    /// estimation tractable.
    ///
    /// # Errors
    /// Rejects `g` outside `[2, 32]`.
    pub fn new(g: u32, epsilon: Epsilon) -> Result<Self> {
        if !(2..=32).contains(&g) {
            return Err(Error::InvalidParameter(format!(
                "g must be in [2, 32], got {g}"
            )));
        }
        Ok(Self { g, epsilon })
    }

    /// Grid granularity.
    pub fn granularity(&self) -> u32 {
        self.g
    }

    #[inline]
    fn cell_of(&self, p: Point) -> u64 {
        let g = self.g as f64;
        let cx = ((p.x * g) as u32).min(self.g - 1);
        let cy = ((p.y * g) as u32).min(self.g - 1);
        (cy * self.g + cx) as u64
    }

    /// Collects an OD matrix from one trip per user.
    pub fn collect<R: Rng>(&self, trips: &[Trip], rng: &mut R) -> OdMatrix {
        let cells = (self.g as u64) * (self.g as u64);
        let oracle = OptimizedLocalHashing::new(cells * cells, self.epsilon);
        let mut agg = oracle.new_aggregator();
        for t in trips {
            let v = self.cell_of(t.origin) * cells + self.cell_of(t.destination);
            agg.accumulate(&oracle.randomize(v, rng));
        }
        let flat = agg.estimate();
        let flows = (0..cells as usize)
            .map(|o| flat[o * cells as usize..(o + 1) * cells as usize].to_vec())
            .collect();
        OdMatrix {
            g: self.g,
            flows,
            n: trips.len(),
        }
    }
}

impl OdMatrix {
    /// Grid granularity.
    pub fn granularity(&self) -> u32 {
        self.g
    }

    /// Trips collected.
    pub fn reports(&self) -> usize {
        self.n
    }

    /// Estimated number of trips from cell `origin` to cell `dest`
    /// (row-major cell indices).
    ///
    /// # Panics
    /// Panics on out-of-range cells.
    pub fn flow(&self, origin: u64, dest: u64) -> f64 {
        let cells = (self.g as u64) * (self.g as u64);
        assert!(origin < cells && dest < cells, "cell out of range");
        self.flows[origin as usize][dest as usize]
    }

    /// Total estimated outflow of a cell.
    pub fn outflow(&self, origin: u64) -> f64 {
        self.flows[origin as usize].iter().sum()
    }

    /// The top-`k` flows as `(origin, dest, estimate)`, descending.
    pub fn top_flows(&self, k: usize) -> Vec<(u64, u64, f64)> {
        let cells = (self.g as u64) * (self.g as u64);
        let mut all: Vec<(u64, u64, f64)> = (0..cells)
            .flat_map(|o| (0..cells).map(move |d| (o, d, 0.0)))
            .collect();
        for e in all.iter_mut() {
            e.2 = self.flow(e.0, e.1);
        }
        all.sort_by(|a, b| b.2.total_cmp(&a.2));
        all.truncate(k);
        all
    }

    /// Row-normalized mobility transition matrix
    /// `P(dest | origin)`; rows with no positive mass become uniform.
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        let cells = self.flows.len();
        self.flows
            .iter()
            .map(|row| {
                let clamped = clamp_nonnegative(row);
                let total: f64 = clamped.iter().sum();
                if total <= 0.0 {
                    vec![1.0 / cells as f64; cells]
                } else {
                    clamped.iter().map(|&x| x / total).collect()
                }
            })
            .collect()
    }

    /// Stationary distribution of the mobility chain, by power iteration
    /// (50 rounds from uniform — plenty for these small, dense chains).
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let p = self.transition_matrix();
        let cells = p.len();
        let mut dist = vec![1.0 / cells as f64; cells];
        for _ in 0..50 {
            let mut next = vec![0.0; cells];
            for (o, row) in p.iter().enumerate() {
                for (d, &pr) in row.iter().enumerate() {
                    next[d] += dist[o] * pr;
                }
            }
            dist = next;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn point(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Commuter pattern on a 4x4 grid: 60% suburb (0.1,0.1) -> downtown
    /// (0.9,0.9), 40% random trips.
    fn trips(n: usize, seed: u64) -> Vec<Trip> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    Trip {
                        origin: point(0.1, 0.1),
                        destination: point(0.9, 0.9),
                    }
                } else {
                    Trip {
                        origin: point(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                        destination: point(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn dominant_flow_recovered() {
        let collector = OdMatrixCollector::new(4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = trips(60_000, 3);
        let od = collector.collect(&data, &mut rng);
        let top = od.top_flows(1)[0];
        // Suburb cell (0,0) = 0; downtown cell (3,3) = 15.
        assert_eq!((top.0, top.1), (0, 15), "top flow {top:?}");
        assert!((top.2 - 36_000.0).abs() < 6000.0, "flow estimate {}", top.2);
    }

    #[test]
    fn transition_rows_are_distributions() {
        let collector = OdMatrixCollector::new(3, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let od = collector.collect(&trips(20_000, 5), &mut rng);
        for (o, row) in od.transition_matrix().iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {o} sums to {sum}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn stationary_mass_concentrates_downtown() {
        let collector = OdMatrixCollector::new(4, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let od = collector.collect(&trips(60_000, 7), &mut rng);
        let stationary = od.stationary_distribution();
        let total: f64 = stationary.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Downtown (cell 15) should carry the most stationary mass.
        let max_cell = (0..16)
            .max_by(|&a, &b| stationary[a].total_cmp(&stationary[b]))
            .expect("non-empty");
        assert_eq!(max_cell, 15, "stationary {stationary:?}");
    }

    #[test]
    fn outflow_consistent_with_flows() {
        let collector = OdMatrixCollector::new(2, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let od = collector.collect(&trips(10_000, 9), &mut rng);
        let manual: f64 = (0..4).map(|d| od.flow(0, d)).sum();
        assert!((od.outflow(0) - manual).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(OdMatrixCollector::new(1, eps(1.0)).is_err());
        assert!(OdMatrixCollector::new(64, eps(1.0)).is_err());
    }
}
