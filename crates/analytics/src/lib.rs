//! # `ldp-analytics` — LDP beyond frequency: the tutorial's research frontier
//!
//! §1.3 and §1.4 of the SIGMOD 2018 tutorial survey what the research
//! community built *on top of* frequency oracles. This crate reproduces
//! each direction:
//!
//! * [`hh`] — heavy hitters over massive domains: the prefix-extending
//!   method (PEM / succinct histograms, Bassily–Smith STOC 2015) and its
//!   TreeHist variant (Bassily–Nissim–Stemmer–Thakurta, NIPS 2017).
//! * [`marginals`] — k-way marginals of multidimensional data via the
//!   Fourier (Hadamard) basis (Cormode–Kulkarni–Srivastava), against full
//!   materialization and direct per-marginal collection baselines.
//! * [`spatial`] — private location collection (Chen et al., ICDE 2016):
//!   uniform and adaptive grids, rectilinear range queries, hot-spot
//!   detection.
//! * [`graph`] — private degree distributions and LDPGen-style synthetic
//!   graph generation (Qin et al., CCS 2017), plus the graph substrate
//!   (adjacency structure, Barabási–Albert and SBM generators).
//! * [`hybrid`] — the BLENDER model (Avent et al., USENIX Security 2017):
//!   blending an opt-in population under central DP with an LDP majority.
//! * [`central`] — central-DP baselines (Laplace/geometric histograms)
//!   quantifying the `√n` accuracy gap that motivates the whole tutorial.
//! * [`rounds`] — multi-round interactive collection (§1.4 "Multiple
//!   Rounds"): adaptive two-phase frequency refinement.
//! * [`itemset`] — set-valued data (Qin et al., CCS 2016): padding-and-
//!   sampling frequency estimation and the two-phase LDPMiner.
//! * [`hierarchy`] — rectilinear counting queries done right: b-ary
//!   interval trees for O(log d)-error range counts, CDFs and quantiles.
//! * [`language`] — private n-gram language modeling (the classical
//!   counterpart of §1.3's deep-learning direction): bigram Markov models
//!   with next-token prediction and perplexity evaluation.
//! * [`movement`] — §1.3's open "user movement models" extension:
//!   origin–destination matrices and mobility Markov chains over grids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod central;
pub mod graph;
pub mod hh;
pub mod hierarchy;
pub mod hybrid;
pub mod itemset;
pub mod language;
pub mod marginals;
pub mod movement;
pub mod rounds;
pub mod spatial;
