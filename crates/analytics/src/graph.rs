//! Private graph statistics and synthetic graph generation.
//!
//! §1.3's graph direction (Qin et al., "Generating Synthetic Decentralized
//! Social Graphs with Local Differential Privacy", CCS 2017): each user
//! knows only their own adjacency list; the aggregator wants structural
//! statistics (degree distribution) and, ultimately, a *synthetic graph*
//! that preserves them.
//!
//! This module contains:
//! * the graph substrate ([`Graph`], Barabási–Albert and
//!   stochastic-block-model generators) — built here because the
//!   estimators and experiments need a graph engine and the paper's data
//!   (real social networks) is unavailable: power-law and blocky degree
//!   profiles are what the estimators consume;
//! * [`private_degree_histogram`] — per-user degree reports through OLH;
//! * [`LdpGen`] — an LDPGen-style pipeline: collect noisy degrees
//!   (discrete geometric noise, which is ε-LDP for degree sensitivity 1
//!   under edge-LDP), then synthesize a Chung–Lu graph matching the
//!   estimated degree sequence.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::noise::sample_two_sided_geometric;
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// An undirected graph as adjacency lists (no self-loops, no multi-edges).
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Adds an undirected edge if absent; ignores self-loops.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let (u, v) = (u as usize, v as usize);
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "vertex out of range"
        );
        if !self.adj[u].contains(&(v as u32)) {
            self.adj[u].push(v as u32);
            self.adj[v].push(u as u32);
        }
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(|a| a.len()).collect()
    }

    /// The exact degree histogram up to `max_degree` (larger degrees are
    /// clamped into the last bucket).
    pub fn degree_histogram(&self, max_degree: usize) -> Vec<u64> {
        let mut hist = vec![0u64; max_degree + 1];
        for d in self.degrees() {
            hist[d.min(max_degree)] += 1;
        }
        hist
    }

    /// Barabási–Albert preferential attachment: `n` vertices, `m` edges
    /// per arrival. Produces a power-law degree profile.
    ///
    /// # Panics
    /// Panics if `n <= m` or `m == 0`.
    pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(m > 0 && n > m, "need n > m >= 1");
        let mut g = Self::new(n);
        // Seed clique on m+1 vertices.
        for u in 0..=m {
            for v in 0..u {
                g.add_edge(u as u32, v as u32);
            }
        }
        // Attachment pool: vertices repeated by degree.
        let mut pool: Vec<u32> = Vec::new();
        for u in 0..=m {
            for _ in 0..g.degree(u as u32) {
                pool.push(u as u32);
            }
        }
        for u in (m + 1)..n {
            let mut targets = Vec::with_capacity(m);
            while targets.len() < m {
                let t = pool[rng.gen_range(0..pool.len())];
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                g.add_edge(u as u32, t);
                pool.push(t);
                pool.push(u as u32);
            }
        }
        g
    }

    /// Two-block stochastic block model: within-block edge probability
    /// `p_in`, across `p_out`.
    ///
    /// # Panics
    /// Panics if the probabilities are not in `[0, 1]`.
    pub fn sbm_two_blocks<R: Rng>(n: usize, p_in: f64, p_out: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
        let mut g = Self::new(n);
        let half = n / 2;
        for u in 0..n {
            for v in (u + 1)..n {
                let same = (u < half) == (v < half);
                let p = if same { p_in } else { p_out };
                if p > 0.0 && rng.gen_bool(p) {
                    g.add_edge(u as u32, v as u32);
                }
            }
        }
        g
    }

    /// Chung–Lu random graph matching a target degree sequence in
    /// expectation: edge `(u, v)` appears with probability
    /// `min(1, w_u·w_v / Σw)`.
    pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> Self {
        let n = weights.len();
        let total: f64 = weights.iter().sum::<f64>().max(1e-9);
        let mut g = Self::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let p = (weights[u] * weights[v] / total).min(1.0);
                if p > 0.0 && rng.gen_bool(p) {
                    g.add_edge(u as u32, v as u32);
                }
            }
        }
        g
    }
}

/// Collects the degree histogram privately: each user reports
/// `min(degree, max_degree)` through OLH over `[0, max_degree]`.
/// Returns estimated counts per degree bucket.
pub fn private_degree_histogram<R: Rng>(
    graph: &Graph,
    max_degree: usize,
    epsilon: Epsilon,
    rng: &mut R,
) -> Vec<f64> {
    let oracle = OptimizedLocalHashing::new(max_degree as u64 + 1, epsilon);
    let mut agg = oracle.new_aggregator();
    for v in 0..graph.vertices() {
        let d = graph.degree(v as u32).min(max_degree) as u64;
        agg.accumulate(&oracle.randomize(d, rng));
    }
    agg.estimate()
}

/// LDPGen-style synthetic graph generation.
#[derive(Debug, Clone, Copy)]
pub struct LdpGen {
    epsilon: Epsilon,
}

impl LdpGen {
    /// Creates the generator with a per-user degree-report budget.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// Phase 1: each user submits their degree + two-sided geometric noise
    /// of scale `1/ε` (degree has sensitivity 1 under edge-LDP: adding or
    /// removing one incident edge changes it by 1).
    pub fn noisy_degrees<R: Rng>(&self, graph: &Graph, rng: &mut R) -> Vec<f64> {
        let scale = 1.0 / self.epsilon.value();
        (0..graph.vertices())
            .map(|v| {
                let noise = sample_two_sided_geometric(scale, rng) as f64;
                (graph.degree(v as u32) as f64 + noise).max(0.0)
            })
            .collect()
    }

    /// Full pipeline: noisy degrees → Chung–Lu synthesis.
    ///
    /// # Errors
    /// Returns [`Error::InvalidDomain`] for an empty input graph.
    pub fn synthesize<R: Rng>(&self, graph: &Graph, rng: &mut R) -> Result<Graph> {
        if graph.vertices() == 0 {
            return Err(Error::InvalidDomain(
                "cannot synthesize from empty graph".into(),
            ));
        }
        let weights = self.noisy_degrees(graph, rng);
        Ok(Graph::chung_lu(&weights, rng))
    }
}

/// L1 distance between two degree histograms normalized to distributions —
/// the fidelity metric for synthetic graphs.
pub fn degree_distribution_distance(a: &Graph, b: &Graph, max_degree: usize) -> f64 {
    let (ha, hb) = (
        a.degree_histogram(max_degree),
        b.degree_histogram(max_degree),
    );
    let (na, nb) = (a.vertices().max(1) as f64, b.vertices().max(1) as f64);
    ha.iter()
        .zip(&hb)
        .map(|(&x, &y)| (x as f64 / na - y as f64 / nb).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn graph_basics() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 2); // duplicate ignored
        g.add_edge(3, 3); // self-loop ignored
        assert_eq!(g.edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree_histogram(2), vec![1, 2, 1]);
    }

    #[test]
    fn ba_graph_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::barabasi_albert(500, 3, &mut rng);
        assert_eq!(g.vertices(), 500);
        // Each arrival adds m edges: edges ≈ m(m+1)/2 + (n-m-1)m.
        let expected = 3 * (500 - 4) + 6;
        assert_eq!(g.edges(), expected);
        // Power law: max degree much larger than median.
        let mut degs = g.degrees();
        degs.sort_unstable();
        assert!(
            degs[499] > 3 * degs[250],
            "max={} median={}",
            degs[499],
            degs[250]
        );
    }

    #[test]
    fn sbm_blocks_denser_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Graph::sbm_two_blocks(200, 0.2, 0.01, &mut rng);
        let half = 100usize;
        let mut within = 0usize;
        let mut across = 0usize;
        for u in 0..200u32 {
            for &v in &g.adj[u as usize] {
                if u < v {
                    if ((u as usize) < half) == ((v as usize) < half) {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        assert!(within > 5 * across, "within={within} across={across}");
    }

    #[test]
    fn chung_lu_matches_expected_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = vec![20.0; 300];
        let g = Graph::chung_lu(&weights, &mut rng);
        let avg: f64 = g.degrees().iter().sum::<usize>() as f64 / 300.0;
        assert!((avg - 20.0).abs() < 3.0, "avg degree {avg}");
    }

    #[test]
    fn private_histogram_tracks_truth() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = Graph::barabasi_albert(20_000, 2, &mut rng);
        let est = private_degree_histogram(&g, 16, eps(2.0), &mut rng);
        let truth = g.degree_histogram(16);
        // The dominant bucket (degree 2) should be within noise.
        let sd = OptimizedLocalHashing::new(17, eps(2.0))
            .count_variance(20_000, truth[2] as f64 / 20_000.0)
            .sqrt();
        assert!(
            (est[2] - truth[2] as f64).abs() < 5.0 * sd,
            "est={} truth={}",
            est[2],
            truth[2]
        );
    }

    #[test]
    fn noisy_degrees_unbiased() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::barabasi_albert(5000, 3, &mut rng);
        let gen = LdpGen::new(eps(1.0));
        let noisy = gen.noisy_degrees(&g, &mut rng);
        let true_avg: f64 = g.degrees().iter().sum::<usize>() as f64 / 5000.0;
        let noisy_avg: f64 = noisy.iter().sum::<f64>() / 5000.0;
        // max(0, ·) clipping adds a small positive bias; allow it.
        assert!(
            (noisy_avg - true_avg).abs() < 0.5,
            "noisy={noisy_avg} true={true_avg}"
        );
    }

    #[test]
    fn synthesized_graph_preserves_degree_profile() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Graph::barabasi_albert(2000, 3, &mut rng);
        let synth = LdpGen::new(eps(2.0)).synthesize(&g, &mut rng).unwrap();
        let dist = degree_distribution_distance(&g, &synth, 30);
        // L1 distance between distributions is in [0, 2]; structure
        // preservation should keep it well under 1.
        assert!(dist < 0.8, "distance={dist}");
        // Sanity: a random dense graph would be far away.
        let dense = Graph::sbm_two_blocks(2000, 0.02, 0.02, &mut rng);
        let dist_dense = degree_distribution_distance(&g, &dense, 30);
        assert!(dist < dist_dense, "synth {dist} vs dense {dist_dense}");
    }

    #[test]
    fn empty_graph_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(LdpGen::new(eps(1.0))
            .synthesize(&Graph::new(0), &mut rng)
            .is_err());
    }
}
