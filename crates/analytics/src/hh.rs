//! Heavy hitters over massive domains: the prefix-extending method.
//!
//! A frequency oracle over a 2³²-item domain is useless on its own: the
//! server cannot sweep four billion candidates, and with `n ≪ d` most
//! estimates are pure noise. The succinct-histogram line of work
//! (Bassily–Smith; Bassily–Nissim–Stemmer–Thakurta's TreeHist; Wang et
//! al.'s PEM) solves this by *localizing* the search: users are split into
//! groups, group `i` reports (the hash of) a **prefix** of their value,
//! and the server only extends prefixes that already look frequent —
//! pruning the exponential candidate tree to `O(k)` survivors per level.
//!
//! [`PrefixExtendingMethod`] implements the general protocol with a
//! configurable per-level bit step; [`PrefixExtendingMethod::tree_hist`]
//! is the step-1 (binary tree) variant. The underlying per-group oracle
//! is **cohort-mode** OLH (`CohortLocalHashing`), whose reports are
//! constant-size in the domain and whose aggregate is a `C×g` count
//! matrix — so each level costs `O(C·|candidates|)` hash evaluations to
//! estimate instead of rescanning the group's raw reports. Each group's
//! accumulation runs through the sharded parallel engine in
//! `ldp_workloads::parallel`, and with it through the oracle's **fused
//! batch path** (`randomize_accumulate_batch`): per-shard reports fold
//! straight into the `C×g` matrix with monomorphized RNG draws, no report
//! structs or per-report allocation on any level.

use ldp_core::fo::{CohortLocalHashing, FoAggregator};
use ldp_core::{Epsilon, Error, Result};
use ldp_workloads::parallel::accumulate_sharded;
use rand::Rng;

/// A discovered heavy hitter: the value and its estimated count,
/// extrapolated to the full population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The recovered domain value.
    pub value: u64,
    /// Estimated number of users holding it (full-population scale).
    pub estimate: f64,
}

/// Default cohort count per level: small enough that a level's `C×g`
/// matrix stays cache-resident, large enough that the shared-collision
/// variance stays well under the per-group noise floor for the group
/// sizes heavy-hitter runs see.
const DEFAULT_LEVEL_COHORTS: u32 = 256;

/// Default logical shard count for per-level parallel accumulation (the
/// worker count adapts to the machine; the shard plan fixes the result).
const DEFAULT_LEVEL_SHARDS: usize = 16;

/// The prefix-extending heavy-hitter protocol.
#[derive(Debug, Clone)]
pub struct PrefixExtendingMethod {
    /// Total value width in bits (domain = `[0, 2^bits)`).
    bits: u32,
    /// Bits revealed per level.
    step: u32,
    /// Initial prefix length (first level estimates all `2^start` prefixes
    /// exhaustively, so keep it ≤ ~16).
    start: u32,
    /// Candidates kept per level.
    keep: usize,
    epsilon: Epsilon,
    /// Cohort count for each level's OLH-C oracle.
    cohorts: u32,
    /// Logical shard count for each level's parallel accumulation.
    shards: usize,
}

impl PrefixExtendingMethod {
    /// Creates a PEM instance.
    ///
    /// # Errors
    /// Validates that `start ≤ bits`, the step divides the remainder, the
    /// initial exhaustive level is tractable (`start ≤ 20`), and `keep ≥ 1`.
    pub fn new(bits: u32, start: u32, step: u32, keep: usize, epsilon: Epsilon) -> Result<Self> {
        if bits == 0 || bits > 63 {
            return Err(Error::InvalidDomain(format!(
                "bits must be in [1, 63], got {bits}"
            )));
        }
        if start == 0 || start > bits || start > 20 {
            return Err(Error::InvalidParameter(format!(
                "start must be in [1, min(bits, 20)], got {start}"
            )));
        }
        if step == 0 || !(bits - start).is_multiple_of(step) {
            return Err(Error::InvalidParameter(format!(
                "step {step} must divide bits - start = {}",
                bits - start
            )));
        }
        if keep == 0 {
            return Err(Error::InvalidParameter("keep must be positive".into()));
        }
        Ok(Self {
            bits,
            step,
            start,
            keep,
            epsilon,
            cohorts: DEFAULT_LEVEL_COHORTS,
            shards: DEFAULT_LEVEL_SHARDS,
        })
    }

    /// TreeHist configuration: extend one bit per level.
    ///
    /// # Errors
    /// As for [`new`](Self::new).
    pub fn tree_hist(bits: u32, keep: usize, epsilon: Epsilon) -> Result<Self> {
        Self::new(bits, 1, 1, keep, epsilon)
    }

    /// Overrides the per-level cohort count (default 256). More cohorts
    /// shrink the shared-collision variance (`∝ 1/C`) at the price of a
    /// larger `C×g` count matrix and slower candidate estimation
    /// (`O(C·|candidates|)`).
    ///
    /// # Panics
    /// Panics if `cohorts == 0`.
    #[must_use]
    pub fn with_cohorts(mut self, cohorts: u32) -> Self {
        assert!(cohorts >= 1, "need at least one cohort");
        self.cohorts = cohorts;
        self
    }

    /// Overrides the logical shard count used for each level's parallel
    /// accumulation (default 16). The shard plan — not the machine's core
    /// count — determines the result, so estimates are reproducible.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Number of user groups (levels) the protocol needs.
    pub fn levels(&self) -> u32 {
        1 + (self.bits - self.start) / self.step
    }

    /// One level's randomize→accumulate→estimate pass, shared by level 0
    /// and every extension level: maps each group value to its
    /// `prefix_len`-bit prefix, collects through cohort-mode OLH on the
    /// sharded parallel engine (whose shards run the fused
    /// `randomize_accumulate_batch` path), and returns estimates for
    /// `candidates`.
    ///
    /// `seed_base` rotates the level's public cohort seed set (so hash
    /// collisions between candidates differ per level and per run rather
    /// than biasing the same pairs every time); `shard_seed` drives the
    /// per-shard randomization streams.
    fn level_estimates(
        &self,
        group: &[u64],
        prefix_len: u32,
        candidates: &[u64],
        seed_base: u64,
        shard_seed: u64,
    ) -> Vec<f64> {
        let oracle = CohortLocalHashing::optimized_with_seed(
            1u64 << prefix_len,
            self.cohorts,
            seed_base,
            self.epsilon,
        );
        let prefixes: Vec<u64> = group
            .iter()
            .map(|&v| v >> (self.bits - prefix_len))
            .collect();
        let agg = accumulate_sharded(&oracle, &prefixes, shard_seed, self.shards);
        agg.estimate_items(candidates)
    }

    /// Runs the protocol over the users' values (each user reports once,
    /// in the group determined by their index). Returns up to `keep`
    /// heavy hitters sorted by estimated count descending.
    pub fn run<R: Rng>(&self, values: &[u64], rng: &mut R) -> Vec<HeavyHitter> {
        let levels = self.levels() as usize;
        if values.is_empty() {
            return Vec::new();
        }
        // Partition users into level groups by a hash of their index —
        // the deployment analogue of random group assignment, and immune
        // to populations whose value pattern is periodic in the index.
        let mut groups: Vec<Vec<u64>> = vec![Vec::with_capacity(values.len() / levels + 1); levels];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(
                self.bits == 63 || v < (1u64 << self.bits),
                "value exceeds domain"
            );
            let g = (ldp_sketch::hash::mix64(i as u64) % levels as u64) as usize;
            groups[g].push(v);
        }

        // Level 0 estimates all 2^start prefixes exhaustively; every later
        // level estimates the step-bit extensions of the survivors. All
        // levels share one `level_estimates` pass.
        let mut prefix_len = self.start;
        let mut candidates: Vec<u64> = (0..(1u64 << self.start)).collect();
        let mut survivors: Vec<u64> = Vec::new();
        for (level, group) in groups.iter().enumerate() {
            if level > 0 {
                prefix_len += self.step;
                candidates = Vec::with_capacity(survivors.len() << self.step);
                for &s in &survivors {
                    for ext in 0..(1u64 << self.step) {
                        candidates.push((s << self.step) | ext);
                    }
                }
            }
            let ests = self.level_estimates(group, prefix_len, &candidates, rng.gen(), rng.gen());
            let mut scored: Vec<(u64, f64)> = candidates.iter().copied().zip(ests).collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.truncate(self.keep);
            if level == levels - 1 {
                // Final level: scale group estimates to the population.
                let scale = values.len() as f64 / group.len().max(1) as f64;
                return scored
                    .into_iter()
                    .filter(|&(_, e)| e > 0.0)
                    .map(|(value, e)| HeavyHitter {
                        value,
                        estimate: e * scale,
                    })
                    .collect();
            }
            survivors = scored.into_iter().map(|(v, _)| v).collect();
        }
        unreachable!("levels >= 1, so the final level always returns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(PrefixExtendingMethod::new(0, 1, 1, 4, eps(1.0)).is_err());
        assert!(PrefixExtendingMethod::new(32, 0, 4, 4, eps(1.0)).is_err());
        assert!(
            PrefixExtendingMethod::new(32, 8, 5, 4, eps(1.0)).is_err(),
            "step must divide"
        );
        assert!(
            PrefixExtendingMethod::new(32, 21, 1, 4, eps(1.0)).is_err(),
            "start too big"
        );
        assert!(PrefixExtendingMethod::new(32, 8, 4, 0, eps(1.0)).is_err());
        let ok = PrefixExtendingMethod::new(32, 8, 4, 16, eps(1.0)).unwrap();
        assert_eq!(ok.levels(), 7);
    }

    #[test]
    fn finds_planted_heavy_hitters() {
        // 24-bit domain, three planted values dominating a uniform tail.
        let pem = PrefixExtendingMethod::new(24, 8, 4, 12, eps(3.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let planted = [0x00_abcd_u64, 0x12_3456, 0xff_00ff];
        let mut values = Vec::new();
        for i in 0..60_000usize {
            values.push(match i % 10 {
                0..=3 => planted[0],
                4..=6 => planted[1],
                7..=8 => planted[2],
                _ => (i as u64).wrapping_mul(0x9e37_79b9) & 0xff_ffff,
            });
        }
        let found = pem.run(&values, &mut rng);
        assert!(!found.is_empty());
        let found_values: Vec<u64> = found.iter().map(|h| h.value).collect();
        for (rank, &p) in planted.iter().enumerate() {
            assert!(
                found_values.contains(&p),
                "planted value {rank} ({p:#x}) missing from {found_values:x?}"
            );
        }
        // The top hitter should be the 40% value with a sane estimate.
        assert_eq!(found[0].value, planted[0]);
        assert!(
            (found[0].estimate - 24_000.0).abs() < 8000.0,
            "estimate {}",
            found[0].estimate
        );
    }

    #[test]
    fn tree_hist_variant_works() {
        let th = PrefixExtendingMethod::tree_hist(12, 8, eps(3.0)).unwrap();
        assert_eq!(th.levels(), 12);
        let mut rng = StdRng::seed_from_u64(9);
        let mut values = vec![0xabcu64; 30_000];
        for i in 0..10_000usize {
            values.push((i as u64 * 7919) & 0xfff);
        }
        let found = th.run(&values, &mut rng);
        assert!(
            found.iter().any(|h| h.value == 0xabc),
            "planted value missing: {found:?}"
        );
    }

    #[test]
    fn empty_population() {
        let pem = PrefixExtendingMethod::new(16, 8, 8, 4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pem.run(&[], &mut rng).is_empty());
    }

    #[test]
    fn runs_are_reproducible_for_fixed_seed() {
        let pem = PrefixExtendingMethod::new(16, 8, 8, 6, eps(2.0)).unwrap();
        let mut values = vec![0x1234u64; 8_000];
        for i in 0..4_000usize {
            values.push((i as u64 * 2654435761) & 0xffff);
        }
        let a = pem.run(&values, &mut StdRng::seed_from_u64(11));
        let b = pem.run(&values, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b, "same seed must reproduce identical hitters");
    }

    #[test]
    fn cohort_and_shard_knobs_apply() {
        let pem = PrefixExtendingMethod::new(16, 8, 8, 6, eps(3.0))
            .unwrap()
            .with_cohorts(512)
            .with_shards(4);
        let mut rng = StdRng::seed_from_u64(13);
        let mut values = vec![0xbeefu64; 20_000];
        for i in 0..5_000usize {
            values.push((i as u64 * 7919) & 0xffff);
        }
        let found = pem.run(&values, &mut rng);
        assert!(found.iter().any(|h| h.value == 0xbeef), "{found:?}");
    }
}
