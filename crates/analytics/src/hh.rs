//! Heavy hitters over massive domains: the prefix-extending method.
//!
//! A frequency oracle over a 2³²-item domain is useless on its own: the
//! server cannot sweep four billion candidates, and with `n ≪ d` most
//! estimates are pure noise. The succinct-histogram line of work
//! (Bassily–Smith; Bassily–Nissim–Stemmer–Thakurta's TreeHist; Wang et
//! al.'s PEM) solves this by *localizing* the search: users are split into
//! groups, group `i` reports (the hash of) a **prefix** of their value,
//! and the server only extends prefixes that already look frequent —
//! pruning the exponential candidate tree to `O(k)` survivors per level.
//!
//! [`PrefixExtendingMethod`] implements the general protocol with a
//! configurable per-level bit step; [`PrefixExtendingMethod::tree_hist`]
//! is the step-1 (binary tree) variant. The underlying per-group oracle is
//! OLH, whose reports are constant-size in the domain.

use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// A discovered heavy hitter: the value and its estimated count,
/// extrapolated to the full population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The recovered domain value.
    pub value: u64,
    /// Estimated number of users holding it (full-population scale).
    pub estimate: f64,
}

/// The prefix-extending heavy-hitter protocol.
#[derive(Debug, Clone)]
pub struct PrefixExtendingMethod {
    /// Total value width in bits (domain = `[0, 2^bits)`).
    bits: u32,
    /// Bits revealed per level.
    step: u32,
    /// Initial prefix length (first level estimates all `2^start` prefixes
    /// exhaustively, so keep it ≤ ~16).
    start: u32,
    /// Candidates kept per level.
    keep: usize,
    epsilon: Epsilon,
}

impl PrefixExtendingMethod {
    /// Creates a PEM instance.
    ///
    /// # Errors
    /// Validates that `start ≤ bits`, the step divides the remainder, the
    /// initial exhaustive level is tractable (`start ≤ 20`), and `keep ≥ 1`.
    pub fn new(bits: u32, start: u32, step: u32, keep: usize, epsilon: Epsilon) -> Result<Self> {
        if bits == 0 || bits > 63 {
            return Err(Error::InvalidDomain(format!(
                "bits must be in [1, 63], got {bits}"
            )));
        }
        if start == 0 || start > bits || start > 20 {
            return Err(Error::InvalidParameter(format!(
                "start must be in [1, min(bits, 20)], got {start}"
            )));
        }
        if step == 0 || !(bits - start).is_multiple_of(step) {
            return Err(Error::InvalidParameter(format!(
                "step {step} must divide bits - start = {}",
                bits - start
            )));
        }
        if keep == 0 {
            return Err(Error::InvalidParameter("keep must be positive".into()));
        }
        Ok(Self {
            bits,
            step,
            start,
            keep,
            epsilon,
        })
    }

    /// TreeHist configuration: extend one bit per level.
    ///
    /// # Errors
    /// As for [`new`](Self::new).
    pub fn tree_hist(bits: u32, keep: usize, epsilon: Epsilon) -> Result<Self> {
        Self::new(bits, 1, 1, keep, epsilon)
    }

    /// Number of user groups (levels) the protocol needs.
    pub fn levels(&self) -> u32 {
        1 + (self.bits - self.start) / self.step
    }

    /// Runs the protocol over the users' values (each user reports once,
    /// in the group determined by their index). Returns up to `keep`
    /// heavy hitters sorted by estimated count descending.
    pub fn run<R: Rng>(&self, values: &[u64], rng: &mut R) -> Vec<HeavyHitter> {
        let levels = self.levels() as usize;
        if values.is_empty() {
            return Vec::new();
        }
        // Partition users into level groups by a hash of their index —
        // the deployment analogue of random group assignment, and immune
        // to populations whose value pattern is periodic in the index.
        let mut groups: Vec<Vec<u64>> = vec![Vec::with_capacity(values.len() / levels + 1); levels];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(
                self.bits == 63 || v < (1u64 << self.bits),
                "value exceeds domain"
            );
            let g = (ldp_sketch::hash::mix64(i as u64) % levels as u64) as usize;
            groups[g].push(v);
        }

        // Level 0: exhaustive over 2^start prefixes.
        let mut prefix_len = self.start;
        let mut survivors: Vec<u64> = {
            let oracle = OptimizedLocalHashing::new(1u64 << prefix_len, self.epsilon);
            let mut agg = oracle.new_aggregator();
            for &v in &groups[0] {
                let prefix = v >> (self.bits - prefix_len);
                agg.accumulate(&oracle.randomize(prefix, rng));
            }
            let est = agg.estimate();
            top_indices(&est, self.keep)
        };

        // Subsequent levels: extend survivors by `step` bits.
        for (level, group) in groups.iter().enumerate().skip(1) {
            prefix_len += self.step;
            let oracle = OptimizedLocalHashing::new(1u64 << prefix_len, self.epsilon);
            let mut agg = oracle.new_aggregator();
            for &v in group {
                let prefix = v >> (self.bits - prefix_len);
                agg.accumulate(&oracle.randomize(prefix, rng));
            }
            // Candidates: every step-bit extension of every survivor.
            let mut candidates: Vec<u64> = Vec::with_capacity(survivors.len() << self.step);
            for &s in &survivors {
                for ext in 0..(1u64 << self.step) {
                    candidates.push((s << self.step) | ext);
                }
            }
            let ests = agg.estimate_items(&candidates);
            let mut scored: Vec<(u64, f64)> = candidates.into_iter().zip(ests).collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.truncate(self.keep);
            if level == levels - 1 {
                // Final level: scale group estimates to the population.
                let scale = values.len() as f64 / group.len().max(1) as f64;
                return scored
                    .into_iter()
                    .filter(|&(_, e)| e > 0.0)
                    .map(|(value, e)| HeavyHitter {
                        value,
                        estimate: e * scale,
                    })
                    .collect();
            }
            survivors = scored.into_iter().map(|(v, _)| v).collect();
        }

        // Single-level case (start == bits).
        let scale = values.len() as f64 / groups[0].len().max(1) as f64;
        let oracle = OptimizedLocalHashing::new(1u64 << self.start, self.epsilon);
        let mut agg = oracle.new_aggregator();
        for &v in &groups[0] {
            agg.accumulate(&oracle.randomize(v, rng));
        }
        let ests = agg.estimate_items(&survivors);
        let mut out: Vec<HeavyHitter> = survivors
            .into_iter()
            .zip(ests)
            .filter(|&(_, e)| e > 0.0)
            .map(|(value, e)| HeavyHitter {
                value,
                estimate: e * scale,
            })
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate));
        out
    }
}

/// Indices of the `k` largest entries, descending.
fn top_indices(scores: &[f64], k: usize) -> Vec<u64> {
    let mut idx: Vec<u64> = (0..scores.len() as u64).collect();
    idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(PrefixExtendingMethod::new(0, 1, 1, 4, eps(1.0)).is_err());
        assert!(PrefixExtendingMethod::new(32, 0, 4, 4, eps(1.0)).is_err());
        assert!(
            PrefixExtendingMethod::new(32, 8, 5, 4, eps(1.0)).is_err(),
            "step must divide"
        );
        assert!(
            PrefixExtendingMethod::new(32, 21, 1, 4, eps(1.0)).is_err(),
            "start too big"
        );
        assert!(PrefixExtendingMethod::new(32, 8, 4, 0, eps(1.0)).is_err());
        let ok = PrefixExtendingMethod::new(32, 8, 4, 16, eps(1.0)).unwrap();
        assert_eq!(ok.levels(), 7);
    }

    #[test]
    fn finds_planted_heavy_hitters() {
        // 24-bit domain, three planted values dominating a uniform tail.
        let pem = PrefixExtendingMethod::new(24, 8, 4, 12, eps(3.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let planted = [0x00_abcd_u64, 0x12_3456, 0xff_00ff];
        let mut values = Vec::new();
        for i in 0..60_000usize {
            values.push(match i % 10 {
                0..=3 => planted[0],
                4..=6 => planted[1],
                7..=8 => planted[2],
                _ => (i as u64).wrapping_mul(0x9e37_79b9) & 0xff_ffff,
            });
        }
        let found = pem.run(&values, &mut rng);
        assert!(!found.is_empty());
        let found_values: Vec<u64> = found.iter().map(|h| h.value).collect();
        for (rank, &p) in planted.iter().enumerate() {
            assert!(
                found_values.contains(&p),
                "planted value {rank} ({p:#x}) missing from {found_values:x?}"
            );
        }
        // The top hitter should be the 40% value with a sane estimate.
        assert_eq!(found[0].value, planted[0]);
        assert!(
            (found[0].estimate - 24_000.0).abs() < 8000.0,
            "estimate {}",
            found[0].estimate
        );
    }

    #[test]
    fn tree_hist_variant_works() {
        let th = PrefixExtendingMethod::tree_hist(12, 8, eps(3.0)).unwrap();
        assert_eq!(th.levels(), 12);
        let mut rng = StdRng::seed_from_u64(9);
        let mut values = vec![0xabcu64; 30_000];
        for i in 0..10_000usize {
            values.push((i as u64 * 7919) & 0xfff);
        }
        let found = th.run(&values, &mut rng);
        assert!(
            found.iter().any(|h| h.value == 0xabc),
            "planted value missing: {found:?}"
        );
    }

    #[test]
    fn empty_population() {
        let pem = PrefixExtendingMethod::new(16, 8, 8, 4, eps(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pem.run(&[], &mut rng).is_empty());
    }

    #[test]
    fn top_indices_orders_correctly() {
        let scores = [1.0, 9.0, 3.0, 7.0];
        assert_eq!(top_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_indices(&scores, 10).len(), 4);
    }
}
